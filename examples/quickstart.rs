//! Quickstart: drive the MASCOT predictor directly.
//!
//! Builds the default 14 KiB predictor and teaches it the paper's §III-A
//! scenario — a load whose dependence on a prior store is determined by the
//! most recent branch direction — then shows that it predicts both contexts
//! correctly while a decay-only TAGE (the Fig. 11 ablation) keeps emitting
//! false dependencies.
//!
//! Run with: `cargo run --release --example quickstart`

use mascot::{
    BranchEvent, BranchKind, BypassClass, LoadOutcome, Mascot, MascotConfig, MemDepPredictor,
    ObservedDependence, StoreDistance,
};

fn branch(taken: bool) -> BranchEvent {
    BranchEvent {
        pc: 0x400_500,
        kind: BranchKind::Conditional,
        taken,
        target: 0x400_540,
    }
}

fn dependent_outcome() -> LoadOutcome {
    LoadOutcome::dependent(ObservedDependence {
        distance: StoreDistance::new(1).expect("1 is a valid distance"),
        class: BypassClass::DirectBypass,
        store_pc: 0x400_520,
        branches_between: 1,
    })
}

/// Runs the §III-A pattern for `rounds` rounds and returns
/// (correct predictions, false dependencies) over the final half.
fn run_pattern(p: &mut impl MemDepPredictor, rounds: u32) -> (u32, u32) {
    let load_pc = 0x400_600;
    let mut correct = 0;
    let mut false_deps = 0;
    for round in 0..rounds {
        // 70 % taken, deterministic: taken unless round % 10 < 3.
        let taken = round % 10 >= 3;
        p.on_branch(&branch(taken));
        let (pred, meta) = p.predict(load_pc, 0, None);
        let outcome = if taken {
            dependent_outcome()
        } else {
            LoadOutcome::independent()
        };
        if round >= rounds / 2 {
            if pred.is_dependence() == outcome.is_dependent() {
                correct += 1;
            }
            if pred.is_dependence() && !outcome.is_dependent() {
                false_deps += 1;
            }
        }
        p.train(load_pc, meta, pred, &outcome);
    }
    (correct, false_deps)
}

fn main() {
    let rounds = 2_000;
    let measured = rounds / 2;

    let mut mascot = Mascot::new(MascotConfig::default()).expect("valid default config");
    println!(
        "MASCOT: {} tables, {:.1} KiB of state",
        mascot.config().num_tables(),
        mascot.storage_kib()
    );
    let (correct, false_deps) = run_pattern(&mut mascot, rounds);
    println!(
        "  branch-conditional dependence: {correct}/{measured} correct, {false_deps} false dependencies"
    );
    println!(
        "  non-dependence entries allocated: {}",
        mascot.stats().nondep_allocations
    );

    let mut ablation =
        Mascot::without_non_dependence_allocation(MascotConfig::default()).expect("valid config");
    let (correct, false_deps) = run_pattern(&mut ablation, rounds);
    println!("\nTAGE without non-dependence allocation (Fig. 11 ablation):");
    println!(
        "  branch-conditional dependence: {correct}/{measured} correct, {false_deps} false dependencies"
    );
    println!("\nMASCOT learns the not-taken context as an explicit non-dependence entry;");
    println!("the ablation can only decay confidence, so the false dependencies persist.");
}
