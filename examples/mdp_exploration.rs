//! Compare every memory-dependence predictor on one benchmark.
//!
//! Generates a synthetic SPEC-like workload, runs the full predictor zoo on
//! the Golden Cove core, and prints IPC plus the misprediction taxonomy.
//!
//! Run with: `cargo run --release --example mdp_exploration [benchmark]`
//! (default benchmark: `perlbench2`; list with `--list`).

use mascot_bench::{run_one, PredictorKind, TextTable};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "perlbench2".into());
    if arg == "--list" {
        for p in spec::all_profiles() {
            println!("{}", p.name);
        }
        return;
    }
    let Some(profile) = spec::profile(&arg) else {
        eprintln!("unknown benchmark {arg:?}; try --list");
        std::process::exit(1);
    };
    let kinds = [
        PredictorKind::PerfectMdp,
        PredictorKind::PerfectMdpSmb,
        PredictorKind::StoreSets,
        PredictorKind::NoSq,
        PredictorKind::Phast,
        PredictorKind::MascotMdp,
        PredictorKind::Mascot,
        PredictorKind::MascotOpt(4),
        PredictorKind::TageNoNd,
    ];
    let core = CoreConfig::golden_cove();
    println!(
        "benchmark {}: expected dependent-load fraction {:.0}%\n",
        profile.name,
        profile.expected_dependent_fraction() * 100.0
    );
    let mut t = TextTable::new([
        "predictor", "KiB", "IPC", "missed", "false", "wrong-store", "smb-err", "squashes",
        "bypassed",
    ]);
    let mut base_ipc = None;
    for kind in kinds {
        let r = run_one(&profile, kind, &core, 150_000, 2025);
        let s = &r.stats;
        base_ipc.get_or_insert(s.ipc());
        t.row([
            r.predictor.clone(),
            format!("{:.1}", r.storage_kib),
            format!("{:.3} ({:+.2}%)", s.ipc(), (s.ipc() / base_ipc.unwrap() - 1.0) * 100.0),
            s.missed_dependencies.to_string(),
            s.false_dependencies.to_string(),
            s.wrong_store.to_string(),
            s.smb_errors.to_string(),
            (s.mem_order_squashes + s.smb_squashes).to_string(),
            s.loads_bypassed.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("IPC deltas are relative to perfect MDP (the paper's baseline).");
}
