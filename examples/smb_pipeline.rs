//! Watch speculative memory bypassing work inside the pipeline.
//!
//! Builds a store→load→use chain whose store data arrives late, then runs
//! it twice — once with MASCOT restricted to MDP and once with full
//! MDP+SMB — and reports how the dependent-instruction issue wait (§VI-A's
//! metric) and IPC respond. This mirrors the paper's perlbench analysis,
//! where bypassing cut the average dependence wait from 38.7 to 15.7
//! cycles.
//!
//! Run with: `cargo run --release --example smb_pipeline`

use mascot_bench::{run_one, PredictorKind};
use mascot_sim::CoreConfig;
use mascot_workloads::WorkloadProfile;

fn main() {
    // A bypass-friendly workload: every load depends on a just-executed
    // store whose data is produced late, and each loaded value feeds a
    // serial chain through memory.
    let profile = WorkloadProfile {
        hammocks: 0,
        spill_fills: 4,
        class_mix: [1.0, 0.0, 0.0, 0.0],
        stream_loads: 2,
        chase_loads: 0,
        alu_per_iter: 4,
        distance_noise: 0,
        noise_branches: 1,
        branch_entropy: 0.1,
        store_data_latency: 10,
        load_consumers: 3,
        store_chase: 4,
        code_contexts: 1,
        load_addr_latency: 6,
        ..WorkloadProfile::base("smb-demo")
    };
    let core = CoreConfig::golden_cove();
    println!("workload: {} (dependent-load fraction {:.0}%)\n", profile.name,
        profile.expected_dependent_fraction() * 100.0);

    let mdp = run_one(&profile, PredictorKind::MascotMdp, &core, 120_000, 7);
    let smb = run_one(&profile, PredictorKind::Mascot, &core, 120_000, 7);

    for r in [&mdp, &smb] {
        let s = &r.stats;
        println!("{:<12} IPC {:.3}", r.predictor, s.ipc());
        println!("  loads: {} bypassed, {} forwarded, {} from cache",
            s.loads_bypassed, s.loads_forwarded, s.loads_from_cache);
        println!("  avg dispatch->issue wait of load consumers: {:.1} cycles",
            s.avg_dependent_wait());
        println!("  squashes: {} memory-order, {} bypass\n",
            s.mem_order_squashes, s.smb_squashes);
    }
    let speedup = (smb.stats.ipc() / mdp.stats.ipc() - 1.0) * 100.0;
    let wait_cut = (1.0 - smb.stats.avg_dependent_wait() / mdp.stats.avg_dependent_wait()) * 100.0;
    println!("bypassing: {speedup:+.1}% IPC, {wait_cut:.0}% shorter dependence waits");
    println!("(the paper reports a 60% wait reduction on perlbench, §VI-A)");
}
