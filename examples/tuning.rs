//! The §IV-F tuning workflow: measure per-slot F1 utilisation, derive a
//! sizing, and check the resulting compact predictor.
//!
//! Run with: `cargo run --release --example tuning`

use mascot::config::MascotConfig;
use mascot::predictor::Mascot;
use mascot::MemDepPredictor;
use mascot_bench::run_with_predictor;
use mascot_predictors::AnyPredictor;
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let core = CoreConfig::golden_cove();
    let profile = spec::profile("perlbench2").expect("known benchmark");

    // 1. Run MASCOT with tuning instrumentation (F1 per slot, periodic
    //    snapshots as in §IV-F).
    let cfg = MascotConfig::default().with_tuning();
    let mut p = AnyPredictor::Mascot(Mascot::new(cfg).expect("valid config"));
    let r = run_with_predictor(&profile, &mut p, &core, 150_000, 2025, Some(25_000));
    println!("instrumented run: IPC {:.3}\n", r.stats.ipc());

    let mascot = p.as_mascot().expect("mascot");
    let tuning = mascot.tuning().expect("tuning enabled");
    println!("slot utilisation per table (fraction with average F1 >= 0.1):");
    for t in 0..tuning.num_tables() {
        let frac = tuning.useful_fraction(t, 0.1);
        let bar: String = std::iter::repeat_n('#', (frac * 40.0) as usize).collect();
        println!(
            "  T{} (history {:>3}): {:>5.1}%  {bar}",
            t + 1,
            mascot.config().history_lengths[t],
            frac * 100.0
        );
    }

    // 2. The paper's conclusion from these curves is MASCOT-OPT: grow the
    //    PC-indexed table, shrink the long-history ones.
    let opt = MascotConfig::opt();
    println!(
        "\nMASCOT-OPT sizing: tables {:?} (default was 512 each)",
        opt.table_entries
    );
    println!(
        "storage: {:.1} KiB -> {:.1} KiB ({:.0}% smaller); tag-4 variant: {:.1} KiB",
        MascotConfig::default().storage_kib(),
        opt.storage_kib(),
        (1.0 - opt.storage_bits() as f64 / MascotConfig::default().storage_bits() as f64) * 100.0,
        MascotConfig::opt_with_tag_reduction(4).storage_kib()
    );

    // 3. Verify the compact predictor holds performance on this benchmark.
    let mut compact = AnyPredictor::Mascot(
        Mascot::new(MascotConfig::opt_with_tag_reduction(4)).expect("valid config"),
    );
    let rc = run_with_predictor(&profile, &mut compact, &core, 150_000, 2025, None);
    println!(
        "\ncompact 10.1 KiB MASCOT: IPC {:.3} ({:+.2}% vs instrumented 14 KiB run)",
        rc.stats.ipc(),
        (rc.stats.ipc() / r.stats.ipc() - 1.0) * 100.0
    );
    let _ = compact.storage_kib();
}
