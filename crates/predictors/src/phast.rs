//! PHAST context-sensitive memory-dependence predictor (Kim & Ros, HPCA
//! 2024), as configured in Table II of the MASCOT paper.
//!
//! PHAST organises entries into eight 4-way tables with geometrically
//! increasing global-history lengths, looked up in parallel with the
//! longest-history hit providing the prediction. Entries carry a 16-bit
//! tag, 4-bit usefulness counter, 7-bit distance and 2 LRU bits (29 bits;
//! 4 K entries = 14.5 KB).
//!
//! Its distinctive allocation policy picks the destination table by the
//! number of branches *between* the conflicting store and the load: the
//! smallest history window that covers the whole load–store span. Unlike
//! MASCOT it records only dependencies — a false dependence merely
//! decrements the provider's usefulness.

use mascot::history::{rewind_hashers, BranchEvent, GlobalHistory, TableHasher};
use mascot::prediction::{
    GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction, StoreDistance,
};
use mascot::predictor::TableLookup;
use mascot::table::AssocTable;
use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use mascot_stats::SaturatingCounter;
use serde::{Deserialize, Serialize};

/// Maximum tables supported by the fixed-size metadata.
pub const MAX_TABLES: usize = 16;

/// Configuration for [`Phast`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhastConfig {
    /// History length per table (branches), starting at 0.
    pub history_lengths: Vec<u32>,
    /// Entries per table.
    pub table_entries: Vec<u32>,
    /// Tag width (16 bits in Table II).
    pub tag_bits: u8,
    /// Usefulness counter width (4 bits in Table II).
    pub usefulness_bits: u8,
    /// Associativity (4).
    pub associativity: u32,
    /// Initial usefulness of a freshly allocated entry.
    pub alloc_usefulness: u8,
}

impl Default for PhastConfig {
    fn default() -> Self {
        Self {
            history_lengths: vec![0, 2, 4, 8, 16, 32, 64, 128],
            table_entries: vec![512; 8],
            tag_bits: 16,
            usefulness_bits: 4,
            associativity: 4,
            alloc_usefulness: 7,
        }
    }
}

impl PhastConfig {
    /// The constraints [`Phast::new`] enforces by panicking, as a result —
    /// used by the snapshot decoder, which must fail closed instead.
    fn check(&self) -> Result<(), SnapError> {
        let n = self.history_lengths.len();
        if n == 0 || n > MAX_TABLES || self.table_entries.len() != n {
            return Err(SnapError::Corrupt("phast config shape is invalid"));
        }
        if self.associativity == 0 {
            return Err(SnapError::Corrupt("phast associativity is zero"));
        }
        for &e in &self.table_entries {
            if e == 0 || e % self.associativity != 0 {
                return Err(SnapError::Corrupt("phast table size is invalid"));
            }
            if !(e / self.associativity).is_power_of_two() {
                return Err(SnapError::Corrupt("phast set count is not a power of two"));
            }
        }
        if self.history_lengths.iter().any(|&h| h > 1 << 20) {
            return Err(SnapError::Corrupt("phast history length out of range"));
        }
        if self.tag_bits == 0 || self.tag_bits > 30 {
            return Err(SnapError::Corrupt("phast tag width out of range"));
        }
        if !(1..=7).contains(&self.usefulness_bits)
            || self.alloc_usefulness > (1 << self.usefulness_bits) - 1
        {
            return Err(SnapError::Corrupt("phast counter widths are invalid"));
        }
        Ok(())
    }

    fn snap_encode(&self, w: &mut SnapWriter) {
        w.u32(self.history_lengths.len() as u32);
        for &h in &self.history_lengths {
            w.u32(h);
        }
        for &e in &self.table_entries {
            w.u32(e);
        }
        w.u8(self.tag_bits);
        w.u8(self.usefulness_bits);
        w.u32(self.associativity);
        w.u8(self.alloc_usefulness);
    }

    fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.u32("phast config table count")? as usize;
        if n == 0 || n > MAX_TABLES {
            return Err(SnapError::Corrupt("phast config table count out of range"));
        }
        let mut history_lengths = Vec::with_capacity(n);
        for _ in 0..n {
            history_lengths.push(r.u32("phast history length")?);
        }
        let mut table_entries = Vec::with_capacity(n);
        for _ in 0..n {
            table_entries.push(r.u32("phast table entries")?);
        }
        let cfg = Self {
            history_lengths,
            table_entries,
            tag_bits: r.u8("phast tag width")?,
            usefulness_bits: r.u8("phast usefulness width")?,
            associativity: r.u32("phast associativity")?,
            alloc_usefulness: r.u8("phast allocation usefulness")?,
        };
        cfg.check()?;
        Ok(cfg)
    }
}

/// Entry payload; the tag lives in the table's SoA tag lane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct PhastEntry {
    distance: u8,
    usefulness: SaturatingCounter,
    lru: u8,
}

impl PhastEntry {
    fn snap_encode(&self, w: &mut SnapWriter) {
        w.u8(self.distance);
        self.usefulness.snap_encode(w);
        w.u8(self.lru);
    }

    fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let distance = r.u8("phast entry distance")?;
        // PHAST records dependencies only: valid entries always carry a
        // real distance.
        if !(1..=127).contains(&distance) {
            return Err(SnapError::Corrupt("phast entry distance out of range"));
        }
        let usefulness = SaturatingCounter::snap_decode(r)?;
        let lru = r.u8("phast entry lru")?;
        if lru > 3 {
            return Err(SnapError::Corrupt("phast entry lru exceeds 2 bits"));
        }
        Ok(Self {
            distance,
            usefulness,
            lru,
        })
    }
}

/// Per-prediction metadata for [`Phast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhastMeta {
    lookups: [TableLookup; MAX_TABLES],
    num_tables: u8,
    provider: Option<u8>,
}

impl PhastMeta {
    fn lookup(&self, table: usize) -> TableLookup {
        debug_assert!(table < usize::from(self.num_tables));
        self.lookups[table]
    }
}

/// The PHAST predictor.
///
/// # Examples
///
/// ```
/// use mascot_predictors::Phast;
/// use mascot::MemDepPredictor;
///
/// let p = Phast::default();
/// assert!((p.storage_kib() - 14.5).abs() < 0.01); // Table II
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Phast {
    cfg: PhastConfig,
    tables: Vec<AssocTable<PhastEntry>>,
    hashers: Vec<TableHasher>,
    history: GlobalHistory,
}

impl Default for Phast {
    fn default() -> Self {
        Self::new(PhastConfig::default())
    }
}

impl Phast {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the per-table vectors disagree in length, exceed
    /// [`MAX_TABLES`], or yield non-power-of-two set counts.
    pub fn new(cfg: PhastConfig) -> Self {
        assert_eq!(
            cfg.history_lengths.len(),
            cfg.table_entries.len(),
            "history/table shape mismatch"
        );
        assert!(cfg.history_lengths.len() <= MAX_TABLES, "too many tables");
        let fill = PhastEntry {
            distance: 0,
            usefulness: SaturatingCounter::new(cfg.usefulness_bits, 0),
            lru: 0,
        };
        let tables: Vec<_> = cfg
            .table_entries
            .iter()
            .map(|&e| {
                AssocTable::new(
                    (e / cfg.associativity) as usize,
                    cfg.associativity as usize,
                    fill.clone(),
                )
            })
            .collect();
        let hashers: Vec<_> = cfg
            .history_lengths
            .iter()
            .zip(&tables)
            .map(|(&h, t)| TableHasher::new(h, t.index_bits(), u32::from(cfg.tag_bits)))
            .collect();
        let max_hist = *cfg.history_lengths.last().expect("at least one table") as usize;
        Self {
            tables,
            hashers,
            history: GlobalHistory::new((max_hist * 2).max(64)),
            cfg,
        }
    }

    fn compute_lookups(&self, pc: u64) -> ([TableLookup; MAX_TABLES], u8) {
        let mut lookups = [TableLookup::default(); MAX_TABLES];
        for (i, h) in self.hashers.iter().enumerate() {
            lookups[i] = TableLookup {
                index: h.index(pc) as u32,
                tag: h.tag(pc) as u32,
            };
        }
        (lookups, self.hashers.len() as u8)
    }

    /// The table whose history window covers `branches_between` branches:
    /// PHAST's signature allocation rule.
    fn table_for_span(&self, branches_between: u32) -> usize {
        self.cfg
            .history_lengths
            .iter()
            .position(|&h| h >= branches_between)
            .unwrap_or(self.cfg.history_lengths.len() - 1)
    }

    fn touch_lru(table: &mut AssocTable<PhastEntry>, index: u64, hit_way: usize) {
        table.for_each_valid_mut(index, |way, e| {
            if way == hit_way {
                e.lru = 3;
            } else {
                e.lru = e.lru.saturating_sub(1);
            }
        });
    }

    /// Installs a dependence at the span-selected table. Existing entries
    /// are retargeted; otherwise the victim is an invalid way, else the LRU
    /// way among zero-usefulness entries. If no way is replaceable, all ways
    /// decay (so stale sets eventually open up).
    fn allocate(&mut self, meta: &PhastMeta, branches_between: u32, distance: StoreDistance) {
        let t = self.table_for_span(branches_between);
        let lk = meta.lookup(t);
        let (index, tag) = (u64::from(lk.index), u64::from(lk.tag));
        if let Some((way, e)) = self.tables[t].find_mut(index, tag) {
            e.distance = distance.get();
            e.usefulness.set(self.cfg.alloc_usefulness);
            Self::touch_lru(&mut self.tables[t], index, way);
            return;
        }
        let entry = PhastEntry {
            distance: distance.get(),
            usefulness: SaturatingCounter::new(self.cfg.usefulness_bits, self.cfg.alloc_usefulness),
            lru: 3,
        };
        let table = &mut self.tables[t];
        let ways = table.assoc();
        // Victim: first invalid way, else the LRU way among zero-usefulness
        // entries (first-minimal on ties, matching `min_by_key`).
        let victim = (0..ways).find(|&w| !table.is_valid(index, w)).or_else(|| {
            (0..ways)
                .filter(|&w| table.is_valid(index, w) && table.payload(index, w).usefulness.is_zero())
                .min_by_key(|&w| table.payload(index, w).lru)
        });
        match victim {
            Some(w) => {
                table.insert_at(index, w, tag, entry);
                Self::touch_lru(table, index, w);
            }
            None => {
                table.for_each_valid_mut(index, |_, e| e.usefulness.decrement());
            }
        }
    }

    /// Total valid entries across all tables.
    pub fn entry_count(&self) -> u64 {
        self.tables.iter().map(|t| t.occupancy() as u64).sum()
    }

    /// Serializes the full state (configuration, tables, history). Hashers
    /// are recomputed from the history on decode.
    pub fn snap_encode(&self, w: &mut SnapWriter) {
        self.cfg.snap_encode(w);
        self.history.snap_encode(w);
        for table in &self.tables {
            table.snap_encode_with(w, |e, w| e.snap_encode(w));
        }
    }

    /// Decodes a predictor from a snapshot payload, fail-closed.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation or any field inconsistent with the
    /// embedded configuration.
    pub fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cfg = PhastConfig::snap_decode(r)?;
        let mut p = Self::new(cfg);
        let history = GlobalHistory::snap_decode(r)?;
        if history.capacity() != p.history.capacity() {
            return Err(SnapError::Corrupt("phast history capacity mismatch"));
        }
        p.history = history;
        for hasher in &mut p.hashers {
            hasher.recompute(&p.history);
        }
        let fill = PhastEntry {
            distance: 0,
            usefulness: SaturatingCounter::new(p.cfg.usefulness_bits, 0),
            lru: 0,
        };
        let tag_limit = 1u64 << p.cfg.tag_bits;
        for i in 0..p.tables.len() {
            p.tables[i] = AssocTable::snap_decode_with(
                r,
                (p.cfg.table_entries[i] / p.cfg.associativity) as usize,
                p.cfg.associativity as usize,
                fill.clone(),
                |t| t < tag_limit,
                PhastEntry::snap_decode,
            )?;
        }
        Ok(p)
    }

    /// Folds another predictor's tables into this one (warm resharding),
    /// preferring the higher-usefulness entry on collision.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] when the configurations differ.
    pub fn merge_from(&mut self, other: &Self) -> Result<u64, SnapError> {
        if self.cfg != other.cfg {
            return Err(SnapError::Corrupt(
                "cannot merge phast predictors with different configurations",
            ));
        }
        let mut written = 0;
        for (mine, theirs) in self.tables.iter_mut().zip(&other.tables) {
            written += mine.merge_from_with(theirs, |incoming, incumbent| {
                incoming.usefulness.value() > incumbent.usefulness.value()
            })?;
        }
        Ok(written)
    }
}

impl MemDepPredictor for Phast {
    type Meta = PhastMeta;

    fn name(&self) -> &'static str {
        "phast"
    }

    fn predict(
        &mut self,
        pc: u64,
        _store_seq: u64,
        _oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, PhastMeta) {
        let (lookups, num_tables) = self.compute_lookups(pc);
        let mut provider = None;
        let mut prediction = MemDepPrediction::NoDependence;
        for t in (0..self.tables.len()).rev() {
            let lk = lookups[t];
            if let Some((way, e)) = self.tables[t].find(u64::from(lk.index), u64::from(lk.tag)) {
                let distance =
                    StoreDistance::new(u32::from(e.distance)).expect("stored distances valid");
                provider = Some(t as u8);
                prediction = MemDepPrediction::Dependence { distance };
                Self::touch_lru(&mut self.tables[t], u64::from(lk.index), way);
                break;
            }
        }
        (
            prediction,
            PhastMeta {
                lookups,
                num_tables,
                provider,
            },
        )
    }

    fn train(
        &mut self,
        _pc: u64,
        meta: PhastMeta,
        predicted: MemDepPrediction,
        outcome: &LoadOutcome,
    ) {
        let provider = meta.provider.map(usize::from);
        match outcome.dependence {
            Some(dep) => {
                if predicted.distance() == Some(dep.distance) {
                    // Correct: reinforce.
                    if let Some(p) = provider {
                        let lk = meta.lookup(p);
                        if let Some((_, e)) =
                            self.tables[p].find_mut(u64::from(lk.index), u64::from(lk.tag))
                        {
                            e.usefulness.increment();
                        }
                    }
                } else {
                    // Missed or mis-targeted dependence: punish the provider
                    // and install the pair at the span-selected table.
                    if let Some(p) = provider {
                        let lk = meta.lookup(p);
                        if let Some((_, e)) =
                            self.tables[p].find_mut(u64::from(lk.index), u64::from(lk.tag))
                        {
                            e.usefulness.decrement();
                        }
                    }
                    self.allocate(&meta, dep.branches_between, dep.distance);
                }
            }
            None => {
                // False dependence: PHAST only decays confidence (no
                // non-dependence entries — MASCOT's key difference).
                if predicted.is_dependence() {
                    if let Some(p) = provider {
                        let lk = meta.lookup(p);
                        if let Some((_, e)) =
                            self.tables[p].find_mut(u64::from(lk.index), u64::from(lk.tag))
                        {
                            e.usefulness.decrement();
                        }
                    }
                }
            }
        }
    }

    fn on_branch(&mut self, event: &BranchEvent) {
        for h in &mut self.hashers {
            h.on_branch(&self.history, event);
        }
        self.history.push(*event);
    }

    fn rewind_history(&mut self, recent: &[BranchEvent]) {
        rewind_hashers(&mut self.history, &mut self.hashers, recent);
    }

    fn storage_bits(&self) -> u64 {
        // Table II: 16-bit tag + 4-bit counter + 7-bit distance + 2-bit LRU.
        let per_entry =
            u64::from(self.cfg.tag_bits) + u64::from(self.cfg.usefulness_bits) + 7 + 2;
        self.cfg.table_entries.iter().map(|&e| u64::from(e) * per_entry).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot::prediction::{BypassClass, ObservedDependence};

    fn dep(distance: u32, branches_between: u32) -> LoadOutcome {
        LoadOutcome::dependent(ObservedDependence {
            distance: StoreDistance::new(distance).unwrap(),
            class: BypassClass::MdpOnly,
            store_pc: 0x2000,
            branches_between,
        })
    }

    #[test]
    fn table_ii_size_is_14_5_kb() {
        let p = Phast::default();
        assert_eq!(p.storage_bits(), 4096 * 29);
        assert!((p.storage_kib() - 14.5).abs() < 0.01);
    }

    #[test]
    fn never_predicts_bypass() {
        let mut p = Phast::default();
        let pc = 0x4000;
        for _ in 0..50 {
            let (pr, meta) = p.predict(pc, 0, None);
            assert!(!pr.is_bypass());
            p.train(pc, meta, pr, &dep(2, 0));
        }
        assert!(!p.predict(pc, 0, None).0.is_bypass());
    }

    #[test]
    fn span_selects_allocation_table() {
        let p = Phast::default();
        assert_eq!(p.table_for_span(0), 0);
        assert_eq!(p.table_for_span(1), 1);
        assert_eq!(p.table_for_span(2), 1);
        assert_eq!(p.table_for_span(3), 2);
        assert_eq!(p.table_for_span(100), 7);
        assert_eq!(p.table_for_span(1000), 7); // clamps to the last table
    }

    #[test]
    fn learns_dependence_at_spanning_table() {
        let mut p = Phast::default();
        let pc = 0x4000;
        // Span of 5 branches -> table 3 (history 8).
        let (pr, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pr, &dep(4, 5));
        let (pred, meta) = p.predict(pc, 0, None);
        assert_eq!(pred.distance().unwrap().get(), 4);
        assert_eq!(meta.provider, Some(3));
    }

    #[test]
    fn false_dependence_only_decays() {
        let mut p = Phast::default();
        let pc = 0x4000;
        let (pr, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pr, &dep(2, 0));
        // A single false dependence must NOT unlearn the entry (4-bit
        // counter allocated at 7).
        let (pr, meta) = p.predict(pc, 0, None);
        assert!(pr.is_dependence());
        p.train(pc, meta, pr, &LoadOutcome::independent());
        assert!(p.predict(pc, 0, None).0.is_dependence());
    }

    #[test]
    fn repeated_false_dependencies_eventually_allow_eviction() {
        let mut p = Phast::default();
        let pc = 0x4000;
        let (pr, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pr, &dep(2, 0));
        for _ in 0..8 {
            let (pr, meta) = p.predict(pc, 0, None);
            p.train(pc, meta, pr, &LoadOutcome::independent());
        }
        // Usefulness has decayed to zero; the entry still predicts (PHAST
        // has no non-dependence state) but is now replaceable.
        let t0 = &p.tables[0];
        let any_zero = t0
            .iter_occupied()
            .any(|(_, e)| e.usefulness.is_zero());
        assert!(any_zero);
    }

    #[test]
    fn snap_roundtrip_is_bit_identical() {
        use mascot::history::BranchKind;
        let mut p = Phast::default();
        for i in 0..120u64 {
            p.on_branch(&BranchEvent {
                pc: 0x100 + (i % 32) * 4,
                kind: BranchKind::Conditional,
                taken: i % 3 == 0,
                target: 0x200,
            });
            let pc = 0x4000 + (i % 10) * 8;
            let (pr, meta) = p.predict(pc, 0, None);
            let out = if i % 4 == 0 {
                LoadOutcome::independent()
            } else {
                dep(1 + (i % 6) as u32, (i % 9) as u32)
            };
            p.train(pc, meta, pr, &out);
        }
        let mut w = SnapWriter::new();
        p.snap_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut q = Phast::snap_decode(&mut r).unwrap();
        r.finish().unwrap();
        let mut w2 = SnapWriter::new();
        q.snap_encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        for i in 0..10u64 {
            let pc = 0x4000 + i * 8;
            assert_eq!(p.predict(pc, 0, None).0, q.predict(pc, 0, None).0);
        }
        // Fail-closed on truncation.
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut r = SnapReader::new(&bytes[..cut]);
            let decoded = Phast::snap_decode(&mut r);
            assert!(decoded.is_err() || r.finish().is_err(), "cut {cut}");
        }
    }

    #[test]
    fn merge_unions_disjoint_entries() {
        let mut a = Phast::default();
        let mut b = Phast::default();
        for pc in [0x1000u64, 0x1040] {
            let (pr, meta) = a.predict(pc, 0, None);
            a.train(pc, meta, pr, &dep(2, 0));
        }
        for pc in [0x8000u64, 0x8040] {
            let (pr, meta) = b.predict(pc, 0, None);
            b.train(pc, meta, pr, &dep(5, 0));
        }
        let written = a.merge_from(&b).unwrap();
        assert_eq!(written, 2);
        assert!(a.predict(0x1000, 0, None).0.is_dependence());
        assert!(a.predict(0x8000, 0, None).0.is_dependence());
    }

    #[test]
    fn wrong_distance_retargets() {
        let mut p = Phast::default();
        let pc = 0x4000;
        let (pr, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pr, &dep(2, 0));
        let (pr, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pr, &dep(6, 0));
        assert_eq!(p.predict(pc, 0, None).0.distance().unwrap().get(), 6);
    }
}
