//! NoSQ-style combined MDP/SMB predictor (Sha, Martin & Roth, MICRO 2006),
//! as configured in §V / Table II of the MASCOT paper.
//!
//! Two 4-way tables of 2 K entries each: a *path-dependent* table indexed by
//! a GShare-style hash of the load PC with folded global history, and a
//! *path-independent* table indexed by PC alone. Entries carry a 22-bit tag,
//! a 7-bit confidence counter, a 7-bit store distance and 2 LRU bits (19 KB
//! total).
//!
//! Prediction policy (§V): a saturated-confidence hit in the path-dependent
//! table performs SMB; a lower-confidence path-dependent hit makes the load
//! wait for the predicted store only; a path-independent hit is never
//! allowed to bypass; a miss lets the load execute speculatively. NoSQ's
//! bypass datapath supports offset (partial-word) bypassing.

use mascot::history::{rewind_hashers, BranchEvent, GlobalHistory, TableHasher};
use mascot::prediction::{
    GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction, StoreDistance,
};
use mascot::predictor::TableLookup;
use mascot::table::AssocTable;
use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use mascot_stats::SaturatingCounter;
use serde::{Deserialize, Serialize};

/// Configuration for [`NoSq`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoSqConfig {
    /// Entries per table (Table II: 2048 each, 4096 total).
    pub entries_per_table: u32,
    /// Associativity (4).
    pub associativity: u32,
    /// Tag width (22 bits).
    pub tag_bits: u8,
    /// Confidence counter width (7 bits).
    pub confidence_bits: u8,
    /// Branches of global history hashed into the path-dependent index.
    pub history_len: u32,
}

impl Default for NoSqConfig {
    fn default() -> Self {
        Self {
            entries_per_table: 2048,
            associativity: 4,
            tag_bits: 22,
            confidence_bits: 7,
            history_len: 10,
        }
    }
}

impl NoSqConfig {
    fn check(&self) -> Result<(), SnapError> {
        if self.associativity == 0
            || self.entries_per_table == 0
            || self.entries_per_table % self.associativity != 0
            || !(self.entries_per_table / self.associativity).is_power_of_two()
        {
            return Err(SnapError::Corrupt("nosq table geometry is invalid"));
        }
        if self.tag_bits == 0 || self.tag_bits > 30 {
            return Err(SnapError::Corrupt("nosq tag width out of range"));
        }
        if !(1..=7).contains(&self.confidence_bits) {
            return Err(SnapError::Corrupt("nosq confidence width out of range"));
        }
        if self.history_len > 1 << 20 {
            return Err(SnapError::Corrupt("nosq history length out of range"));
        }
        Ok(())
    }

    fn snap_encode(&self, w: &mut SnapWriter) {
        w.u32(self.entries_per_table);
        w.u32(self.associativity);
        w.u8(self.tag_bits);
        w.u8(self.confidence_bits);
        w.u32(self.history_len);
    }

    fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cfg = Self {
            entries_per_table: r.u32("nosq entries per table")?,
            associativity: r.u32("nosq associativity")?,
            tag_bits: r.u8("nosq tag width")?,
            confidence_bits: r.u8("nosq confidence width")?,
            history_len: r.u32("nosq history length")?,
        };
        cfg.check()?;
        Ok(cfg)
    }
}

/// Entry payload; the tag lives in the table's SoA tag lane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct NoSqEntry {
    distance: u8,
    confidence: SaturatingCounter,
    lru: u8,
}

impl NoSqEntry {
    fn snap_encode(&self, w: &mut SnapWriter) {
        w.u8(self.distance);
        self.confidence.snap_encode(w);
        w.u8(self.lru);
    }

    fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let distance = r.u8("nosq entry distance")?;
        if !(1..=127).contains(&distance) {
            return Err(SnapError::Corrupt("nosq entry distance out of range"));
        }
        let confidence = SaturatingCounter::snap_decode(r)?;
        let lru = r.u8("nosq entry lru")?;
        if lru > 3 {
            return Err(SnapError::Corrupt("nosq entry lru exceeds 2 bits"));
        }
        Ok(Self {
            distance,
            confidence,
            lru,
        })
    }
}

/// Which table provided a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Provider {
    PathDependent,
    PathIndependent,
    None,
}

/// Per-prediction metadata for [`NoSq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoSqMeta {
    path_dep: TableLookup,
    path_indep: TableLookup,
    provider: Provider,
}

/// The NoSQ-style predictor.
///
/// # Examples
///
/// ```
/// use mascot_predictors::NoSq;
/// use mascot::MemDepPredictor;
///
/// let p = NoSq::default();
/// assert!((p.storage_kib() - 19.0).abs() < 0.01); // Table II
/// assert!(p.bypass_supports_offset());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoSq {
    cfg: NoSqConfig,
    path_dep: AssocTable<NoSqEntry>,
    path_indep: AssocTable<NoSqEntry>,
    dep_hasher: TableHasher,
    indep_hasher: TableHasher,
    history: GlobalHistory,
}

impl Default for NoSq {
    fn default() -> Self {
        Self::new(NoSqConfig::default())
    }
}

impl NoSq {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if entries/associativity do not yield power-of-two set counts.
    pub fn new(cfg: NoSqConfig) -> Self {
        let sets = (cfg.entries_per_table / cfg.associativity) as usize;
        let fill = NoSqEntry {
            distance: 0,
            confidence: SaturatingCounter::new(cfg.confidence_bits, 0),
            lru: 0,
        };
        let path_dep = AssocTable::new(sets, cfg.associativity as usize, fill.clone());
        let path_indep = AssocTable::new(sets, cfg.associativity as usize, fill);
        let dep_hasher = TableHasher::new(cfg.history_len, path_dep.index_bits(), u32::from(cfg.tag_bits));
        let indep_hasher = TableHasher::new(0, path_indep.index_bits(), u32::from(cfg.tag_bits));
        Self {
            path_dep,
            path_indep,
            dep_hasher,
            indep_hasher,
            history: GlobalHistory::new((cfg.history_len as usize * 2).max(64)),
            cfg,
        }
    }

    fn touch_lru(table: &mut AssocTable<NoSqEntry>, index: u64, tag: u64) {
        let hit_way = table.set_tags(index).iter().rposition(|&t| t == tag);
        if let Some(hit) = hit_way {
            table.for_each_valid_mut(index, |way, e| {
                if way == hit {
                    e.lru = 3;
                } else {
                    e.lru = e.lru.saturating_sub(1);
                }
            });
        }
    }

    /// Inserts or updates `(index, tag)` with the observed distance.
    /// Existing entries are retargeted with confidence reset; new entries
    /// replace an invalid way, else the LRU way.
    fn upsert(&mut self, table: Table, lk: TableLookup, distance: StoreDistance) {
        let cfg_conf = self.cfg.confidence_bits;
        let t = match table {
            Table::PathDep => &mut self.path_dep,
            Table::PathIndep => &mut self.path_indep,
        };
        let (index, tag) = (u64::from(lk.index), u64::from(lk.tag));
        if let Some((_, e)) = t.find_mut(index, tag) {
            if e.distance == distance.get() {
                e.confidence.increment();
            } else {
                e.distance = distance.get();
                e.confidence.reset();
            }
            Self::touch_lru(t, index, tag);
            return;
        }
        let ways = t.assoc();
        let victim = (0..ways)
            .find(|&w| !t.is_valid(index, w))
            .unwrap_or_else(|| {
                (0..ways)
                    .min_by_key(|&w| {
                        let e = t.payload(index, w);
                        (e.lru, e.confidence.value())
                    })
                    .expect("associativity is non-zero")
            });
        t.insert_at(
            index,
            victim,
            tag,
            NoSqEntry {
                distance: distance.get(),
                confidence: SaturatingCounter::new(cfg_conf, 0),
                lru: 3,
            },
        );
        t.for_each_valid_mut(index, |way, e| {
            if way != victim {
                e.lru = e.lru.saturating_sub(1);
            }
        });
    }

    /// Total valid entries across both tables.
    pub fn entry_count(&self) -> u64 {
        (self.path_dep.occupancy() + self.path_indep.occupancy()) as u64
    }

    /// Serializes the full state (configuration, both tables, history).
    /// Hashers are recomputed from the history on decode.
    pub fn snap_encode(&self, w: &mut SnapWriter) {
        self.cfg.snap_encode(w);
        self.history.snap_encode(w);
        self.path_dep.snap_encode_with(w, |e, w| e.snap_encode(w));
        self.path_indep.snap_encode_with(w, |e, w| e.snap_encode(w));
    }

    /// Decodes a predictor from a snapshot payload, fail-closed.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation or any field inconsistent with the
    /// embedded configuration.
    pub fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cfg = NoSqConfig::snap_decode(r)?;
        let mut p = Self::new(cfg);
        let history = GlobalHistory::snap_decode(r)?;
        if history.capacity() != p.history.capacity() {
            return Err(SnapError::Corrupt("nosq history capacity mismatch"));
        }
        p.history = history;
        p.dep_hasher.recompute(&p.history);
        p.indep_hasher.recompute(&p.history);
        let fill = NoSqEntry {
            distance: 0,
            confidence: SaturatingCounter::new(p.cfg.confidence_bits, 0),
            lru: 0,
        };
        let sets = (p.cfg.entries_per_table / p.cfg.associativity) as usize;
        let assoc = p.cfg.associativity as usize;
        let tag_limit = 1u64 << p.cfg.tag_bits;
        p.path_dep = AssocTable::snap_decode_with(
            r,
            sets,
            assoc,
            fill.clone(),
            |t| t < tag_limit,
            NoSqEntry::snap_decode,
        )?;
        p.path_indep = AssocTable::snap_decode_with(
            r,
            sets,
            assoc,
            fill,
            |t| t < tag_limit,
            NoSqEntry::snap_decode,
        )?;
        Ok(p)
    }

    /// Folds another predictor's tables into this one (warm resharding),
    /// preferring the higher-confidence entry on collision.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] when the configurations differ.
    pub fn merge_from(&mut self, other: &Self) -> Result<u64, SnapError> {
        if self.cfg != other.cfg {
            return Err(SnapError::Corrupt(
                "cannot merge nosq predictors with different configurations",
            ));
        }
        let prefer = |incoming: &NoSqEntry, incumbent: &NoSqEntry| {
            incoming.confidence.value() > incumbent.confidence.value()
        };
        let mut written = self.path_dep.merge_from_with(&other.path_dep, prefer)?;
        written += self.path_indep.merge_from_with(&other.path_indep, prefer)?;
        Ok(written)
    }
}

#[derive(Debug, Clone, Copy)]
enum Table {
    PathDep,
    PathIndep,
}

impl MemDepPredictor for NoSq {
    type Meta = NoSqMeta;

    fn name(&self) -> &'static str {
        "nosq"
    }

    fn predict(
        &mut self,
        pc: u64,
        _store_seq: u64,
        _oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, NoSqMeta) {
        let pd = TableLookup {
            index: self.dep_hasher.index(pc) as u32,
            tag: self.dep_hasher.tag(pc) as u32,
        };
        let pi = TableLookup {
            index: self.indep_hasher.index(pc) as u32,
            tag: self.indep_hasher.tag(pc) as u32,
        };
        let mut provider = Provider::None;
        let mut prediction = MemDepPrediction::NoDependence;
        if let Some((_, e)) = self.path_dep.find(u64::from(pd.index), u64::from(pd.tag)) {
            provider = Provider::PathDependent;
            let distance = StoreDistance::new(u32::from(e.distance)).expect("stored distances are valid");
            prediction = if e.confidence.is_saturated() {
                MemDepPrediction::Bypass { distance }
            } else {
                MemDepPrediction::Dependence { distance }
            };
            Self::touch_lru(&mut self.path_dep, u64::from(pd.index), u64::from(pd.tag));
        } else if let Some((_, e)) = self.path_indep.find(u64::from(pi.index), u64::from(pi.tag)) {
            provider = Provider::PathIndependent;
            let distance = StoreDistance::new(u32::from(e.distance)).expect("stored distances are valid");
            // Path-independent predictions never bypass (§V).
            prediction = MemDepPrediction::Dependence { distance };
            Self::touch_lru(&mut self.path_indep, u64::from(pi.index), u64::from(pi.tag));
        }
        (
            prediction,
            NoSqMeta {
                path_dep: pd,
                path_indep: pi,
                provider,
            },
        )
    }

    fn train(
        &mut self,
        _pc: u64,
        meta: NoSqMeta,
        predicted: MemDepPrediction,
        outcome: &LoadOutcome,
    ) {
        match outcome.dependence {
            Some(dep) => {
                if predicted.distance() == Some(dep.distance) {
                    // Correct: reinforce the provider.
                    match meta.provider {
                        Provider::PathDependent => {
                            let lk = meta.path_dep;
                            if let Some((_, e)) = self
                                .path_dep
                                .find_mut(u64::from(lk.index), u64::from(lk.tag))
                            {
                                e.confidence.increment();
                            }
                        }
                        Provider::PathIndependent => {
                            let lk = meta.path_indep;
                            if let Some((_, e)) = self
                                .path_indep
                                .find_mut(u64::from(lk.index), u64::from(lk.tag))
                            {
                                e.confidence.increment();
                            }
                        }
                        Provider::None => {}
                    }
                    // Grow path-dependent coverage even when the
                    // path-independent table provided.
                    if meta.provider == Provider::PathIndependent {
                        self.upsert(Table::PathDep, meta.path_dep, dep.distance);
                    }
                } else {
                    // Missed or mis-targeted: (re)install in both tables.
                    self.upsert(Table::PathDep, meta.path_dep, dep.distance);
                    self.upsert(Table::PathIndep, meta.path_indep, dep.distance);
                }
            }
            None => {
                // False dependence: reset the provider's confidence so the
                // entry stops bypassing and soon falls to LRU replacement.
                if predicted.is_dependence() {
                    match meta.provider {
                        Provider::PathDependent => {
                            let lk = meta.path_dep;
                            if let Some((_, e)) = self
                                .path_dep
                                .find_mut(u64::from(lk.index), u64::from(lk.tag))
                            {
                                e.confidence.reset();
                            }
                        }
                        Provider::PathIndependent => {
                            let lk = meta.path_indep;
                            if let Some((_, e)) = self
                                .path_indep
                                .find_mut(u64::from(lk.index), u64::from(lk.tag))
                            {
                                e.confidence.reset();
                            }
                        }
                        Provider::None => {}
                    }
                }
            }
        }
    }

    fn on_branch(&mut self, event: &BranchEvent) {
        self.dep_hasher.on_branch(&self.history, event);
        self.indep_hasher.on_branch(&self.history, event);
        self.history.push(*event);
    }

    fn rewind_history(&mut self, recent: &[BranchEvent]) {
        // Two hashers share one log; borrow them as a slice so the shared
        // squash-undo fast path applies (see `rewind_hashers`).
        let mut hashers = [
            std::mem::replace(&mut self.dep_hasher, TableHasher::new(0, 1, 1)),
            std::mem::replace(&mut self.indep_hasher, TableHasher::new(0, 1, 1)),
        ];
        rewind_hashers(&mut self.history, &mut hashers, recent);
        let [dep, indep] = hashers;
        self.dep_hasher = dep;
        self.indep_hasher = indep;
    }

    fn bypass_supports_offset(&self) -> bool {
        true
    }

    fn storage_bits(&self) -> u64 {
        // Table II: 22-bit tag + 7-bit counter + 7-bit distance + 2-bit LRU.
        let per_entry = u64::from(self.cfg.tag_bits) + u64::from(self.cfg.confidence_bits) + 7 + 2;
        u64::from(self.cfg.entries_per_table) * 2 * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot::prediction::{BypassClass, ObservedDependence};

    fn dep(distance: u32) -> LoadOutcome {
        LoadOutcome::dependent(ObservedDependence {
            distance: StoreDistance::new(distance).unwrap(),
            class: BypassClass::DirectBypass,
            store_pc: 0x2000,
            branches_between: 0,
        })
    }

    #[test]
    fn table_ii_size_is_19kb() {
        let p = NoSq::default();
        assert_eq!(p.storage_bits(), 4096 * 38);
        assert!((p.storage_kib() - 19.0).abs() < 0.01);
    }

    #[test]
    fn learns_dependence_and_needs_full_confidence_to_bypass() {
        let mut p = NoSq::default();
        let pc = 0x4400;
        let (pred, meta) = p.predict(pc, 0, None);
        assert_eq!(pred, MemDepPrediction::NoDependence);
        p.train(pc, meta, pred, &dep(3));
        // Learned, but confidence 0: wait-only prediction.
        let (pred, _) = p.predict(pc, 0, None);
        assert_eq!(
            pred,
            MemDepPrediction::Dependence {
                distance: StoreDistance::new(3).unwrap()
            }
        );
        // The 7-bit counter must saturate (127 correct) before bypassing.
        for _ in 0..127 {
            let (pr, meta) = p.predict(pc, 0, None);
            p.train(pc, meta, pr, &dep(3));
        }
        assert!(p.predict(pc, 0, None).0.is_bypass());
    }

    #[test]
    fn false_dependence_resets_confidence() {
        let mut p = NoSq::default();
        let pc = 0x4400;
        let (pred, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pred, &dep(3));
        for _ in 0..127 {
            let (pr, meta) = p.predict(pc, 0, None);
            p.train(pc, meta, pr, &dep(3));
        }
        assert!(p.predict(pc, 0, None).0.is_bypass());
        let (pr, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pr, &LoadOutcome::independent());
        // Back to a wait-only prediction.
        let (after, _) = p.predict(pc, 0, None);
        assert!(matches!(after, MemDepPrediction::Dependence { .. }));
    }

    #[test]
    fn distance_change_retargets_entry() {
        let mut p = NoSq::default();
        let pc = 0x8800;
        let (pr, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pr, &dep(3));
        let (pr, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pr, &dep(9));
        let (pred, _) = p.predict(pc, 0, None);
        assert_eq!(pred.distance().unwrap().get(), 9);
    }

    #[test]
    fn supports_offset_bypass() {
        assert!(NoSq::default().bypass_supports_offset());
    }

    #[test]
    fn history_separates_contexts() {
        use mascot::history::BranchKind;
        let mut p = NoSq::default();
        let pc = 0x7000;
        let branch = |taken: bool| BranchEvent {
            pc: 0x100,
            kind: BranchKind::Conditional,
            taken,
            target: 0x180,
        };
        // Context taken -> distance 2; context not-taken -> independent.
        for i in 0..200u32 {
            let taken = i % 2 == 0;
            p.on_branch(&branch(taken));
            let (pr, meta) = p.predict(pc, 0, None);
            let out = if taken { dep(2) } else { LoadOutcome::independent() };
            p.train(pc, meta, pr, &out);
        }
        // With history in the index, the two contexts hit different entries,
        // so the taken context should predict dependence.
        p.on_branch(&branch(true));
        let (pred_taken, _) = p.predict(pc, 0, None);
        assert!(pred_taken.is_dependence());
    }

    #[test]
    fn snap_roundtrip_is_bit_identical() {
        use mascot::history::BranchKind;
        let mut p = NoSq::default();
        for i in 0..150u64 {
            p.on_branch(&BranchEvent {
                pc: 0x100 + (i % 16) * 4,
                kind: BranchKind::Conditional,
                taken: i % 2 == 0,
                target: 0x180,
            });
            let pc = 0x4400 + (i % 8) * 16;
            let (pr, meta) = p.predict(pc, i, None);
            let out = if i % 5 == 0 {
                LoadOutcome::independent()
            } else {
                dep(1 + (i % 7) as u32)
            };
            p.train(pc, meta, pr, &out);
        }
        let mut w = SnapWriter::new();
        p.snap_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut q = NoSq::snap_decode(&mut r).unwrap();
        r.finish().unwrap();
        let mut w2 = SnapWriter::new();
        q.snap_encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        for i in 0..8u64 {
            let pc = 0x4400 + i * 16;
            assert_eq!(p.predict(pc, 200, None).0, q.predict(pc, 200, None).0);
        }
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            let mut r = SnapReader::new(&bytes[..cut]);
            let decoded = NoSq::snap_decode(&mut r);
            assert!(decoded.is_err() || r.finish().is_err(), "cut {cut}");
        }
    }

    #[test]
    fn merge_unions_disjoint_entries() {
        let mut a = NoSq::default();
        let mut b = NoSq::default();
        let (pr, meta) = a.predict(0x1000, 0, None);
        a.train(0x1000, meta, pr, &dep(2));
        let (pr, meta) = b.predict(0x8000, 0, None);
        b.train(0x8000, meta, pr, &dep(5));
        let written = a.merge_from(&b).unwrap();
        assert!(written >= 2, "path-dep + path-indep entries: {written}");
        assert!(a.predict(0x1000, 6, None).0.is_dependence());
        assert!(a.predict(0x8000, 6, None).0.is_dependence());
    }

    /// Replacement prefers an invalid way before evicting live entries.
    #[test]
    fn replacement_prefers_invalid_ways() {
        let mut p = NoSq::default();
        // Train one entry, then another with a colliding PC family: both
        // must coexist (4-way sets have room).
        for pc in [0x1000u64, 0x2000, 0x3000] {
            let (pr, meta) = p.predict(pc, 0, None);
            p.train(pc, meta, pr, &dep(2));
        }
        for pc in [0x1000u64, 0x2000, 0x3000] {
            assert!(
                p.predict(pc, 0, None).0.is_dependence(),
                "{pc:#x} must still be resident"
            );
        }
    }

    /// The path-independent table provides when the path-dependent entry is
    /// missing, and such predictions never bypass.
    #[test]
    fn path_independent_fallback_never_bypasses() {
        use mascot::history::BranchKind;
        let mut p = NoSq::default();
        let pc = 0x5000;
        // Learn under one history.
        let (pr, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pr, &dep(4));
        // Saturate confidence under the same history.
        for _ in 0..130 {
            let (pr, meta) = p.predict(pc, 0, None);
            p.train(pc, meta, pr, &dep(4));
        }
        assert!(p.predict(pc, 0, None).0.is_bypass());
        // Shift the global history: the path-dependent index changes, the
        // path-independent entry still provides a wait-only prediction.
        for i in 0..12u64 {
            p.on_branch(&BranchEvent {
                pc: 0x100 + i * 4,
                kind: BranchKind::Conditional,
                taken: i % 2 == 0,
                target: 0x200,
            });
        }
        let pred = p.predict(pc, 0, None).0;
        assert!(pred.is_dependence(), "fallback must still predict: {pred:?}");
        assert!(!pred.is_bypass(), "path-independent hits never bypass");
    }
}
