//! Store Sets memory-dependence predictor (Chrysos & Emer, ISCA 1998).
//!
//! Two direct-mapped tables (Table II of the MASCOT paper): an 8 K-entry
//! Store Set ID Table (SSIT) indexed by instruction PC holding 12-bit SSIDs,
//! and a 4 K-entry Last Fetched Store Table (LFST) indexed by SSID holding
//! the sequence number of the most recently dispatched store in the set.
//! Total 18.5 KB.
//!
//! A load whose SSIT entry is valid looks up the LFST; if it names an
//! in-flight store the load is predicted dependent on it. On a memory-order
//! violation the load and store PCs are assigned to a common store set
//! (merging existing sets toward the smaller SSID, per the original paper's
//! "declarative" rules). The SSIT is cleared periodically, the classic
//! remedy for stale sets.

use mascot::history::BranchEvent;
use mascot::prediction::{
    GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction, StoreDistance,
};
use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// Configuration for [`StoreSets`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreSetsConfig {
    /// SSIT entries (direct mapped; power of two). Table II uses 8192.
    pub ssit_entries: usize,
    /// LFST entries (direct mapped; power of two). Table II uses 4096.
    pub lfst_entries: usize,
    /// SSID width in bits (Table II: 12).
    pub ssid_bits: u8,
    /// Store-ID width in bits as accounted in Table II (10).
    pub store_id_bits: u8,
    /// Trainings between full SSIT invalidations (the classic cyclic
    /// clearing that prevents sets from growing stale).
    pub clear_interval: u64,
}

impl Default for StoreSetsConfig {
    fn default() -> Self {
        Self {
            ssit_entries: 8192,
            lfst_entries: 4096,
            ssid_bits: 12,
            store_id_bits: 10,
            clear_interval: 500_000,
        }
    }
}

/// The Store Sets predictor.
///
/// # Examples
///
/// ```
/// use mascot_predictors::StoreSets;
/// use mascot::MemDepPredictor;
///
/// let p = StoreSets::default();
/// assert!((p.storage_kib() - 18.5).abs() < 0.01); // Table II
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreSets {
    cfg: StoreSetsConfig,
    /// SSID per PC slot; [`NO_SSID`] = invalid. Flat sentinel layout (no
    /// `Option` discriminant) keeps the hot direct-mapped probe to one
    /// 2-byte load per slot.
    ssit: Vec<u16>,
    /// Last-fetched-store sequence number per SSID; [`NO_STORE`] = invalid.
    lfst: Vec<u64>,
    next_ssid: u16,
    trains: u64,
}

/// Invalid-SSIT sentinel; real SSIDs are masked to `ssid_bits` (≤ 12).
const NO_SSID: u16 = u16::MAX;
/// Invalid-LFST sentinel; real store sequence numbers never reach it.
const NO_STORE: u64 = u64::MAX;

impl Default for StoreSets {
    fn default() -> Self {
        Self::new(StoreSetsConfig::default())
    }
}

impl StoreSets {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either table size is not a power of two.
    pub fn new(cfg: StoreSetsConfig) -> Self {
        assert!(cfg.ssit_entries.is_power_of_two(), "SSIT must be a power of two");
        assert!(cfg.lfst_entries.is_power_of_two(), "LFST must be a power of two");
        Self {
            ssit: vec![NO_SSID; cfg.ssit_entries],
            lfst: vec![NO_STORE; cfg.lfst_entries],
            next_ssid: 0,
            trains: 0,
            cfg,
        }
    }

    /// The SSID stored at SSIT slot `idx`, if valid.
    #[inline]
    fn ssid_at(&self, idx: usize) -> Option<u16> {
        let v = self.ssit[idx];
        (v != NO_SSID).then_some(v)
    }

    /// The last fetched store of `ssid`'s set, if valid.
    #[inline]
    fn last_store(&self, ssid: u16) -> Option<u64> {
        let v = self.lfst[self.lfst_index(ssid)];
        (v != NO_STORE).then_some(v)
    }

    #[inline]
    fn ssit_index(&self, pc: u64) -> usize {
        let pc = pc >> 2;
        (pc ^ (pc >> 13)) as usize & (self.cfg.ssit_entries - 1)
    }

    #[inline]
    fn lfst_index(&self, ssid: u16) -> usize {
        usize::from(ssid) & (self.cfg.lfst_entries - 1)
    }

    fn alloc_ssid(&mut self) -> u16 {
        let ssid = self.next_ssid & ((1 << self.cfg.ssid_bits) - 1);
        self.next_ssid = self.next_ssid.wrapping_add(1);
        ssid
    }

    /// Assigns the load and store to a common store set, per the original
    /// paper's merge rules (both into the smaller SSID when both assigned).
    fn merge(&mut self, load_pc: u64, store_pc: u64) {
        let li = self.ssit_index(load_pc);
        let si = self.ssit_index(store_pc);
        match (self.ssid_at(li), self.ssid_at(si)) {
            (None, None) => {
                let ssid = self.alloc_ssid();
                self.ssit[li] = ssid;
                self.ssit[si] = ssid;
            }
            (Some(ssid), None) => self.ssit[si] = ssid,
            (None, Some(ssid)) => self.ssit[li] = ssid,
            (Some(a), Some(b)) => {
                let winner = a.min(b);
                self.ssit[li] = winner;
                self.ssit[si] = winner;
            }
        }
    }

    fn maybe_clear(&mut self) {
        self.trains += 1;
        if self.trains.is_multiple_of(self.cfg.clear_interval) {
            self.ssit.fill(NO_SSID);
            self.lfst.fill(NO_STORE);
        }
    }

    /// Assigned SSIT slots (the snapshot/restore "entries" accounting unit).
    pub fn entry_count(&self) -> u64 {
        self.ssit.iter().filter(|&&s| s != NO_SSID).count() as u64
    }

    /// Serializes the full state: configuration, both tables, the SSID
    /// allocator cursor and the clearing-phase counter.
    pub fn snap_encode(&self, w: &mut SnapWriter) {
        w.u32(self.cfg.ssit_entries as u32);
        w.u32(self.cfg.lfst_entries as u32);
        w.u8(self.cfg.ssid_bits);
        w.u8(self.cfg.store_id_bits);
        w.u64(self.cfg.clear_interval);
        w.u16(self.next_ssid);
        w.u64(self.trains);
        for &s in &self.ssit {
            w.u16(s);
        }
        for &l in &self.lfst {
            w.u64(l);
        }
    }

    /// Decodes a predictor from a snapshot payload, fail-closed: table
    /// sizes must be powers of two within sane limits and every stored SSID
    /// must fit the configured width (or be the invalid sentinel).
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation or any out-of-range field.
    pub fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let ssit_entries = r.u32("store-sets ssit size")? as usize;
        let lfst_entries = r.u32("store-sets lfst size")? as usize;
        let ssid_bits = r.u8("store-sets ssid width")?;
        let store_id_bits = r.u8("store-sets store-id width")?;
        let clear_interval = r.u64("store-sets clear interval")?;
        if !ssit_entries.is_power_of_two()
            || !lfst_entries.is_power_of_two()
            || ssit_entries > 1 << 24
            || lfst_entries > 1 << 24
        {
            return Err(SnapError::Corrupt("store-sets table size is invalid"));
        }
        if ssid_bits == 0 || ssid_bits > 15 {
            return Err(SnapError::Corrupt("store-sets ssid width out of range"));
        }
        if clear_interval == 0 {
            return Err(SnapError::Corrupt("store-sets clear interval is zero"));
        }
        let next_ssid = r.u16("store-sets ssid cursor")?;
        let trains = r.u64("store-sets training counter")?;
        let ssid_limit = 1u16 << ssid_bits;
        let mut ssit = Vec::with_capacity(ssit_entries);
        for _ in 0..ssit_entries {
            let s = r.u16("store-sets ssit slot")?;
            if s != NO_SSID && s >= ssid_limit {
                return Err(SnapError::Corrupt("store-sets ssid exceeds its width"));
            }
            ssit.push(s);
        }
        let mut lfst = Vec::with_capacity(lfst_entries);
        for _ in 0..lfst_entries {
            lfst.push(r.u64("store-sets lfst slot")?);
        }
        Ok(Self {
            cfg: StoreSetsConfig {
                ssit_entries,
                lfst_entries,
                ssid_bits,
                store_id_bits,
                clear_interval,
            },
            ssit,
            lfst,
            next_ssid,
            trains,
        })
    }

    /// Folds another predictor's tables into this one (warm resharding):
    /// element-wise union where `self`'s assignments win conflicts, the
    /// SSID allocator cursor advances to the larger of the two, and the
    /// clearing-phase counters sum (both halves aged the merged tables).
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] when the configurations differ.
    pub fn merge_from(&mut self, other: &Self) -> Result<u64, SnapError> {
        if self.cfg != other.cfg {
            return Err(SnapError::Corrupt(
                "cannot merge store-sets predictors with different configurations",
            ));
        }
        let mut written = 0;
        for (mine, &theirs) in self.ssit.iter_mut().zip(&other.ssit) {
            if *mine == NO_SSID && theirs != NO_SSID {
                *mine = theirs;
                written += 1;
            }
        }
        for (mine, &theirs) in self.lfst.iter_mut().zip(&other.lfst) {
            if *mine == NO_STORE && theirs != NO_STORE {
                *mine = theirs;
            }
        }
        self.next_ssid = self.next_ssid.max(other.next_ssid);
        self.trains += other.trains;
        Ok(written)
    }
}

impl MemDepPredictor for StoreSets {
    type Meta = ();

    fn name(&self) -> &'static str {
        "store-sets"
    }

    fn predict(
        &mut self,
        pc: u64,
        store_seq: u64,
        _oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, ()) {
        let prediction = self
            .ssid_at(self.ssit_index(pc))
            .and_then(|ssid| self.last_store(ssid))
            .and_then(|last_store| {
                // Convert absolute store sequence to a distance; a stale
                // pointer (store long retired) yields no prediction.
                store_seq
                    .checked_sub(last_store)
                    .and_then(|d| StoreDistance::new(d as u32))
            })
            .map_or(MemDepPrediction::NoDependence, |distance| {
                MemDepPrediction::Dependence { distance }
            });
        (prediction, ())
    }

    fn train(
        &mut self,
        pc: u64,
        _meta: (),
        predicted: MemDepPrediction,
        outcome: &LoadOutcome,
    ) {
        self.maybe_clear();
        match (predicted.is_dependence(), &outcome.dependence) {
            // Missed or mis-targeted dependence: put the pair in one set.
            (_, Some(dep)) if predicted.distance() != Some(dep.distance) => {
                self.merge(pc, dep.store_pc);
            }
            _ => {}
        }
    }

    fn on_branch(&mut self, _event: &BranchEvent) {}

    fn rewind_history(&mut self, _recent: &[BranchEvent]) {}

    fn on_store_dispatch(&mut self, pc: u64, store_seq: u64) {
        if let Some(ssid) = self.ssid_at(self.ssit_index(pc)) {
            let idx = self.lfst_index(ssid);
            self.lfst[idx] = store_seq;
        }
    }

    fn predict_store_wait(&mut self, pc: u64, store_seq: u64) -> Option<StoreDistance> {
        // Stores in a set are serialised: each waits for the set's last
        // fetched store (Chrysos & Emer; §V of the MASCOT paper).
        let ssid = self.ssid_at(self.ssit_index(pc))?;
        let last = self.last_store(ssid)?;
        store_seq
            .checked_sub(last)
            .and_then(|d| StoreDistance::new(d as u32))
    }

    fn storage_bits(&self) -> u64 {
        // Table II: SSIT entries of (1 valid + ssid) bits, LFST entries of
        // (1 valid + store id) bits.
        self.cfg.ssit_entries as u64 * (1 + u64::from(self.cfg.ssid_bits))
            + self.cfg.lfst_entries as u64 * (1 + u64::from(self.cfg.store_id_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot::prediction::{BypassClass, ObservedDependence};

    fn dep_at(distance: u32, store_pc: u64) -> LoadOutcome {
        LoadOutcome::dependent(ObservedDependence {
            distance: StoreDistance::new(distance).unwrap(),
            class: BypassClass::MdpOnly,
            store_pc,
            branches_between: 0,
        })
    }

    #[test]
    fn table_ii_size() {
        let p = StoreSets::default();
        // 8K * 13 + 4K * 11 bits = 148,480 bits = 18.125 KiB ~ "18.5 KB".
        assert_eq!(p.storage_bits(), 8192 * 13 + 4096 * 11);
    }

    #[test]
    fn cold_predicts_independent() {
        let mut p = StoreSets::default();
        let (pred, _) = p.predict(0x100, 10, None);
        assert_eq!(pred, MemDepPrediction::NoDependence);
    }

    #[test]
    fn learns_pair_after_violation() {
        let mut p = StoreSets::default();
        let (load_pc, store_pc) = (0x1000, 0x2000);
        // Violation observed: store was 1 back at store_seq 5.
        let (pred, m) = p.predict(load_pc, 5, None);
        p.train(load_pc, m, pred, &dep_at(1, store_pc));
        // Next iteration: the store dispatches as store_seq 7...
        p.on_store_dispatch(store_pc, 7);
        // ...and the load (one store later, seq 8) must now wait for it.
        let (pred, _) = p.predict(load_pc, 8, None);
        assert_eq!(
            pred,
            MemDepPrediction::Dependence {
                distance: StoreDistance::new(1).unwrap()
            }
        );
    }

    #[test]
    fn stale_lfst_pointer_gives_no_prediction() {
        let mut p = StoreSets::default();
        let (load_pc, store_pc) = (0x1000, 0x2000);
        let (pred, m) = p.predict(load_pc, 5, None);
        p.train(load_pc, m, pred, &dep_at(1, store_pc));
        p.on_store_dispatch(store_pc, 7);
        // 500 stores later the pointer is out of the encodable window.
        let (pred, _) = p.predict(load_pc, 507, None);
        assert_eq!(pred, MemDepPrediction::NoDependence);
    }

    #[test]
    fn merging_joins_two_sets_to_smaller_ssid() {
        let mut p = StoreSets::default();
        // Create two distinct sets.
        let (m1, pr1) = ((), MemDepPrediction::NoDependence);
        p.train(0x1000, m1, pr1, &dep_at(1, 0x2000));
        p.train(0x3000, (), MemDepPrediction::NoDependence, &dep_at(1, 0x4000));
        let s_load1 = p.ssid_at(p.ssit_index(0x1000)).unwrap();
        let s_store2 = p.ssid_at(p.ssit_index(0x4000)).unwrap();
        assert_ne!(s_load1, s_store2);
        // Now load1 conflicts with store2: both collapse to min SSID.
        p.train(0x1000, (), MemDepPrediction::NoDependence, &dep_at(1, 0x4000));
        let merged = s_load1.min(s_store2);
        assert_eq!(p.ssid_at(p.ssit_index(0x1000)), Some(merged));
        assert_eq!(p.ssid_at(p.ssit_index(0x4000)), Some(merged));
    }

    #[test]
    fn periodic_clear_flushes_tables() {
        let mut p = StoreSets::new(StoreSetsConfig {
            clear_interval: 4,
            ..Default::default()
        });
        p.train(0x1000, (), MemDepPrediction::NoDependence, &dep_at(1, 0x2000));
        assert!(p.ssit.iter().any(|&s| s != NO_SSID));
        for _ in 0..4 {
            p.train(0x5000, (), MemDepPrediction::NoDependence, &LoadOutcome::independent());
        }
        assert!(p.ssit.iter().all(|&s| s == NO_SSID));
    }

    #[test]
    fn snap_roundtrip_is_bit_identical() {
        let mut p = StoreSets::default();
        for i in 0..40u64 {
            let load_pc = 0x1000 + (i % 10) * 8;
            let store_pc = 0x9000 + (i % 10) * 8;
            let (pr, m) = p.predict(load_pc, i, None);
            p.train(load_pc, m, pr, &dep_at(1 + (i % 5) as u32, store_pc));
            p.on_store_dispatch(store_pc, i + 1);
        }
        let mut w = SnapWriter::new();
        p.snap_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut q = StoreSets::snap_decode(&mut r).unwrap();
        r.finish().unwrap();
        let mut w2 = SnapWriter::new();
        q.snap_encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        assert_eq!(p.entry_count(), q.entry_count());
        for i in 0..10u64 {
            let pc = 0x1000 + i * 8;
            assert_eq!(p.predict(pc, 45, None).0, q.predict(pc, 45, None).0);
        }
        for cut in [0, 9, bytes.len() / 2, bytes.len() - 1] {
            let mut r = SnapReader::new(&bytes[..cut]);
            let decoded = StoreSets::snap_decode(&mut r);
            assert!(decoded.is_err() || r.finish().is_err(), "cut {cut}");
        }
        // A stored SSID wider than the configured field fails closed.
        let mut corrupt = bytes.clone();
        // next_ssid sits after two u32 sizes + two u8 widths + u64 interval.
        let ssit_start = 4 + 4 + 1 + 1 + 8 + 2 + 8;
        corrupt[ssit_start..ssit_start + 2].copy_from_slice(&0x5000u16.to_le_bytes());
        let mut r = SnapReader::new(&corrupt);
        assert!(matches!(
            StoreSets::snap_decode(&mut r),
            Err(SnapError::Corrupt("store-sets ssid exceeds its width"))
        ));
    }

    #[test]
    fn merge_keeps_own_assignments_and_fills_gaps() {
        let mut a = StoreSets::default();
        let mut b = StoreSets::default();
        a.train(0x1000, (), MemDepPrediction::NoDependence, &dep_at(1, 0x2000));
        b.train(0x3000, (), MemDepPrediction::NoDependence, &dep_at(1, 0x4000));
        // Collide on purpose: both assign 0x1000's slot.
        b.train(0x1000, (), MemDepPrediction::NoDependence, &dep_at(1, 0x5000));
        let a_ssid = a.ssid_at(a.ssit_index(0x1000)).unwrap();
        let written = a.merge_from(&b).unwrap();
        assert!(written >= 2, "got {written}");
        // Self wins the conflict...
        assert_eq!(a.ssid_at(a.ssit_index(0x1000)), Some(a_ssid));
        // ...and b's disjoint pair arrived.
        assert!(a.ssid_at(a.ssit_index(0x3000)).is_some());
        assert!(a.ssid_at(a.ssit_index(0x4000)).is_some());
        assert_eq!(a.trains, 1 + 2);
        // Config mismatch is rejected.
        let other = StoreSets::new(StoreSetsConfig {
            clear_interval: 7,
            ..Default::default()
        });
        assert!(a.merge_from(&other).is_err());
    }

    #[test]
    fn correct_prediction_does_not_remerge() {
        let mut p = StoreSets::default();
        p.train(0x1000, (), MemDepPrediction::NoDependence, &dep_at(2, 0x2000));
        let before = p.next_ssid;
        // Predicted distance matches outcome: no merge activity.
        let predicted = MemDepPrediction::Dependence {
            distance: StoreDistance::new(2).unwrap(),
        };
        p.train(0x1000, (), predicted, &dep_at(2, 0x2000));
        assert_eq!(p.next_ssid, before);
    }
}
