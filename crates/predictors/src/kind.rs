//! Runtime predictor selection: [`PredictorKind`] names every predictor
//! configuration evaluated in the paper and builds fresh instances.
//!
//! Lives here (rather than in the benchmark harness) so that every
//! consumer that owns predictors at runtime — the experiment harness, the
//! `mascot-serve` prediction service, ad-hoc tools — shares one registry
//! of buildable configurations and one label/parse vocabulary.

use std::borrow::Cow;
use std::fmt;
use std::str::FromStr;

use mascot::config::MascotConfig;
use mascot::mdp_only::MascotMdpOnly;
use mascot::predictor::Mascot;
use serde::{Deserialize, Serialize};

use crate::any::AnyPredictor;
use crate::mdp_tage::MdpTage;
use crate::nosq::NoSq;
use crate::oracle::{PerfectMdp, PerfectMdpSmb};
use crate::phast::Phast;
use crate::randomized::RandomizedMascot;
use crate::store_sets::StoreSets;

/// Every predictor configuration evaluated across the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// MASCOT, default 14 KiB geometry, MDP + SMB.
    Mascot,
    /// MASCOT used for MDP only (Fig. 9).
    MascotMdp,
    /// MASCOT-OPT (§VI-D) with the tag width reduced by the given number of
    /// bits (0 = plain MASCOT-OPT; 4 = the paper's 10.1 KiB point).
    MascotOpt(u8),
    /// The Fig. 11 ablation: MASCOT without non-dependence allocation.
    TageNoNd,
    /// PHAST (MDP only).
    Phast,
    /// NoSQ-style MDP + SMB.
    NoSq,
    /// Historical MDP-TAGE baseline (§II): 3-bit distance, 1-bit usefulness.
    MdpTage,
    /// Store Sets (MDP only).
    StoreSets,
    /// Perfect MDP oracle (the normalisation baseline).
    PerfectMdp,
    /// Perfect MDP + SMB oracle.
    PerfectMdpSmb,
    /// MASCOT behind keyed index randomization + noisy bypass confidence —
    /// the SPOILER-GUARD-style mistraining defense (DESIGN.md §12). Built
    /// with the deployment-default key; per-boot keys go through
    /// [`RandomizedMascot::with_key`].
    RandomizedMascot,
}

impl PredictorKind {
    /// The fixed (non-parameterised) kinds, in canonical order — used for
    /// `--help` text and exhaustive sweeps.
    pub const ALL: [PredictorKind; 11] = [
        PredictorKind::Mascot,
        PredictorKind::MascotMdp,
        PredictorKind::MascotOpt(0),
        PredictorKind::TageNoNd,
        PredictorKind::Phast,
        PredictorKind::NoSq,
        PredictorKind::MdpTage,
        PredictorKind::StoreSets,
        PredictorKind::PerfectMdp,
        PredictorKind::PerfectMdpSmb,
        PredictorKind::RandomizedMascot,
    ];

    /// Builds a fresh predictor instance.
    ///
    /// # Panics
    ///
    /// Panics if a MASCOT configuration fails validation (indicates a bug in
    /// the preset, not user input).
    pub fn build(self) -> AnyPredictor {
        match self {
            PredictorKind::Mascot => {
                AnyPredictor::Mascot(Mascot::new(MascotConfig::default()).expect("valid preset"))
            }
            PredictorKind::MascotMdp => AnyPredictor::MascotMdp(
                MascotMdpOnly::new(MascotConfig::default()).expect("valid preset"),
            ),
            PredictorKind::MascotOpt(tag_reduction) => {
                let cfg = if tag_reduction == 0 {
                    MascotConfig::opt()
                } else {
                    MascotConfig::opt_with_tag_reduction(tag_reduction)
                };
                AnyPredictor::Mascot(Mascot::new(cfg).expect("valid preset"))
            }
            PredictorKind::TageNoNd => AnyPredictor::Mascot(
                Mascot::without_non_dependence_allocation(MascotConfig::default())
                    .expect("valid preset"),
            ),
            PredictorKind::Phast => AnyPredictor::Phast(Phast::default()),
            PredictorKind::NoSq => AnyPredictor::NoSq(NoSq::default()),
            PredictorKind::MdpTage => AnyPredictor::MdpTage(MdpTage::default()),
            PredictorKind::StoreSets => AnyPredictor::StoreSets(StoreSets::default()),
            PredictorKind::PerfectMdp => AnyPredictor::PerfectMdp(PerfectMdp::new()),
            PredictorKind::PerfectMdpSmb => AnyPredictor::PerfectMdpSmb(PerfectMdpSmb::new()),
            PredictorKind::RandomizedMascot => AnyPredictor::RandomizedMascot(
                RandomizedMascot::new(MascotConfig::default()).expect("valid preset"),
            ),
        }
    }

    /// Display label used in tables. Borrowed for every fixed kind; only
    /// the parameterised `MascotOpt(n > 0)` labels allocate.
    pub fn label(self) -> Cow<'static, str> {
        match self {
            PredictorKind::Mascot => Cow::Borrowed("mascot"),
            PredictorKind::MascotMdp => Cow::Borrowed("mascot-mdp"),
            PredictorKind::MascotOpt(0) => Cow::Borrowed("mascot-opt"),
            PredictorKind::MascotOpt(n) => Cow::Owned(format!("mascot-opt-tag-{n}")),
            PredictorKind::TageNoNd => Cow::Borrowed("tage-no-nd"),
            PredictorKind::Phast => Cow::Borrowed("phast"),
            PredictorKind::NoSq => Cow::Borrowed("nosq"),
            PredictorKind::MdpTage => Cow::Borrowed("mdp-tage"),
            PredictorKind::StoreSets => Cow::Borrowed("store-sets"),
            PredictorKind::PerfectMdp => Cow::Borrowed("perfect-mdp"),
            PredictorKind::PerfectMdpSmb => Cow::Borrowed("perfect-mdp-smb"),
            PredictorKind::RandomizedMascot => Cow::Borrowed("randomized-mascot"),
        }
    }
}

/// Error from parsing a [`PredictorKind`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKindError(String);

impl fmt::Display for ParseKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown predictor kind {:?} (expected one of: ", self.0)?;
        for (i, k) in PredictorKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(&k.label())?;
        }
        f.write_str(", mascot-opt-tag-<n>)")
    }
}

impl std::error::Error for ParseKindError {}

impl FromStr for PredictorKind {
    type Err = ParseKindError;

    /// Parses the labels produced by [`PredictorKind::label`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(n) = s.strip_prefix("mascot-opt-tag-") {
            return n
                .parse::<u8>()
                .ok()
                .filter(|&n| n > 0)
                .map(PredictorKind::MascotOpt)
                .ok_or_else(|| ParseKindError(s.to_string()));
        }
        PredictorKind::ALL
            .into_iter()
            .find(|k| k.label() == s)
            .ok_or_else(|| ParseKindError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_label_parses_back() {
        for kind in PredictorKind::ALL {
            assert_eq!(kind.label().parse::<PredictorKind>().unwrap(), kind);
        }
        assert_eq!(
            "mascot-opt-tag-4".parse::<PredictorKind>().unwrap(),
            PredictorKind::MascotOpt(4)
        );
    }

    #[test]
    fn parse_rejects_unknown_and_degenerate() {
        assert!("nope".parse::<PredictorKind>().is_err());
        // tag reduction of 0 is spelled "mascot-opt", not "...-tag-0"
        assert!("mascot-opt-tag-0".parse::<PredictorKind>().is_err());
        assert!("mascot-opt-tag-x".parse::<PredictorKind>().is_err());
        let err = "nope".parse::<PredictorKind>().unwrap_err();
        assert!(err.to_string().contains("nope"));
        assert!(err.to_string().contains("mascot"));
    }
}
