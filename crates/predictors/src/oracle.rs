//! Perfect ("oracle") predictors used as normalisation baselines in §VI.
//!
//! [`PerfectMdp`] predicts exactly the trace's ground-truth dependence and
//! never bypasses — the paper's normalisation baseline for every IPC figure.
//! [`PerfectMdpSmb`] additionally bypasses every bypassable dependence — the
//! upper bound of Fig. 12.
//!
//! These are the only predictors permitted to read the `oracle` argument of
//! [`MemDepPredictor::predict`].

use mascot::history::BranchEvent;
use mascot::prediction::{GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction};
use serde::{Deserialize, Serialize};

/// A perfect memory-dependence predictor (no bypassing).
///
/// Predicts a dependence exactly when the trace says the load has an
/// in-window prior-store writer. As the paper notes (§VI-A), this is
/// *optimal prediction* but not always optimal performance: stalling for a
/// store that would have resolved in time costs a cycle that an "incorrect"
/// speculation would have saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfectMdp;

impl PerfectMdp {
    /// Creates the oracle.
    pub fn new() -> Self {
        Self
    }
}

impl MemDepPredictor for PerfectMdp {
    type Meta = ();

    fn name(&self) -> &'static str {
        "perfect-mdp"
    }

    fn predict(
        &mut self,
        _pc: u64,
        _store_seq: u64,
        oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, ()) {
        let pred = match oracle {
            Some(gt) => MemDepPrediction::Dependence {
                distance: gt.distance,
            },
            None => MemDepPrediction::NoDependence,
        };
        (pred, ())
    }

    fn train(&mut self, _pc: u64, _meta: (), _predicted: MemDepPrediction, _outcome: &LoadOutcome) {}

    fn on_branch(&mut self, _event: &BranchEvent) {}

    fn rewind_history(&mut self, _recent: &[BranchEvent]) {}

    fn storage_bits(&self) -> u64 {
        0
    }
}

/// A perfect memory-dependence *and* bypassing predictor (Fig. 12's upper
/// bound): bypasses every dependence whose value the store fully provides,
/// including offset cases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfectMdpSmb;

impl PerfectMdpSmb {
    /// Creates the oracle.
    pub fn new() -> Self {
        Self
    }
}

impl MemDepPredictor for PerfectMdpSmb {
    type Meta = ();

    fn name(&self) -> &'static str {
        "perfect-mdp-smb"
    }

    fn predict(
        &mut self,
        _pc: u64,
        _store_seq: u64,
        oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, ()) {
        let pred = match oracle {
            Some(gt) if gt.class.is_bypassable() || gt.class == mascot::BypassClass::Offset => {
                MemDepPrediction::Bypass {
                    distance: gt.distance,
                }
            }
            Some(gt) => MemDepPrediction::Dependence {
                distance: gt.distance,
            },
            None => MemDepPrediction::NoDependence,
        };
        (pred, ())
    }

    fn train(&mut self, _pc: u64, _meta: (), _predicted: MemDepPrediction, _outcome: &LoadOutcome) {}

    fn on_branch(&mut self, _event: &BranchEvent) {}

    fn rewind_history(&mut self, _recent: &[BranchEvent]) {}

    fn bypass_supports_offset(&self) -> bool {
        true
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot::prediction::{BypassClass, StoreDistance};

    fn gt(distance: u32, class: BypassClass) -> GroundTruth {
        GroundTruth {
            distance: StoreDistance::new(distance).unwrap(),
            class,
        }
    }

    #[test]
    fn perfect_mdp_follows_ground_truth() {
        let mut p = PerfectMdp::new();
        assert_eq!(p.predict(0, 0, None).0, MemDepPrediction::NoDependence);
        let (pred, _) = p.predict(0, 0, Some(&gt(7, BypassClass::DirectBypass)));
        assert_eq!(pred.distance().unwrap().get(), 7);
        assert!(!pred.is_bypass(), "perfect MDP never bypasses");
    }

    #[test]
    fn perfect_smb_bypasses_all_fully_covered_classes() {
        let mut p = PerfectMdpSmb::new();
        assert!(p
            .predict(0, 0, Some(&gt(1, BypassClass::DirectBypass)))
            .0
            .is_bypass());
        assert!(p.predict(0, 0, Some(&gt(1, BypassClass::NoOffset))).0.is_bypass());
        assert!(p.predict(0, 0, Some(&gt(1, BypassClass::Offset))).0.is_bypass());
        let partial = p.predict(0, 0, Some(&gt(1, BypassClass::MdpOnly))).0;
        assert!(partial.is_dependence() && !partial.is_bypass());
    }

    #[test]
    fn oracles_cost_no_storage() {
        assert_eq!(PerfectMdp::new().storage_bits(), 0);
        assert_eq!(PerfectMdpSmb::new().storage_bits(), 0);
    }
}
