//! Baseline memory-dependence and bypassing predictors evaluated against
//! MASCOT in §VI of the paper, plus oracles and runtime dispatch.
//!
//! * [`StoreSets`] — Chrysos & Emer's Store Sets (18.5 KB, Table II).
//! * [`NoSq`] — a NoSQ-style GShare MDP/SMB predictor (19 KB).
//! * [`Phast`] — Kim & Ros's PHAST (14.5 KB), the state-of-the-art MDP
//!   baseline.
//! * [`MdpTage`] — the historical Perais/Seznec TAGE-for-MDP augmentation
//!   (§II), with its 3-bit distance and single usefulness bit.
//! * [`PerfectMdp`] / [`PerfectMdpSmb`] — trace-oracle baselines used for
//!   normalisation.
//! * [`RandomizedMascot`] — MASCOT behind keyed index randomization and
//!   noisy bypass confidence, the SPOILER-GUARD-style mistraining defense
//!   (DESIGN.md §12).
//! * [`AnyPredictor`] — enum dispatch over every predictor kind for the
//!   benchmark harness.
//!
//! The Fig. 11 ablation ("TAGE without non-dependence allocation") is
//! constructed via [`mascot::Mascot::without_non_dependence_allocation`].
//!
//! [`PredictorKind`] is the runtime registry over all of the above: it
//! names, parses, and builds each configuration for the harness and for
//! the sharded `mascot-serve` service.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod any;
pub mod kind;
pub mod mdp_tage;
pub mod nosq;
pub mod oracle;
pub mod phast;
pub mod randomized;
pub mod store_sets;

pub use any::{AnyMeta, AnyPredictor};
pub use kind::{ParseKindError, PredictorKind};
pub use randomized::RandomizedMascot;
pub use mdp_tage::{MdpTage, MdpTageConfig, MdpTageMeta};
pub use nosq::{NoSq, NoSqConfig, NoSqMeta};
pub use oracle::{PerfectMdp, PerfectMdpSmb};
pub use phast::{Phast, PhastConfig, PhastMeta};
pub use store_sets::{StoreSets, StoreSetsConfig};
