//! Type-erased predictor dispatch for the benchmark harness.
//!
//! [`MemDepPredictor`] has an associated `Meta` type, so the simulator is
//! generic over the predictor. The harness, however, wants to iterate over a
//! runtime list of predictor kinds; [`AnyPredictor`] wraps every evaluated
//! predictor behind a single enum with a unified [`AnyMeta`].

use mascot::history::BranchEvent;
use mascot::mdp_only::MascotMdpOnly;
use mascot::prediction::{
    GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction, PredictReq, TrainReq,
};
use mascot::predictor::{Mascot, MascotMeta};
use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

use crate::mdp_tage::{MdpTage, MdpTageMeta};
use crate::nosq::{NoSq, NoSqMeta};
use crate::oracle::{PerfectMdp, PerfectMdpSmb};
use crate::phast::{Phast, PhastMeta};
use crate::randomized::RandomizedMascot;
use crate::store_sets::StoreSets;

/// Metadata variants for [`AnyPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AnyMeta {
    /// MASCOT-family metadata.
    Mascot(MascotMeta),
    /// PHAST metadata.
    Phast(PhastMeta),
    /// NoSQ metadata.
    NoSq(NoSqMeta),
    /// MDP-TAGE metadata.
    MdpTage(MdpTageMeta),
    /// Metadata-free predictors (Store Sets, oracles).
    Unit,
}

/// A runtime-selected predictor, wrapping every kind evaluated in §VI.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum AnyPredictor {
    /// MASCOT (MDP + SMB), or the Fig. 11 ablation when built without
    /// non-dependence allocation.
    Mascot(Mascot),
    /// MASCOT used for MDP only (Fig. 9).
    MascotMdp(MascotMdpOnly),
    /// PHAST (Kim & Ros 2024).
    Phast(Phast),
    /// NoSQ-style GShare MDP/SMB predictor.
    NoSq(NoSq),
    /// Historical MDP-TAGE baseline (§II).
    MdpTage(MdpTage),
    /// Store Sets (Chrysos & Emer 1998).
    StoreSets(StoreSets),
    /// Perfect memory-dependence oracle (no bypassing).
    PerfectMdp(PerfectMdp),
    /// Perfect memory-dependence + bypassing oracle.
    PerfectMdpSmb(PerfectMdpSmb),
    /// MASCOT behind keyed index randomization (DESIGN.md §12).
    RandomizedMascot(RandomizedMascot),
}

// Sharded serving moves whole predictor instances onto worker threads;
// keep the enum (and thus every wrapped predictor) `Send` + `'static`.
const _: () = {
    const fn assert_send_static<T: Send + 'static>() {}
    assert_send_static::<AnyPredictor>();
};

/// Snapshot-payload variant tags for [`AnyPredictor`] — part of the
/// persisted format, so the values are frozen: renumbering breaks every
/// existing snapshot.
mod variant {
    pub const MASCOT: u8 = 0;
    pub const MASCOT_MDP: u8 = 1;
    pub const PHAST: u8 = 2;
    pub const NOSQ: u8 = 3;
    pub const MDP_TAGE: u8 = 4;
    pub const STORE_SETS: u8 = 5;
    pub const PERFECT_MDP: u8 = 6;
    pub const PERFECT_MDP_SMB: u8 = 7;
    pub const RANDOMIZED_MASCOT: u8 = 8;
}

impl AnyPredictor {
    /// The wrapped MASCOT instance, if this is a MASCOT-family predictor
    /// (used by the Figs. 13–14 tuning reports).
    pub fn as_mascot(&self) -> Option<&Mascot> {
        match self {
            AnyPredictor::Mascot(m) => Some(m),
            AnyPredictor::MascotMdp(m) => Some(m.inner()),
            _ => None,
        }
    }

    /// Total valid entries resident in the predictor's tables (0 for the
    /// stateless oracles) — the snapshot/restore observability unit.
    pub fn entry_count(&self) -> u64 {
        match self {
            AnyPredictor::Mascot(p) => p.entry_count(),
            AnyPredictor::MascotMdp(p) => p.entry_count(),
            AnyPredictor::Phast(p) => p.entry_count(),
            AnyPredictor::NoSq(p) => p.entry_count(),
            AnyPredictor::MdpTage(p) => p.entry_count(),
            AnyPredictor::StoreSets(p) => p.entry_count(),
            AnyPredictor::RandomizedMascot(p) => p.entry_count(),
            AnyPredictor::PerfectMdp(_) | AnyPredictor::PerfectMdpSmb(_) => 0,
        }
    }

    /// Serializes the predictor to an opaque snapshot payload: a one-byte
    /// variant tag followed by the wrapped predictor's own encoding (empty
    /// for the stateless oracles).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        match self {
            AnyPredictor::Mascot(p) => {
                w.u8(variant::MASCOT);
                p.snap_encode(&mut w);
            }
            AnyPredictor::MascotMdp(p) => {
                w.u8(variant::MASCOT_MDP);
                p.snap_encode(&mut w);
            }
            AnyPredictor::Phast(p) => {
                w.u8(variant::PHAST);
                p.snap_encode(&mut w);
            }
            AnyPredictor::NoSq(p) => {
                w.u8(variant::NOSQ);
                p.snap_encode(&mut w);
            }
            AnyPredictor::MdpTage(p) => {
                w.u8(variant::MDP_TAGE);
                p.snap_encode(&mut w);
            }
            AnyPredictor::StoreSets(p) => {
                w.u8(variant::STORE_SETS);
                p.snap_encode(&mut w);
            }
            AnyPredictor::PerfectMdp(_) => w.u8(variant::PERFECT_MDP),
            AnyPredictor::PerfectMdpSmb(_) => w.u8(variant::PERFECT_MDP_SMB),
            AnyPredictor::RandomizedMascot(p) => {
                w.u8(variant::RANDOMIZED_MASCOT);
                p.snap_encode(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Restores a predictor from a payload produced by
    /// [`AnyPredictor::snapshot_bytes`], fail-closed: unknown variant tags,
    /// truncation, trailing bytes, or any inner inconsistency reject the
    /// whole payload.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] from the inner decode, or
    /// [`SnapError::Corrupt`] for an unknown variant tag.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(bytes);
        let p = match r.u8("predictor variant tag")? {
            variant::MASCOT => AnyPredictor::Mascot(Mascot::snap_decode(&mut r)?),
            variant::MASCOT_MDP => AnyPredictor::MascotMdp(MascotMdpOnly::snap_decode(&mut r)?),
            variant::PHAST => AnyPredictor::Phast(Phast::snap_decode(&mut r)?),
            variant::NOSQ => AnyPredictor::NoSq(NoSq::snap_decode(&mut r)?),
            variant::MDP_TAGE => AnyPredictor::MdpTage(MdpTage::snap_decode(&mut r)?),
            variant::STORE_SETS => AnyPredictor::StoreSets(StoreSets::snap_decode(&mut r)?),
            variant::PERFECT_MDP => AnyPredictor::PerfectMdp(PerfectMdp::new()),
            variant::PERFECT_MDP_SMB => AnyPredictor::PerfectMdpSmb(PerfectMdpSmb::new()),
            variant::RANDOMIZED_MASCOT => {
                AnyPredictor::RandomizedMascot(RandomizedMascot::snap_decode(&mut r)?)
            }
            _ => return Err(SnapError::Corrupt("unknown predictor variant tag")),
        };
        r.finish()?;
        Ok(p)
    }

    /// Folds another predictor's state into this one — the warm-resharding
    /// merge. Both must wrap the same variant (and, transitively, the same
    /// configuration). Returns the number of entries written from `other`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] on a variant or configuration mismatch.
    pub fn merge_from(&mut self, other: &Self) -> Result<u64, SnapError> {
        match (self, other) {
            (AnyPredictor::Mascot(a), AnyPredictor::Mascot(b)) => a.merge_from(b),
            (AnyPredictor::MascotMdp(a), AnyPredictor::MascotMdp(b)) => a.merge_from(b),
            (AnyPredictor::Phast(a), AnyPredictor::Phast(b)) => a.merge_from(b),
            (AnyPredictor::NoSq(a), AnyPredictor::NoSq(b)) => a.merge_from(b),
            (AnyPredictor::MdpTage(a), AnyPredictor::MdpTage(b)) => a.merge_from(b),
            (AnyPredictor::StoreSets(a), AnyPredictor::StoreSets(b)) => a.merge_from(b),
            (AnyPredictor::RandomizedMascot(a), AnyPredictor::RandomizedMascot(b)) => {
                a.merge_from(b)
            }
            (AnyPredictor::PerfectMdp(_), AnyPredictor::PerfectMdp(_))
            | (AnyPredictor::PerfectMdpSmb(_), AnyPredictor::PerfectMdpSmb(_)) => Ok(0),
            _ => Err(SnapError::Corrupt(
                "cannot merge different predictor kinds",
            )),
        }
    }
}

impl MemDepPredictor for AnyPredictor {
    type Meta = AnyMeta;

    fn name(&self) -> &'static str {
        match self {
            AnyPredictor::Mascot(p) => p.name(),
            AnyPredictor::MascotMdp(p) => p.name(),
            AnyPredictor::Phast(p) => p.name(),
            AnyPredictor::NoSq(p) => p.name(),
            AnyPredictor::MdpTage(p) => p.name(),
            AnyPredictor::StoreSets(p) => p.name(),
            AnyPredictor::PerfectMdp(p) => p.name(),
            AnyPredictor::PerfectMdpSmb(p) => p.name(),
            AnyPredictor::RandomizedMascot(p) => p.name(),
        }
    }

    fn predict(
        &mut self,
        pc: u64,
        store_seq: u64,
        oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, AnyMeta) {
        match self {
            AnyPredictor::Mascot(p) => {
                let (pred, m) = p.predict(pc, store_seq, oracle);
                (pred, AnyMeta::Mascot(m))
            }
            AnyPredictor::MascotMdp(p) => {
                let (pred, m) = p.predict(pc, store_seq, oracle);
                (pred, AnyMeta::Mascot(m))
            }
            AnyPredictor::Phast(p) => {
                let (pred, m) = p.predict(pc, store_seq, oracle);
                (pred, AnyMeta::Phast(m))
            }
            AnyPredictor::NoSq(p) => {
                let (pred, m) = p.predict(pc, store_seq, oracle);
                (pred, AnyMeta::NoSq(m))
            }
            AnyPredictor::MdpTage(p) => {
                let (pred, m) = p.predict(pc, store_seq, oracle);
                (pred, AnyMeta::MdpTage(m))
            }
            AnyPredictor::StoreSets(p) => {
                let (pred, ()) = p.predict(pc, store_seq, oracle);
                (pred, AnyMeta::Unit)
            }
            AnyPredictor::PerfectMdp(p) => {
                let (pred, ()) = p.predict(pc, store_seq, oracle);
                (pred, AnyMeta::Unit)
            }
            AnyPredictor::PerfectMdpSmb(p) => {
                let (pred, ()) = p.predict(pc, store_seq, oracle);
                (pred, AnyMeta::Unit)
            }
            AnyPredictor::RandomizedMascot(p) => {
                let (pred, m) = p.predict(pc, store_seq, oracle);
                (pred, AnyMeta::Mascot(m))
            }
        }
    }

    fn predict_batch(
        &mut self,
        reqs: &[PredictReq],
        out: &mut Vec<(MemDepPrediction, AnyMeta)>,
    ) {
        out.clear();
        out.reserve(reqs.len());
        // MASCOT-family predictors get the table-major batched probe via a
        // sink closure (no intermediate allocation for the meta rewrap);
        // predictors whose `predict` mutates per-hit state (LRU bits) keep
        // the sequential scalar loop, preserving exact behaviour.
        match self {
            AnyPredictor::Mascot(p) => {
                p.predict_batch_into(reqs, |pred, m| out.push((pred, AnyMeta::Mascot(m))));
            }
            AnyPredictor::MascotMdp(p) => {
                p.predict_batch_into(reqs, |pred, m| out.push((pred, AnyMeta::Mascot(m))));
            }
            AnyPredictor::Phast(p) => {
                for r in reqs {
                    let (pred, m) = p.predict(r.pc, r.store_seq, r.oracle.as_ref());
                    out.push((pred, AnyMeta::Phast(m)));
                }
            }
            AnyPredictor::NoSq(p) => {
                for r in reqs {
                    let (pred, m) = p.predict(r.pc, r.store_seq, r.oracle.as_ref());
                    out.push((pred, AnyMeta::NoSq(m)));
                }
            }
            AnyPredictor::MdpTage(p) => {
                for r in reqs {
                    let (pred, m) = p.predict(r.pc, r.store_seq, r.oracle.as_ref());
                    out.push((pred, AnyMeta::MdpTage(m)));
                }
            }
            AnyPredictor::StoreSets(p) => {
                for r in reqs {
                    let (pred, ()) = p.predict(r.pc, r.store_seq, r.oracle.as_ref());
                    out.push((pred, AnyMeta::Unit));
                }
            }
            AnyPredictor::PerfectMdp(p) => {
                for r in reqs {
                    let (pred, ()) = p.predict(r.pc, r.store_seq, r.oracle.as_ref());
                    out.push((pred, AnyMeta::Unit));
                }
            }
            AnyPredictor::PerfectMdpSmb(p) => {
                for r in reqs {
                    let (pred, ()) = p.predict(r.pc, r.store_seq, r.oracle.as_ref());
                    out.push((pred, AnyMeta::Unit));
                }
            }
            AnyPredictor::RandomizedMascot(p) => {
                p.predict_batch_into(reqs, |pred, m| out.push((pred, AnyMeta::Mascot(m))));
            }
        }
    }

    fn train_batch(&mut self, reqs: &mut Vec<TrainReq<AnyMeta>>) {
        // Hoist the variant dispatch out of the per-record loop; each arm
        // drains with its own meta unwrap (training order is preserved).
        match self {
            AnyPredictor::Mascot(p) => {
                for r in reqs.drain(..) {
                    if let AnyMeta::Mascot(m) = r.meta {
                        p.train(r.pc, m, r.predicted, &r.outcome);
                    } else {
                        debug_assert!(false, "meta kind mismatch for mascot");
                    }
                }
            }
            AnyPredictor::MascotMdp(p) => {
                for r in reqs.drain(..) {
                    if let AnyMeta::Mascot(m) = r.meta {
                        p.train(r.pc, m, r.predicted, &r.outcome);
                    } else {
                        debug_assert!(false, "meta kind mismatch for mascot-mdp");
                    }
                }
            }
            AnyPredictor::Phast(p) => {
                for r in reqs.drain(..) {
                    if let AnyMeta::Phast(m) = r.meta {
                        p.train(r.pc, m, r.predicted, &r.outcome);
                    } else {
                        debug_assert!(false, "meta kind mismatch for phast");
                    }
                }
            }
            AnyPredictor::NoSq(p) => {
                for r in reqs.drain(..) {
                    if let AnyMeta::NoSq(m) = r.meta {
                        p.train(r.pc, m, r.predicted, &r.outcome);
                    } else {
                        debug_assert!(false, "meta kind mismatch for nosq");
                    }
                }
            }
            AnyPredictor::MdpTage(p) => {
                for r in reqs.drain(..) {
                    if let AnyMeta::MdpTage(m) = r.meta {
                        p.train(r.pc, m, r.predicted, &r.outcome);
                    } else {
                        debug_assert!(false, "meta kind mismatch for mdp-tage");
                    }
                }
            }
            AnyPredictor::StoreSets(p) => {
                for r in reqs.drain(..) {
                    p.train(r.pc, (), r.predicted, &r.outcome);
                }
            }
            AnyPredictor::PerfectMdp(p) => {
                for r in reqs.drain(..) {
                    p.train(r.pc, (), r.predicted, &r.outcome);
                }
            }
            AnyPredictor::PerfectMdpSmb(p) => {
                for r in reqs.drain(..) {
                    p.train(r.pc, (), r.predicted, &r.outcome);
                }
            }
            AnyPredictor::RandomizedMascot(p) => {
                for r in reqs.drain(..) {
                    if let AnyMeta::Mascot(m) = r.meta {
                        p.train(r.pc, m, r.predicted, &r.outcome);
                    } else {
                        debug_assert!(false, "meta kind mismatch for randomized-mascot");
                    }
                }
            }
        }
    }

    fn train(
        &mut self,
        pc: u64,
        meta: AnyMeta,
        predicted: MemDepPrediction,
        outcome: &LoadOutcome,
    ) {
        match (self, meta) {
            (AnyPredictor::Mascot(p), AnyMeta::Mascot(m)) => p.train(pc, m, predicted, outcome),
            (AnyPredictor::MascotMdp(p), AnyMeta::Mascot(m)) => p.train(pc, m, predicted, outcome),
            (AnyPredictor::Phast(p), AnyMeta::Phast(m)) => p.train(pc, m, predicted, outcome),
            (AnyPredictor::NoSq(p), AnyMeta::NoSq(m)) => p.train(pc, m, predicted, outcome),
            (AnyPredictor::MdpTage(p), AnyMeta::MdpTage(m)) => p.train(pc, m, predicted, outcome),
            (AnyPredictor::StoreSets(p), AnyMeta::Unit) => p.train(pc, (), predicted, outcome),
            (AnyPredictor::PerfectMdp(p), AnyMeta::Unit) => p.train(pc, (), predicted, outcome),
            (AnyPredictor::PerfectMdpSmb(p), AnyMeta::Unit) => p.train(pc, (), predicted, outcome),
            (AnyPredictor::RandomizedMascot(p), AnyMeta::Mascot(m)) => {
                p.train(pc, m, predicted, outcome)
            }
            (this, meta) => {
                debug_assert!(
                    false,
                    "metadata kind {meta:?} does not match predictor {}",
                    this.name()
                );
            }
        }
    }

    fn on_branch(&mut self, event: &BranchEvent) {
        match self {
            AnyPredictor::Mascot(p) => p.on_branch(event),
            AnyPredictor::MascotMdp(p) => p.on_branch(event),
            AnyPredictor::Phast(p) => p.on_branch(event),
            AnyPredictor::NoSq(p) => p.on_branch(event),
            AnyPredictor::MdpTage(p) => p.on_branch(event),
            AnyPredictor::StoreSets(p) => p.on_branch(event),
            AnyPredictor::PerfectMdp(p) => p.on_branch(event),
            AnyPredictor::PerfectMdpSmb(p) => p.on_branch(event),
            AnyPredictor::RandomizedMascot(p) => p.on_branch(event),
        }
    }

    fn rewind_history(&mut self, recent: &[BranchEvent]) {
        match self {
            AnyPredictor::Mascot(p) => p.rewind_history(recent),
            AnyPredictor::MascotMdp(p) => p.rewind_history(recent),
            AnyPredictor::Phast(p) => p.rewind_history(recent),
            AnyPredictor::NoSq(p) => p.rewind_history(recent),
            AnyPredictor::MdpTage(p) => p.rewind_history(recent),
            AnyPredictor::StoreSets(p) => p.rewind_history(recent),
            AnyPredictor::PerfectMdp(p) => p.rewind_history(recent),
            AnyPredictor::PerfectMdpSmb(p) => p.rewind_history(recent),
            AnyPredictor::RandomizedMascot(p) => p.rewind_history(recent),
        }
    }

    fn predict_store_wait(&mut self, pc: u64, store_seq: u64) -> Option<mascot::StoreDistance> {
        match self {
            AnyPredictor::Mascot(p) => p.predict_store_wait(pc, store_seq),
            AnyPredictor::MascotMdp(p) => p.predict_store_wait(pc, store_seq),
            AnyPredictor::Phast(p) => p.predict_store_wait(pc, store_seq),
            AnyPredictor::NoSq(p) => p.predict_store_wait(pc, store_seq),
            AnyPredictor::MdpTage(p) => p.predict_store_wait(pc, store_seq),
            AnyPredictor::StoreSets(p) => p.predict_store_wait(pc, store_seq),
            AnyPredictor::PerfectMdp(p) => p.predict_store_wait(pc, store_seq),
            AnyPredictor::PerfectMdpSmb(p) => p.predict_store_wait(pc, store_seq),
            AnyPredictor::RandomizedMascot(p) => p.predict_store_wait(pc, store_seq),
        }
    }

    fn on_store_dispatch(&mut self, pc: u64, store_seq: u64) {
        match self {
            AnyPredictor::Mascot(p) => p.on_store_dispatch(pc, store_seq),
            AnyPredictor::MascotMdp(p) => p.on_store_dispatch(pc, store_seq),
            AnyPredictor::Phast(p) => p.on_store_dispatch(pc, store_seq),
            AnyPredictor::NoSq(p) => p.on_store_dispatch(pc, store_seq),
            AnyPredictor::MdpTage(p) => p.on_store_dispatch(pc, store_seq),
            AnyPredictor::StoreSets(p) => p.on_store_dispatch(pc, store_seq),
            AnyPredictor::PerfectMdp(p) => p.on_store_dispatch(pc, store_seq),
            AnyPredictor::PerfectMdpSmb(p) => p.on_store_dispatch(pc, store_seq),
            AnyPredictor::RandomizedMascot(p) => p.on_store_dispatch(pc, store_seq),
        }
    }

    fn bypass_supports_offset(&self) -> bool {
        match self {
            AnyPredictor::Mascot(p) => p.bypass_supports_offset(),
            AnyPredictor::MascotMdp(p) => p.bypass_supports_offset(),
            AnyPredictor::Phast(p) => p.bypass_supports_offset(),
            AnyPredictor::NoSq(p) => p.bypass_supports_offset(),
            AnyPredictor::MdpTage(p) => p.bypass_supports_offset(),
            AnyPredictor::StoreSets(p) => p.bypass_supports_offset(),
            AnyPredictor::PerfectMdp(p) => p.bypass_supports_offset(),
            AnyPredictor::PerfectMdpSmb(p) => p.bypass_supports_offset(),
            AnyPredictor::RandomizedMascot(p) => p.bypass_supports_offset(),
        }
    }

    fn storage_bits(&self) -> u64 {
        match self {
            AnyPredictor::Mascot(p) => p.storage_bits(),
            AnyPredictor::MascotMdp(p) => p.storage_bits(),
            AnyPredictor::Phast(p) => p.storage_bits(),
            AnyPredictor::NoSq(p) => p.storage_bits(),
            AnyPredictor::MdpTage(p) => p.storage_bits(),
            AnyPredictor::StoreSets(p) => p.storage_bits(),
            AnyPredictor::PerfectMdp(p) => p.storage_bits(),
            AnyPredictor::PerfectMdpSmb(p) => p.storage_bits(),
            AnyPredictor::RandomizedMascot(p) => p.storage_bits(),
        }
    }

    fn end_tuning_period(&mut self) {
        match self {
            AnyPredictor::Mascot(p) => p.end_tuning_period(),
            AnyPredictor::MascotMdp(p) => p.end_tuning_period(),
            AnyPredictor::Phast(p) => p.end_tuning_period(),
            AnyPredictor::NoSq(p) => p.end_tuning_period(),
            AnyPredictor::MdpTage(p) => p.end_tuning_period(),
            AnyPredictor::StoreSets(p) => p.end_tuning_period(),
            AnyPredictor::PerfectMdp(p) => p.end_tuning_period(),
            AnyPredictor::PerfectMdpSmb(p) => p.end_tuning_period(),
            AnyPredictor::RandomizedMascot(p) => p.end_tuning_period(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot::config::MascotConfig;

    #[test]
    fn names_are_distinct() {
        let ps = [
            AnyPredictor::Mascot(Mascot::new(MascotConfig::default()).unwrap()),
            AnyPredictor::MascotMdp(MascotMdpOnly::new(MascotConfig::default()).unwrap()),
            AnyPredictor::Phast(Phast::default()),
            AnyPredictor::NoSq(NoSq::default()),
            AnyPredictor::StoreSets(StoreSets::default()),
            AnyPredictor::PerfectMdp(PerfectMdp::new()),
            AnyPredictor::PerfectMdpSmb(PerfectMdpSmb::new()),
        ];
        let names: std::collections::HashSet<_> = ps.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), ps.len());
    }

    #[test]
    fn dispatch_roundtrip() {
        let mut p = AnyPredictor::Phast(Phast::default());
        let (pred, meta) = p.predict(0x100, 0, None);
        assert_eq!(pred, MemDepPrediction::NoDependence);
        p.train(0x100, meta, pred, &LoadOutcome::independent());
    }

    #[test]
    fn ablation_is_named_through_any() {
        let p = AnyPredictor::Mascot(
            Mascot::without_non_dependence_allocation(MascotConfig::default()).unwrap(),
        );
        assert_eq!(p.name(), "tage-no-nd");
    }

    use mascot::history::BranchKind;
    use mascot::prediction::{BypassClass, ObservedDependence, StoreDistance};

    fn drive(p: &mut AnyPredictor, rounds: u64, salt: u64) {
        let mut rng = 0x243f_6a88_85a3_08d3_u64 ^ salt;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut store_seq = 0u64;
        for r in 0..rounds {
            p.on_branch(&BranchEvent {
                pc: 0x600 + (r % 32) * 4,
                kind: BranchKind::Conditional,
                taken: r % 3 != 0,
                target: 0,
            });
            let store_pc = 0x7000 + (next() % 16) * 8;
            p.on_store_dispatch(store_pc, store_seq);
            store_seq += 1;
            let pc = 0x4000 + (next() % 24) * 4;
            let (pred, meta) = p.predict(pc, store_seq, None);
            let outcome = if next() % 3 == 0 {
                LoadOutcome::independent()
            } else {
                LoadOutcome::dependent(ObservedDependence {
                    distance: StoreDistance::new(1 + (next() % 7) as u32).unwrap(),
                    class: BypassClass::DirectBypass,
                    store_pc,
                    branches_between: (next() % 4) as u32,
                })
            };
            p.train(pc, meta, pred, &outcome);
        }
    }

    #[test]
    fn snapshot_roundtrip_every_kind() {
        use crate::kind::PredictorKind;
        for kind in PredictorKind::ALL {
            let mut p = kind.build();
            drive(&mut p, 300, 0x11);
            let bytes = p.snapshot_bytes();
            let mut q = AnyPredictor::from_snapshot_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{kind:?}: restore failed: {e}"));
            assert_eq!(q.snapshot_bytes(), bytes, "{kind:?}: re-encode differs");
            assert_eq!(q.entry_count(), p.entry_count(), "{kind:?}");
            drive(&mut p, 150, 0x22);
            drive(&mut q, 150, 0x22);
            assert_eq!(
                q.snapshot_bytes(),
                p.snapshot_bytes(),
                "{kind:?}: diverged after identical post-restore traffic"
            );
        }
    }

    #[test]
    fn snapshot_decode_rejects_bad_variants() {
        assert!(AnyPredictor::from_snapshot_bytes(&[]).is_err());
        assert!(AnyPredictor::from_snapshot_bytes(&[0xff]).is_err());
        // A stateless oracle body must be exactly empty.
        assert!(AnyPredictor::from_snapshot_bytes(&[6, 0]).is_err());
        let mut p = AnyPredictor::StoreSets(StoreSets::default());
        drive(&mut p, 50, 0x33);
        let bytes = p.snapshot_bytes();
        for cut in [1, 2, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                AnyPredictor::from_snapshot_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn merge_rejects_kind_mismatch() {
        let mut a = AnyPredictor::Phast(Phast::default());
        let b = AnyPredictor::NoSq(NoSq::default());
        assert!(a.merge_from(&b).is_err());
        let mut o = AnyPredictor::PerfectMdp(PerfectMdp::new());
        assert_eq!(
            o.merge_from(&AnyPredictor::PerfectMdp(PerfectMdp::new()))
                .unwrap(),
            0
        );
    }

    #[test]
    fn as_mascot_exposes_family_members() {
        let m = AnyPredictor::Mascot(Mascot::new(MascotConfig::default()).unwrap());
        assert!(m.as_mascot().is_some());
        let p = AnyPredictor::Phast(Phast::default());
        assert!(p.as_mascot().is_none());
    }
}
