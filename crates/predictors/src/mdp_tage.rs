//! MDP-TAGE (Perais & Seznec; described in §II of the MASCOT paper): the
//! minimal TAGE-for-memory-dependence augmentation that predates PHAST.
//!
//! A TAGE branch predictor is repurposed by using its 3-bit saturating
//! counter as the *store distance* and adding a single usefulness bit `u`:
//! "If u is not 0, the entry can be used for predicting a memory
//! dependence." The 3-bit distance limits predictions to the seven nearest
//! stores, and the single-bit confidence makes entries fragile — both
//! weaknesses MASCOT's 7-bit distance and richer counters address. Included
//! as a historical baseline beyond the paper's Table II set.

use mascot::history::{rewind_hashers, BranchEvent, GlobalHistory, TableHasher};
use mascot::prediction::{
    GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction, StoreDistance,
};
use mascot::predictor::TableLookup;
use mascot::table::AssocTable;
use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// Maximum tables supported by the fixed-size metadata.
pub const MAX_TABLES: usize = 16;

/// Configuration for [`MdpTage`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MdpTageConfig {
    /// History length per table (branches), starting at 0.
    pub history_lengths: Vec<u32>,
    /// Entries per table.
    pub table_entries: Vec<u32>,
    /// Tag width in bits.
    pub tag_bits: u8,
    /// Associativity.
    pub associativity: u32,
}

impl Default for MdpTageConfig {
    fn default() -> Self {
        // Sized comparably to the Table II predictors.
        Self {
            history_lengths: vec![0, 2, 4, 8, 16, 32, 64, 128],
            table_entries: vec![512; 8],
            tag_bits: 16,
            associativity: 4,
        }
    }
}

impl MdpTageConfig {
    fn check(&self) -> Result<(), SnapError> {
        let n = self.history_lengths.len();
        if n == 0 || n > MAX_TABLES || self.table_entries.len() != n {
            return Err(SnapError::Corrupt("mdp-tage config shape is invalid"));
        }
        if self.associativity == 0 {
            return Err(SnapError::Corrupt("mdp-tage associativity is zero"));
        }
        for &e in &self.table_entries {
            if e == 0
                || e % self.associativity != 0
                || !(e / self.associativity).is_power_of_two()
            {
                return Err(SnapError::Corrupt("mdp-tage table size is invalid"));
            }
        }
        if self.history_lengths.iter().any(|&h| h > 1 << 20) {
            return Err(SnapError::Corrupt("mdp-tage history length out of range"));
        }
        if self.tag_bits == 0 || self.tag_bits > 30 {
            return Err(SnapError::Corrupt("mdp-tage tag width out of range"));
        }
        Ok(())
    }

    fn snap_encode(&self, w: &mut SnapWriter) {
        w.u32(self.history_lengths.len() as u32);
        for &h in &self.history_lengths {
            w.u32(h);
        }
        for &e in &self.table_entries {
            w.u32(e);
        }
        w.u8(self.tag_bits);
        w.u32(self.associativity);
    }

    fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.u32("mdp-tage config table count")? as usize;
        if n == 0 || n > MAX_TABLES {
            return Err(SnapError::Corrupt("mdp-tage config table count out of range"));
        }
        let mut history_lengths = Vec::with_capacity(n);
        for _ in 0..n {
            history_lengths.push(r.u32("mdp-tage history length")?);
        }
        let mut table_entries = Vec::with_capacity(n);
        for _ in 0..n {
            table_entries.push(r.u32("mdp-tage table entries")?);
        }
        let cfg = Self {
            history_lengths,
            table_entries,
            tag_bits: r.u8("mdp-tage tag width")?,
            associativity: r.u32("mdp-tage associativity")?,
        };
        cfg.check()?;
        Ok(cfg)
    }
}

/// Entry payload; the tag lives in the table's SoA tag lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct MdpTageEntry {
    /// The repurposed 3-bit counter: store distance 1..=7.
    distance: u8,
    /// Single usefulness bit.
    useful: bool,
}

impl MdpTageEntry {
    fn snap_encode(&self, w: &mut SnapWriter) {
        w.u8(self.distance);
        w.bool(self.useful);
    }

    fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let distance = r.u8("mdp-tage entry distance")?;
        if !(1..=7).contains(&distance) {
            return Err(SnapError::Corrupt("mdp-tage entry distance out of range"));
        }
        Ok(Self {
            distance,
            useful: r.bool("mdp-tage entry usefulness bit")?,
        })
    }
}

/// Per-prediction metadata for [`MdpTage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MdpTageMeta {
    lookups: [TableLookup; MAX_TABLES],
    num_tables: u8,
    provider: Option<u8>,
}

/// The MDP-TAGE predictor.
///
/// # Examples
///
/// ```
/// use mascot_predictors::MdpTage;
/// use mascot::MemDepPredictor;
///
/// let p = MdpTage::default();
/// // 4K entries × (16-bit tag + 3-bit distance + 1 u bit) = 10 KiB.
/// assert!((p.storage_kib() - 10.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdpTage {
    cfg: MdpTageConfig,
    tables: Vec<AssocTable<MdpTageEntry>>,
    hashers: Vec<TableHasher>,
    history: GlobalHistory,
}

impl Default for MdpTage {
    fn default() -> Self {
        Self::new(MdpTageConfig::default())
    }
}

impl MdpTage {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the per-table vectors disagree in length, exceed
    /// [`MAX_TABLES`], or yield non-power-of-two set counts.
    pub fn new(cfg: MdpTageConfig) -> Self {
        assert_eq!(
            cfg.history_lengths.len(),
            cfg.table_entries.len(),
            "history/table shape mismatch"
        );
        assert!(cfg.history_lengths.len() <= MAX_TABLES, "too many tables");
        let fill = MdpTageEntry {
            distance: 0,
            useful: false,
        };
        let tables: Vec<_> = cfg
            .table_entries
            .iter()
            .map(|&e| {
                AssocTable::new(
                    (e / cfg.associativity) as usize,
                    cfg.associativity as usize,
                    fill,
                )
            })
            .collect();
        let hashers: Vec<_> = cfg
            .history_lengths
            .iter()
            .zip(&tables)
            .map(|(&h, t)| TableHasher::new(h, t.index_bits(), u32::from(cfg.tag_bits)))
            .collect();
        let max_hist = *cfg.history_lengths.last().expect("at least one table") as usize;
        Self {
            tables,
            hashers,
            history: GlobalHistory::new((max_hist * 2).max(64)),
            cfg,
        }
    }

    fn compute_lookups(&self, pc: u64) -> ([TableLookup; MAX_TABLES], u8) {
        let mut lookups = [TableLookup::default(); MAX_TABLES];
        for (i, h) in self.hashers.iter().enumerate() {
            lookups[i] = TableLookup {
                index: h.index(pc) as u32,
                tag: h.tag(pc) as u32,
            };
        }
        (lookups, self.hashers.len() as u8)
    }

    fn allocate(&mut self, meta: &MdpTageMeta, start: usize, distance: u8) {
        for t in start..self.tables.len() {
            let lk = meta.lookups[t];
            let entry = MdpTageEntry {
                distance,
                useful: true,
            };
            if self.tables[t]
                .try_insert(u64::from(lk.index), u64::from(lk.tag), entry, |e| !e.useful)
                .is_some()
            {
                return;
            }
            self.tables[t].for_each_valid_mut(u64::from(lk.index), |_, e| e.useful = false);
        }
    }

    /// Total valid entries across all tables.
    pub fn entry_count(&self) -> u64 {
        self.tables.iter().map(|t| t.occupancy() as u64).sum()
    }

    /// Serializes the full state (configuration, tables, history). Hashers
    /// are recomputed from the history on decode.
    pub fn snap_encode(&self, w: &mut SnapWriter) {
        self.cfg.snap_encode(w);
        self.history.snap_encode(w);
        for table in &self.tables {
            table.snap_encode_with(w, |e, w| e.snap_encode(w));
        }
    }

    /// Decodes a predictor from a snapshot payload, fail-closed.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation or any field inconsistent with the
    /// embedded configuration.
    pub fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cfg = MdpTageConfig::snap_decode(r)?;
        let mut p = Self::new(cfg);
        let history = GlobalHistory::snap_decode(r)?;
        if history.capacity() != p.history.capacity() {
            return Err(SnapError::Corrupt("mdp-tage history capacity mismatch"));
        }
        p.history = history;
        for hasher in &mut p.hashers {
            hasher.recompute(&p.history);
        }
        let fill = MdpTageEntry {
            distance: 0,
            useful: false,
        };
        let tag_limit = 1u64 << p.cfg.tag_bits;
        for i in 0..p.tables.len() {
            p.tables[i] = AssocTable::snap_decode_with(
                r,
                (p.cfg.table_entries[i] / p.cfg.associativity) as usize,
                p.cfg.associativity as usize,
                fill,
                |t| t < tag_limit,
                MdpTageEntry::snap_decode,
            )?;
        }
        Ok(p)
    }

    /// Folds another predictor's tables into this one (warm resharding),
    /// preferring useful entries over un-useful ones on collision.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] when the configurations differ.
    pub fn merge_from(&mut self, other: &Self) -> Result<u64, SnapError> {
        if self.cfg != other.cfg {
            return Err(SnapError::Corrupt(
                "cannot merge mdp-tage predictors with different configurations",
            ));
        }
        let mut written = 0;
        for (mine, theirs) in self.tables.iter_mut().zip(&other.tables) {
            written += mine.merge_from_with(theirs, |incoming, incumbent| {
                incoming.useful && !incumbent.useful
            })?;
        }
        Ok(written)
    }
}

impl MemDepPredictor for MdpTage {
    type Meta = MdpTageMeta;

    fn name(&self) -> &'static str {
        "mdp-tage"
    }

    fn predict(
        &mut self,
        pc: u64,
        _store_seq: u64,
        _oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, MdpTageMeta) {
        let (lookups, num_tables) = self.compute_lookups(pc);
        let mut provider = None;
        let mut prediction = MemDepPrediction::NoDependence;
        for t in (0..self.tables.len()).rev() {
            let lk = lookups[t];
            if let Some((_, e)) = self.tables[t].find(u64::from(lk.index), u64::from(lk.tag)) {
                provider = Some(t as u8);
                // Only useful entries may predict ("if u is not 0").
                if e.useful {
                    let distance =
                        StoreDistance::new(u32::from(e.distance)).expect("1..=7 in range");
                    prediction = MemDepPrediction::Dependence { distance };
                }
                break;
            }
        }
        (
            prediction,
            MdpTageMeta {
                lookups,
                num_tables,
                provider,
            },
        )
    }

    fn train(
        &mut self,
        _pc: u64,
        meta: MdpTageMeta,
        predicted: MemDepPrediction,
        outcome: &LoadOutcome,
    ) {
        let provider = meta.provider.map(usize::from);
        // Only near dependencies are encodable in the 3-bit field.
        let encodable = outcome
            .dependence
            .filter(|d| (1..=7).contains(&d.distance.get()));
        match encodable {
            Some(dep) => {
                if predicted.distance() == Some(dep.distance) {
                    if let Some(p) = provider {
                        let lk = meta.lookups[p];
                        if let Some((_, e)) =
                            self.tables[p].find_mut(u64::from(lk.index), u64::from(lk.tag))
                        {
                            e.useful = true;
                        }
                    }
                } else {
                    if let Some(p) = provider {
                        let lk = meta.lookups[p];
                        if let Some((_, e)) =
                            self.tables[p].find_mut(u64::from(lk.index), u64::from(lk.tag))
                        {
                            e.useful = false;
                        }
                    }
                    let start = provider.map_or(0, |p| p + 1);
                    self.allocate(&meta, start, dep.distance.get());
                }
            }
            None => {
                // False dependence (or unencodable distance): clear the
                // single confidence bit — the scheme's whole unlearning
                // mechanism, and its weakness (§III).
                if predicted.is_dependence() {
                    if let Some(p) = provider {
                        let lk = meta.lookups[p];
                        if let Some((_, e)) =
                            self.tables[p].find_mut(u64::from(lk.index), u64::from(lk.tag))
                        {
                            e.useful = false;
                        }
                    }
                }
            }
        }
    }

    fn on_branch(&mut self, event: &BranchEvent) {
        for h in &mut self.hashers {
            h.on_branch(&self.history, event);
        }
        self.history.push(*event);
    }

    fn rewind_history(&mut self, recent: &[BranchEvent]) {
        rewind_hashers(&mut self.history, &mut self.hashers, recent);
    }

    fn storage_bits(&self) -> u64 {
        // tag + 3-bit distance + 1 usefulness bit.
        let per_entry = u64::from(self.cfg.tag_bits) + 3 + 1;
        self.cfg.table_entries.iter().map(|&e| u64::from(e) * per_entry).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot::prediction::{BypassClass, ObservedDependence};

    fn dep(distance: u32) -> LoadOutcome {
        LoadOutcome::dependent(ObservedDependence {
            distance: StoreDistance::new(distance).unwrap(),
            class: BypassClass::DirectBypass,
            store_pc: 0x900,
            branches_between: 0,
        })
    }

    #[test]
    fn storage_is_10kib() {
        assert_eq!(MdpTage::default().storage_bits(), 4096 * 20);
    }

    #[test]
    fn learns_near_dependence() {
        let mut p = MdpTage::default();
        let pc = 0x2000;
        let (pr, m) = p.predict(pc, 0, None);
        assert_eq!(pr, MemDepPrediction::NoDependence);
        p.train(pc, m, pr, &dep(3));
        let (pr, _) = p.predict(pc, 0, None);
        assert_eq!(pr.distance().unwrap().get(), 3);
    }

    #[test]
    fn cannot_encode_far_dependencies() {
        let mut p = MdpTage::default();
        let pc = 0x2000;
        for _ in 0..10 {
            let (pr, m) = p.predict(pc, 0, None);
            p.train(pc, m, pr, &dep(20)); // beyond the 3-bit field
        }
        assert_eq!(
            p.predict(pc, 0, None).0,
            MemDepPrediction::NoDependence,
            "distance 20 does not fit a 3-bit field"
        );
    }

    #[test]
    fn single_bit_confidence_flips_on_one_false_dependence() {
        let mut p = MdpTage::default();
        let pc = 0x2000;
        let (pr, m) = p.predict(pc, 0, None);
        p.train(pc, m, pr, &dep(2));
        assert!(p.predict(pc, 0, None).0.is_dependence());
        // One false dependence disables the entry entirely.
        let (pr, m) = p.predict(pc, 0, None);
        p.train(pc, m, pr, &LoadOutcome::independent());
        assert_eq!(p.predict(pc, 0, None).0, MemDepPrediction::NoDependence);
        // ...and one correct outcome re-arms it (the entry persists).
        let (pr, m) = p.predict(pc, 0, None);
        p.train(pc, m, pr, &dep(2));
        let _ = pr;
        // The provider matched but was unuseful; a conflicting distance of 2
        // re-allocates/re-arms, so the dependence comes back.
        assert!(p.predict(pc, 0, None).0.is_dependence());
    }

    #[test]
    fn snap_roundtrip_is_bit_identical() {
        use mascot::history::BranchKind;
        let mut p = MdpTage::default();
        for i in 0..100u64 {
            p.on_branch(&BranchEvent {
                pc: 0x100 + (i % 16) * 4,
                kind: BranchKind::Conditional,
                taken: i % 2 == 0,
                target: 0x180,
            });
            let pc = 0x2000 + (i % 6) * 8;
            let (pr, m) = p.predict(pc, 0, None);
            let out = if i % 4 == 0 {
                LoadOutcome::independent()
            } else {
                dep(1 + (i % 7) as u32)
            };
            p.train(pc, m, pr, &out);
        }
        let mut w = SnapWriter::new();
        p.snap_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut q = MdpTage::snap_decode(&mut r).unwrap();
        r.finish().unwrap();
        let mut w2 = SnapWriter::new();
        q.snap_encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        for i in 0..6u64 {
            let pc = 0x2000 + i * 8;
            assert_eq!(p.predict(pc, 0, None).0, q.predict(pc, 0, None).0);
        }
        for cut in [0, 2, bytes.len() / 2, bytes.len() - 1] {
            let mut r = SnapReader::new(&bytes[..cut]);
            let decoded = MdpTage::snap_decode(&mut r);
            assert!(decoded.is_err() || r.finish().is_err(), "cut {cut}");
        }
    }

    #[test]
    fn merge_unions_disjoint_entries() {
        let mut a = MdpTage::default();
        let mut b = MdpTage::default();
        let (pr, m) = a.predict(0x2000, 0, None);
        a.train(0x2000, m, pr, &dep(3));
        let (pr, m) = b.predict(0x7000, 0, None);
        b.train(0x7000, m, pr, &dep(5));
        let written = a.merge_from(&b).unwrap();
        assert_eq!(written, 1);
        assert!(a.predict(0x2000, 0, None).0.is_dependence());
        assert!(a.predict(0x7000, 0, None).0.is_dependence());
    }

    #[test]
    fn never_bypasses() {
        let mut p = MdpTage::default();
        for i in 0..50u64 {
            let (pr, m) = p.predict(0x100, i, None);
            assert!(!pr.is_bypass());
            p.train(0x100, m, pr, &dep(1));
        }
    }
}
