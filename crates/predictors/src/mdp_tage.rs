//! MDP-TAGE (Perais & Seznec; described in §II of the MASCOT paper): the
//! minimal TAGE-for-memory-dependence augmentation that predates PHAST.
//!
//! A TAGE branch predictor is repurposed by using its 3-bit saturating
//! counter as the *store distance* and adding a single usefulness bit `u`:
//! "If u is not 0, the entry can be used for predicting a memory
//! dependence." The 3-bit distance limits predictions to the seven nearest
//! stores, and the single-bit confidence makes entries fragile — both
//! weaknesses MASCOT's 7-bit distance and richer counters address. Included
//! as a historical baseline beyond the paper's Table II set.

use mascot::history::{rewind_hashers, BranchEvent, GlobalHistory, TableHasher};
use mascot::prediction::{
    GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction, StoreDistance,
};
use mascot::predictor::TableLookup;
use mascot::table::AssocTable;
use serde::{Deserialize, Serialize};

/// Maximum tables supported by the fixed-size metadata.
pub const MAX_TABLES: usize = 16;

/// Configuration for [`MdpTage`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MdpTageConfig {
    /// History length per table (branches), starting at 0.
    pub history_lengths: Vec<u32>,
    /// Entries per table.
    pub table_entries: Vec<u32>,
    /// Tag width in bits.
    pub tag_bits: u8,
    /// Associativity.
    pub associativity: u32,
}

impl Default for MdpTageConfig {
    fn default() -> Self {
        // Sized comparably to the Table II predictors.
        Self {
            history_lengths: vec![0, 2, 4, 8, 16, 32, 64, 128],
            table_entries: vec![512; 8],
            tag_bits: 16,
            associativity: 4,
        }
    }
}

/// Entry payload; the tag lives in the table's SoA tag lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct MdpTageEntry {
    /// The repurposed 3-bit counter: store distance 1..=7.
    distance: u8,
    /// Single usefulness bit.
    useful: bool,
}

/// Per-prediction metadata for [`MdpTage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MdpTageMeta {
    lookups: [TableLookup; MAX_TABLES],
    num_tables: u8,
    provider: Option<u8>,
}

/// The MDP-TAGE predictor.
///
/// # Examples
///
/// ```
/// use mascot_predictors::MdpTage;
/// use mascot::MemDepPredictor;
///
/// let p = MdpTage::default();
/// // 4K entries × (16-bit tag + 3-bit distance + 1 u bit) = 10 KiB.
/// assert!((p.storage_kib() - 10.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdpTage {
    cfg: MdpTageConfig,
    tables: Vec<AssocTable<MdpTageEntry>>,
    hashers: Vec<TableHasher>,
    history: GlobalHistory,
}

impl Default for MdpTage {
    fn default() -> Self {
        Self::new(MdpTageConfig::default())
    }
}

impl MdpTage {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the per-table vectors disagree in length, exceed
    /// [`MAX_TABLES`], or yield non-power-of-two set counts.
    pub fn new(cfg: MdpTageConfig) -> Self {
        assert_eq!(
            cfg.history_lengths.len(),
            cfg.table_entries.len(),
            "history/table shape mismatch"
        );
        assert!(cfg.history_lengths.len() <= MAX_TABLES, "too many tables");
        let fill = MdpTageEntry {
            distance: 0,
            useful: false,
        };
        let tables: Vec<_> = cfg
            .table_entries
            .iter()
            .map(|&e| {
                AssocTable::new(
                    (e / cfg.associativity) as usize,
                    cfg.associativity as usize,
                    fill,
                )
            })
            .collect();
        let hashers: Vec<_> = cfg
            .history_lengths
            .iter()
            .zip(&tables)
            .map(|(&h, t)| TableHasher::new(h, t.index_bits(), u32::from(cfg.tag_bits)))
            .collect();
        let max_hist = *cfg.history_lengths.last().expect("at least one table") as usize;
        Self {
            tables,
            hashers,
            history: GlobalHistory::new((max_hist * 2).max(64)),
            cfg,
        }
    }

    fn compute_lookups(&self, pc: u64) -> ([TableLookup; MAX_TABLES], u8) {
        let mut lookups = [TableLookup::default(); MAX_TABLES];
        for (i, h) in self.hashers.iter().enumerate() {
            lookups[i] = TableLookup {
                index: h.index(pc) as u32,
                tag: h.tag(pc) as u32,
            };
        }
        (lookups, self.hashers.len() as u8)
    }

    fn allocate(&mut self, meta: &MdpTageMeta, start: usize, distance: u8) {
        for t in start..self.tables.len() {
            let lk = meta.lookups[t];
            let entry = MdpTageEntry {
                distance,
                useful: true,
            };
            if self.tables[t]
                .try_insert(u64::from(lk.index), u64::from(lk.tag), entry, |e| !e.useful)
                .is_some()
            {
                return;
            }
            self.tables[t].for_each_valid_mut(u64::from(lk.index), |_, e| e.useful = false);
        }
    }
}

impl MemDepPredictor for MdpTage {
    type Meta = MdpTageMeta;

    fn name(&self) -> &'static str {
        "mdp-tage"
    }

    fn predict(
        &mut self,
        pc: u64,
        _store_seq: u64,
        _oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, MdpTageMeta) {
        let (lookups, num_tables) = self.compute_lookups(pc);
        let mut provider = None;
        let mut prediction = MemDepPrediction::NoDependence;
        for t in (0..self.tables.len()).rev() {
            let lk = lookups[t];
            if let Some((_, e)) = self.tables[t].find(u64::from(lk.index), u64::from(lk.tag)) {
                provider = Some(t as u8);
                // Only useful entries may predict ("if u is not 0").
                if e.useful {
                    let distance =
                        StoreDistance::new(u32::from(e.distance)).expect("1..=7 in range");
                    prediction = MemDepPrediction::Dependence { distance };
                }
                break;
            }
        }
        (
            prediction,
            MdpTageMeta {
                lookups,
                num_tables,
                provider,
            },
        )
    }

    fn train(
        &mut self,
        _pc: u64,
        meta: MdpTageMeta,
        predicted: MemDepPrediction,
        outcome: &LoadOutcome,
    ) {
        let provider = meta.provider.map(usize::from);
        // Only near dependencies are encodable in the 3-bit field.
        let encodable = outcome
            .dependence
            .filter(|d| (1..=7).contains(&d.distance.get()));
        match encodable {
            Some(dep) => {
                if predicted.distance() == Some(dep.distance) {
                    if let Some(p) = provider {
                        let lk = meta.lookups[p];
                        if let Some((_, e)) =
                            self.tables[p].find_mut(u64::from(lk.index), u64::from(lk.tag))
                        {
                            e.useful = true;
                        }
                    }
                } else {
                    if let Some(p) = provider {
                        let lk = meta.lookups[p];
                        if let Some((_, e)) =
                            self.tables[p].find_mut(u64::from(lk.index), u64::from(lk.tag))
                        {
                            e.useful = false;
                        }
                    }
                    let start = provider.map_or(0, |p| p + 1);
                    self.allocate(&meta, start, dep.distance.get());
                }
            }
            None => {
                // False dependence (or unencodable distance): clear the
                // single confidence bit — the scheme's whole unlearning
                // mechanism, and its weakness (§III).
                if predicted.is_dependence() {
                    if let Some(p) = provider {
                        let lk = meta.lookups[p];
                        if let Some((_, e)) =
                            self.tables[p].find_mut(u64::from(lk.index), u64::from(lk.tag))
                        {
                            e.useful = false;
                        }
                    }
                }
            }
        }
    }

    fn on_branch(&mut self, event: &BranchEvent) {
        for h in &mut self.hashers {
            h.on_branch(&self.history, event);
        }
        self.history.push(*event);
    }

    fn rewind_history(&mut self, recent: &[BranchEvent]) {
        rewind_hashers(&mut self.history, &mut self.hashers, recent);
    }

    fn storage_bits(&self) -> u64 {
        // tag + 3-bit distance + 1 usefulness bit.
        let per_entry = u64::from(self.cfg.tag_bits) + 3 + 1;
        self.cfg.table_entries.iter().map(|&e| u64::from(e) * per_entry).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot::prediction::{BypassClass, ObservedDependence};

    fn dep(distance: u32) -> LoadOutcome {
        LoadOutcome::dependent(ObservedDependence {
            distance: StoreDistance::new(distance).unwrap(),
            class: BypassClass::DirectBypass,
            store_pc: 0x900,
            branches_between: 0,
        })
    }

    #[test]
    fn storage_is_10kib() {
        assert_eq!(MdpTage::default().storage_bits(), 4096 * 20);
    }

    #[test]
    fn learns_near_dependence() {
        let mut p = MdpTage::default();
        let pc = 0x2000;
        let (pr, m) = p.predict(pc, 0, None);
        assert_eq!(pr, MemDepPrediction::NoDependence);
        p.train(pc, m, pr, &dep(3));
        let (pr, _) = p.predict(pc, 0, None);
        assert_eq!(pr.distance().unwrap().get(), 3);
    }

    #[test]
    fn cannot_encode_far_dependencies() {
        let mut p = MdpTage::default();
        let pc = 0x2000;
        for _ in 0..10 {
            let (pr, m) = p.predict(pc, 0, None);
            p.train(pc, m, pr, &dep(20)); // beyond the 3-bit field
        }
        assert_eq!(
            p.predict(pc, 0, None).0,
            MemDepPrediction::NoDependence,
            "distance 20 does not fit a 3-bit field"
        );
    }

    #[test]
    fn single_bit_confidence_flips_on_one_false_dependence() {
        let mut p = MdpTage::default();
        let pc = 0x2000;
        let (pr, m) = p.predict(pc, 0, None);
        p.train(pc, m, pr, &dep(2));
        assert!(p.predict(pc, 0, None).0.is_dependence());
        // One false dependence disables the entry entirely.
        let (pr, m) = p.predict(pc, 0, None);
        p.train(pc, m, pr, &LoadOutcome::independent());
        assert_eq!(p.predict(pc, 0, None).0, MemDepPrediction::NoDependence);
        // ...and one correct outcome re-arms it (the entry persists).
        let (pr, m) = p.predict(pc, 0, None);
        p.train(pc, m, pr, &dep(2));
        let _ = pr;
        // The provider matched but was unuseful; a conflicting distance of 2
        // re-allocates/re-arms, so the dependence comes back.
        assert!(p.predict(pc, 0, None).0.is_dependence());
    }

    #[test]
    fn never_bypasses() {
        let mut p = MdpTage::default();
        for i in 0..50u64 {
            let (pr, m) = p.predict(0x100, i, None);
            assert!(!pr.is_bypass());
            p.train(0x100, m, pr, &dep(1));
        }
    }
}
