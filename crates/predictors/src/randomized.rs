//! SPOILER-GUARD-style randomized MASCOT (DESIGN.md §12).
//!
//! MASCOT's table hashes are GF(2)-linear in the load PC and read only its
//! low bits, so an attacker who controls its own code layout can construct
//! PCs that collide with a victim's entries in *every* table under *any*
//! history (`mistrain_alias` in `mascot-workloads` does exactly that) and
//! mistrain the victim's bypass decisions. [`RandomizedMascot`] defends
//! with two mechanisms proposed by the SPOILER-GUARD line of work:
//!
//! 1. **Keyed index randomization** — every PC is passed through a keyed
//!    *non-linear* bijection (a splitmix64-style multiply–xorshift chain)
//!    before it reaches the inner predictor's hashes. Linearity is what
//!    makes offline alias construction trivial (XOR-ing any constant into
//!    the PC preserves collisions); the multiply steps destroy that
//!    structure, so colliding contexts can only be found by online probing
//!    against the keyed instance.
//! 2. **Noisy confidence thresholds** — a keyed, deterministic 1-in-64
//!    coin demotes a `Bypass` prediction to a plain `Dependence`. The
//!    demotion is always *safe* (the dependence is still honoured, so no
//!    squash risk) and costs only the occasional lost bypass, but it caps
//!    the value of any single mistrained entry and makes the attacker's
//!    feedback signal noisy.
//!
//! The key is architectural state: it is written to snapshots and restored
//! with the tables (a warm restart must *not* silently fall back to a
//! well-known key, which would de-randomize the defense), and merging two
//! instances with different keys fails closed — their index spaces are
//! mutually scrambled, so a union merge would be meaningless.

use mascot::config::{ConfigError, MascotConfig};
use mascot::history::BranchEvent;
use mascot::prediction::{
    GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction, PredictReq,
};
use mascot::predictor::{Mascot, MascotMeta};
use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// Deployment-default scramble key.
///
/// A production deployment rolls a fresh key per boot (see
/// [`RandomizedMascot::with_key`]) and shares it across the shards of one
/// serve instance (merging requires equal keys). The registry builds with
/// this fixed key so golden tests and bit-exact differentials stay
/// deterministic; the defense evaluated in `EXPERIMENTS.md` does not rely
/// on key secrecy against our attacker profiles — they exploit the hash's
/// *linearity*, which any key of this scramble removes.
pub const DEFAULT_KEY: u64 = 0x5eed_c0de_2025_0913;

/// Demote one in `NOISE_PERIOD` bypass predictions to a plain dependence.
const NOISE_PERIOD: u64 = 64;

/// Keyed non-linear bijection over PCs (splitmix64 finalizer seeded with
/// the key). Bijective, so distinct PCs can never be *introduced* as
/// aliases by the scramble itself.
#[inline]
fn scramble(key: u64, pc: u64) -> u64 {
    let mut x = pc ^ key;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// MASCOT behind keyed index randomization and noisy bypass confidence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomizedMascot {
    inner: Mascot,
    key: u64,
    /// Bypass predictions seen so far — the phase of the deterministic
    /// noise stream (architectural state: snapshotted, so a restored
    /// instance continues the exact same coin sequence).
    noise_ctr: u64,
    /// Scratch for the batched probe (scrambled request copies).
    #[serde(skip, default)]
    batch_scratch: Vec<PredictReq>,
}

impl RandomizedMascot {
    /// Builds with the deployment-default key.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors from [`Mascot::new`].
    pub fn new(cfg: MascotConfig) -> Result<Self, ConfigError> {
        Self::with_key(cfg, DEFAULT_KEY)
    }

    /// Builds with a caller-chosen scramble key (per-boot randomization).
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors from [`Mascot::new`].
    pub fn with_key(cfg: MascotConfig, key: u64) -> Result<Self, ConfigError> {
        Ok(Self {
            inner: Mascot::new(cfg)?,
            key,
            noise_ctr: 0,
            batch_scratch: Vec::new(),
        })
    }

    /// The active scramble key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The wrapped predictor (tables are indexed by *scrambled* PCs).
    pub fn inner(&self) -> &Mascot {
        &self.inner
    }

    /// Total valid entries across all tables ([`Mascot::entry_count`]).
    pub fn entry_count(&self) -> u64 {
        self.inner.entry_count()
    }

    /// The keyed deterministic bypass-demotion coin; advances the noise
    /// phase. Called once per *bypass* prediction, in request order.
    #[inline]
    fn noise_coin(&mut self) -> bool {
        let draw = scramble(self.key.rotate_left(32), self.noise_ctr);
        self.noise_ctr = self.noise_ctr.wrapping_add(1);
        draw % NOISE_PERIOD == 0
    }

    /// Applies the confidence noise to one prediction.
    #[inline]
    fn apply_noise(&mut self, pred: MemDepPrediction) -> MemDepPrediction {
        if pred.is_bypass() && self.noise_coin() {
            pred.demote_bypass()
        } else {
            pred
        }
    }

    /// Serializes key, noise phase and the wrapped predictor's state.
    pub fn snap_encode(&self, w: &mut SnapWriter) {
        w.u64(self.key);
        w.u64(self.noise_ctr);
        self.inner.snap_encode(w);
    }

    /// Restores from a snapshot payload. The key is restored *from the
    /// snapshot* — a warm restart keeps the randomization it was trained
    /// under instead of silently reverting to [`DEFAULT_KEY`].
    ///
    /// # Errors
    ///
    /// Propagates any [`SnapError`] from the inner decode.
    pub fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let key = r.u64("scramble key")?;
        let noise_ctr = r.u64("noise phase")?;
        Ok(Self {
            inner: Mascot::snap_decode(r)?,
            key,
            noise_ctr,
            batch_scratch: Vec::new(),
        })
    }

    /// Folds another randomized predictor's tables into this one,
    /// fail-closed on a key mismatch (like a kind mismatch): two instances
    /// keyed differently index mutually scrambled spaces, so a union merge
    /// would write every entry at meaningless coordinates.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] on a key or configuration mismatch.
    pub fn merge_from(&mut self, other: &Self) -> Result<u64, SnapError> {
        if self.key != other.key {
            return Err(SnapError::Corrupt(
                "cannot merge randomized predictors with different keys",
            ));
        }
        self.inner.merge_from(&other.inner)
    }

    /// Batched probe: scrambles the whole batch, then runs the inner
    /// table-major sweep; noise is applied at emission, in request order,
    /// so the result is identical to scalar [`MemDepPredictor::predict`]
    /// calls in sequence.
    pub fn predict_batch_into(
        &mut self,
        reqs: &[PredictReq],
        mut sink: impl FnMut(MemDepPrediction, MascotMeta),
    ) {
        let mut scrambled = std::mem::take(&mut self.batch_scratch);
        scrambled.clear();
        scrambled.extend(reqs.iter().map(|r| PredictReq {
            pc: scramble(self.key, r.pc),
            ..*r
        }));
        // Split the borrow: the inner sweep must not alias the noise state.
        let key = self.key;
        let mut noise_ctr = self.noise_ctr;
        self.inner.predict_batch_into(&scrambled, |pred, meta| {
            let noisy = if pred.is_bypass() {
                let draw = scramble(key.rotate_left(32), noise_ctr);
                noise_ctr = noise_ctr.wrapping_add(1);
                if draw % NOISE_PERIOD == 0 {
                    pred.demote_bypass()
                } else {
                    pred
                }
            } else {
                pred
            };
            sink(noisy, meta);
        });
        self.noise_ctr = noise_ctr;
        self.batch_scratch = scrambled;
    }
}

impl MemDepPredictor for RandomizedMascot {
    type Meta = MascotMeta;

    fn name(&self) -> &'static str {
        "randomized-mascot"
    }

    fn predict(
        &mut self,
        pc: u64,
        store_seq: u64,
        oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, MascotMeta) {
        let spc = scramble(self.key, pc);
        let (pred, meta) = self.inner.predict(spc, store_seq, oracle);
        (self.apply_noise(pred), meta)
    }

    fn predict_batch(
        &mut self,
        reqs: &[PredictReq],
        out: &mut Vec<(MemDepPrediction, Self::Meta)>,
    ) {
        out.clear();
        out.reserve(reqs.len());
        self.predict_batch_into(reqs, |p, m| out.push((p, m)));
    }

    fn train(
        &mut self,
        pc: u64,
        meta: MascotMeta,
        predicted: MemDepPrediction,
        outcome: &LoadOutcome,
    ) {
        // The inner trainer keys every table update off `meta`'s captured
        // lookups (computed from the scrambled PC at predict time), and a
        // demoted Bypass trains identically to the Dependence it became,
        // so handing it the acted-on prediction is exact.
        self.inner
            .train(scramble(self.key, pc), meta, predicted, outcome);
    }

    fn on_branch(&mut self, event: &BranchEvent) {
        self.inner.on_branch(event);
    }

    fn rewind_history(&mut self, recent: &[BranchEvent]) {
        self.inner.rewind_history(recent);
    }

    fn bypass_supports_offset(&self) -> bool {
        self.inner.bypass_supports_offset()
    }

    fn storage_bits(&self) -> u64 {
        // Tables plus the 64-bit key register.
        self.inner.storage_bits() + 64
    }

    fn end_tuning_period(&mut self) {
        self.inner.end_tuning_period();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot::prediction::{BypassClass, ObservedDependence, StoreDistance};

    fn small_cfg() -> MascotConfig {
        MascotConfig {
            history_lengths: vec![0, 2, 4, 8],
            table_entries: vec![64; 4],
            tag_bits: vec![12; 4],
            ..MascotConfig::default()
        }
    }

    fn dep_out(d: u32) -> LoadOutcome {
        LoadOutcome::dependent(ObservedDependence {
            distance: StoreDistance::new(d).unwrap(),
            class: BypassClass::DirectBypass,
            store_pc: 0x900,
            branches_between: 0,
        })
    }

    #[test]
    fn learns_like_mascot_modulo_noise() {
        let mut p = RandomizedMascot::new(small_cfg()).unwrap();
        let pc = 0x40_2000;
        let out = dep_out(3);
        for _ in 0..20 {
            let (pred, meta) = p.predict(pc, 0, None);
            p.train(pc, meta, pred, &out);
        }
        let (pred, _) = p.predict(pc, 0, None);
        assert!(pred.is_dependence(), "must still learn dependences: {pred:?}");
    }

    #[test]
    fn scramble_is_nonlinear_in_pc() {
        // The attack surface: under the plain hash, pc and pc^(k<<34)
        // collide in every table. The scramble must not commute with XOR.
        let k = 0x3u64 << 34;
        let a = scramble(DEFAULT_KEY, 0x40_0000);
        let b = scramble(DEFAULT_KEY, 0x40_0000 ^ k);
        assert_ne!(a ^ b, k, "XOR differences must not be preserved");
        assert_ne!(a & 0x3_ffff_ffff, b & 0x3_ffff_ffff, "low bits must split");
    }

    #[test]
    fn noise_demotes_a_bounded_fraction_of_bypasses() {
        let mut p = RandomizedMascot::new(small_cfg()).unwrap();
        let pc = 0x40_3000;
        let out = dep_out(2);
        // Saturate both counters so the inner predictor always bypasses.
        for _ in 0..8 {
            let (pred, meta) = p.predict(pc, 0, None);
            p.train(pc, meta, pred, &out);
        }
        let mut demoted = 0;
        let rounds = 4096;
        for _ in 0..rounds {
            let (pred, meta) = p.predict(pc, 0, None);
            if !pred.is_bypass() {
                demoted += 1;
            }
            p.train(pc, meta, pred, &out);
        }
        // ~1/64 expected; generous bounds keep this deterministic-friendly.
        assert!(demoted > 0, "noise must fire at least once in {rounds}");
        assert!(
            demoted < rounds / 16,
            "noise demoted {demoted}/{rounds}: too lossy"
        );
    }

    #[test]
    fn batch_matches_scalar_including_noise_phase() {
        let pcs: Vec<u64> = (0..64u64).map(|i| 0x40_0000 + i * 4).collect();
        let out = dep_out(1);
        let mut scalar = RandomizedMascot::new(small_cfg()).unwrap();
        let mut batch = RandomizedMascot::new(small_cfg()).unwrap();
        for round in 0..40 {
            let reqs: Vec<PredictReq> = pcs
                .iter()
                .map(|&pc| PredictReq {
                    pc,
                    store_seq: 0,
                    oracle: None,
                })
                .collect();
            let mut batched = Vec::new();
            batch.predict_batch(&reqs, &mut batched);
            for (i, &pc) in pcs.iter().enumerate() {
                let (sp, sm) = scalar.predict(pc, 0, None);
                assert_eq!(sp, batched[i].0, "round {round} pc {pc:#x}");
                scalar.train(pc, sm, sp, &out);
            }
            for (i, (bp, bm)) in batched.into_iter().enumerate() {
                batch.train(pcs[i], bm, bp, &out);
            }
            assert_eq!(scalar.noise_ctr, batch.noise_ctr, "round {round}");
        }
    }

    #[test]
    fn snapshot_roundtrips_key_and_noise_phase() {
        let mut p = RandomizedMascot::with_key(small_cfg(), 0xdead_beef).unwrap();
        let out = dep_out(2);
        for i in 0..300u64 {
            let pc = 0x40_0000 + (i % 16) * 4;
            let (pred, meta) = p.predict(pc, 0, None);
            p.train(pc, meta, pred, &out);
        }
        let mut w = SnapWriter::new();
        p.snap_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut q = RandomizedMascot::snap_decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(q.key(), 0xdead_beef, "key must survive the restart");
        assert_eq!(q.noise_ctr, p.noise_ctr);
        // Identical continued traffic must stay bit-identical (noise
        // stream included).
        for i in 0..200u64 {
            let pc = 0x40_0000 + (i % 16) * 4;
            let (pp, pm) = p.predict(pc, 0, None);
            let (qp, qm) = q.predict(pc, 0, None);
            assert_eq!(pp, qp, "prediction diverged at step {i}");
            p.train(pc, pm, pp, &out);
            q.train(pc, qm, qp, &out);
        }
    }

    #[test]
    fn merge_fails_closed_on_key_mismatch() {
        let mut a = RandomizedMascot::with_key(small_cfg(), 1).unwrap();
        let b = RandomizedMascot::with_key(small_cfg(), 2).unwrap();
        assert!(a.merge_from(&b).is_err(), "different keys must not merge");
        let c = RandomizedMascot::with_key(small_cfg(), 1).unwrap();
        assert!(a.merge_from(&c).is_ok());
    }
}
