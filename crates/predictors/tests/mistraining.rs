//! Predictor-level mistraining properties (DESIGN.md §12): the baseline
//! MASCOT hasher is fully aliasable across the tenant boundary, and the
//! randomized defense breaks exactly that aliasing.

use mascot::config::MascotConfig;
use mascot::prediction::{
    BypassClass, LoadOutcome, MemDepPrediction, MemDepPredictor, ObservedDependence, StoreDistance,
};
use mascot::predictor::Mascot;
use mascot_predictors::RandomizedMascot;

const VICTIM_PC: u64 = 0x40_0060;
const ATTACKER_PC: u64 = VICTIM_PC ^ (1 << 34);

fn dependent_outcome() -> LoadOutcome {
    LoadOutcome::dependent(ObservedDependence {
        distance: StoreDistance::new(1).unwrap(),
        class: BypassClass::DirectBypass,
        store_pc: ATTACKER_PC - 0x4c,
        branches_between: 0,
    })
}

/// Drives `rounds` of the attacker's training loop against `p`.
fn mistrain<P: MemDepPredictor>(p: &mut P, rounds: u64) {
    for seq in 0..rounds {
        let (pred, meta) = p.predict(ATTACKER_PC, seq, None);
        p.train(ATTACKER_PC, meta, pred, &dependent_outcome());
    }
}

#[test]
fn baseline_mascot_is_cross_tenant_aliasable() {
    // Training only ever at the attacker's PC must carry over to the
    // victim's PC under the baseline hasher: bit 34 never reaches the
    // index or tag masks, so the two PCs share every entry.
    let mut p = Mascot::new(MascotConfig::default()).unwrap();
    mistrain(&mut p, 200);
    let (pred, _) = p.predict(VICTIM_PC, 10_000, None);
    assert!(
        matches!(
            pred,
            MemDepPrediction::Bypass { .. } | MemDepPrediction::Dependence { .. }
        ),
        "victim PC must inherit the attacker's training, got {pred:?}"
    );
}

#[test]
fn randomized_mascot_does_not_alias_across_the_boundary() {
    // The keyed nonlinear scramble must separate the two PCs: the same
    // mistraining leaves the victim's prediction at the default.
    let mut p = RandomizedMascot::new(MascotConfig::default()).unwrap();
    mistrain(&mut p, 200);
    let (pred, _) = p.predict(VICTIM_PC, 10_000, None);
    assert_eq!(
        pred,
        MemDepPrediction::NoDependence,
        "scrambled victim PC must not inherit the attacker's training"
    );
}

#[test]
fn randomized_mascot_still_learns_the_attacked_pattern_locally() {
    // The defense must not break first-party learning: the attacker's own
    // PC (any PC) still trains to a dependence prediction.
    let mut p = RandomizedMascot::new(MascotConfig::default()).unwrap();
    mistrain(&mut p, 200);
    let (pred, _) = p.predict(ATTACKER_PC, 10_000, None);
    assert!(
        matches!(
            pred,
            MemDepPrediction::Bypass { .. } | MemDepPrediction::Dependence { .. }
        ),
        "first-party training must survive the scramble, got {pred:?}"
    );
}
