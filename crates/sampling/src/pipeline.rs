//! The end-to-end sampled-simulation pipeline: slice → fingerprint →
//! cluster → simulate representatives → project (DESIGN.md §13).

use std::ops::Range;

use mascot_predictors::{AnyPredictor, PredictorKind};
use mascot_sim::{CoreConfig, FunctionalWarmer, SimStats, Simulator, Trace};
use mascot_workloads::{intervals, slice};

use crate::fingerprint::fingerprint;
use crate::kmeans::kmeans;
use crate::pool::parallel_map;

/// Knobs for one sampled run. The defaults are what `BENCH_sampling.json`
/// and the check-gate use: 10k-uop intervals, 8 clusters, a 2k-uop
/// detailed pipeline ramp on top of the full-prefix functional warm-up,
/// the repo-wide seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Interval length in uops; the final interval keeps the remainder.
    pub interval_uops: usize,
    /// Target cluster count `k` (clamped to the interval count).
    pub clusters: usize,
    /// Detailed warm-up simulated before each representative's measured
    /// window (clamped to whatever trace actually precedes the window):
    /// a short ramp that fills the ROB/queues so the window starts from a
    /// steady pipeline. Cache and predictor state is the functional
    /// warm-up's job, so this stays small.
    pub warmup_uops: usize,
    /// Seed for the deterministic k-means initialisation.
    pub seed: u64,
    /// Lloyd-iteration cap for k-means.
    pub max_iters: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            interval_uops: 10_000,
            clusters: 8,
            warmup_uops: 2_000,
            seed: 2025,
            max_iters: 50,
        }
    }
}

/// One cluster in a [`ClusterPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Index (into [`ClusterPlan::intervals`]) of the member closest to
    /// the centroid — the interval that gets simulated.
    pub representative: usize,
    /// Total uops across all member intervals; the representative's
    /// measured stats are scaled to stand in for this many uops.
    pub weight_uops: u64,
    /// Member interval indices, ascending.
    pub members: Vec<usize>,
}

/// The clustering decision for a trace: which intervals exist, which
/// cluster each belongs to, and which member represents each cluster.
/// Purely a function of the trace contents and the [`SamplingConfig`] —
/// no simulation happens here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPlan {
    /// Canonical interval boundaries (`mascot_workloads::intervals`).
    pub intervals: Vec<Range<usize>>,
    /// Per-interval cluster index, `assignments[i] < clusters.len()`.
    pub assignments: Vec<u32>,
    /// Non-empty clusters, ordered by their lowest member index.
    pub clusters: Vec<Cluster>,
}

/// Everything a sampled run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledOutcome {
    /// Projected full-trace stats (cluster-weighted sum).
    pub projected: SimStats,
    /// The clustering that drove the projection.
    pub plan: ClusterPlan,
    /// Uops simulated in detail (detailed warm-ups included).
    pub simulated_uops: u64,
    /// Uops replayed by the sequential functional warm-up pass
    /// (architectural only, several times cheaper per uop than
    /// `simulated_uops`, and amortisable across runs via [`WarmSet`]).
    pub warmed_uops: u64,
    /// Uops the projection stands in for (the full trace) — the value.
    pub represented_uops: u64,
}

/// Builds the [`ClusterPlan`] for `trace` under `cfg`: slices, fingerprints
/// every interval, clusters the fingerprints, and picks each cluster's
/// representative (the member nearest its centroid; ties toward the lowest
/// interval index). When `cfg.clusters >= interval count` every interval is
/// its own cluster and represents itself — sampling degenerates to a full
/// run, which is what the exactness property test leans on.
///
/// # Panics
///
/// Panics if `trace` is empty.
pub fn plan(trace: &Trace, cfg: &SamplingConfig) -> ClusterPlan {
    assert!(trace.len() > 0, "cannot sample an empty trace");
    let intervals = intervals(trace.len(), cfg.interval_uops);
    let points: Vec<_> = intervals
        .iter()
        .map(|r| fingerprint(&trace.uops[r.clone()]))
        .collect();

    let (raw_assignments, centroids) = if cfg.clusters >= points.len() {
        // Identity clustering: skip k-means entirely so the degenerate
        // case is exact by construction, not by convergence luck.
        ((0..points.len() as u32).collect::<Vec<_>>(), points.clone())
    } else {
        let r = kmeans(&points, cfg.clusters, cfg.seed, cfg.max_iters);
        (r.assignments, r.centroids)
    };

    // Compact to non-empty clusters, ordered by lowest member index, and
    // pick representatives.
    let mut clusters = Vec::new();
    let mut remap = vec![u32::MAX; centroids.len()];
    for (i, &a) in raw_assignments.iter().enumerate() {
        if remap[a as usize] == u32::MAX {
            remap[a as usize] = clusters.len() as u32;
            clusters.push(Cluster {
                representative: usize::MAX,
                weight_uops: 0,
                members: Vec::new(),
            });
        }
        let c = &mut clusters[remap[a as usize] as usize];
        c.members.push(i);
        c.weight_uops += intervals[i].len() as u64;
    }
    let assignments: Vec<u32> = raw_assignments
        .iter()
        .map(|&a| remap[a as usize])
        .collect();
    for (c, cluster) in clusters.iter_mut().enumerate() {
        let centroid = &centroids[raw_assignments[cluster.members[0]] as usize];
        let mut best = cluster.members[0];
        let mut best_d = f64::INFINITY;
        for &m in &cluster.members {
            let d = points[m].dist2(centroid);
            if d < best_d {
                best_d = d;
                best = m;
            }
        }
        cluster.representative = best;
        debug_assert!(cluster.members.iter().all(|&m| assignments[m] == c as u32));
    }

    ClusterPlan {
        intervals,
        assignments,
        clusters,
    }
}

/// Projects full-trace stats from per-cluster measurements: each cluster's
/// measured window stats are scaled from the uops actually measured to the
/// uops the cluster represents, then summed. Exposed separately from
/// [`run_sampled`] so the exactness property (projecting every interval of
/// one full run with weight == measurement reproduces that run's aggregate
/// bit-for-bit) can be tested against the production code path.
///
/// `measurements[i]` must be the measured-window delta for
/// `plan.clusters[i]`'s representative, with `measured_uops[i]` committed
/// uops inside the window.
pub fn project(plan: &ClusterPlan, measurements: &[SimStats], measured_uops: &[u64]) -> SimStats {
    assert_eq!(plan.clusters.len(), measurements.len());
    assert_eq!(plan.clusters.len(), measured_uops.len());
    let mut projected = SimStats::default();
    for ((cluster, stats), &measured) in plan.clusters.iter().zip(measurements).zip(measured_uops) {
        projected.accumulate(&stats.scaled(cluster.weight_uops, measured));
    }
    projected
}

/// Per-cluster functional warm-up checkpoints for one `(trace, plan,
/// predictor, core)` combination — the expensive, reusable half of a
/// sampled run. Built by [`warm_checkpoints`] in **one** sequential
/// architectural pass over the trace prefix, frozen at each
/// representative's warm-up boundary; consumed (by cloning) every time
/// [`run_sampled_with`] measures the windows. Callers that sweep many
/// configurations over the same trace build this once and amortise it —
/// the SimPoint checkpoint workflow.
#[derive(Debug)]
pub struct WarmSet {
    /// One frozen warmer per [`ClusterPlan::clusters`] entry (same order),
    /// holding the architectural state of a full replay of the trace up to
    /// that cluster's representative warm-up boundary.
    pub checkpoints: Vec<FunctionalWarmer<AnyPredictor>>,
    /// Uops the sequential pass replayed (the furthest boundary).
    pub warmed_uops: u64,
}

/// The uop range each cluster's representative window occupies, including
/// the detailed pipeline ramp before it, plus the ramp length.
fn window_ranges(plan: &ClusterPlan, cfg: &SamplingConfig) -> Vec<(Range<usize>, u64)> {
    plan.clusters
        .iter()
        .map(|c| {
            let r = plan.intervals[c.representative].clone();
            let warmup = r.start.min(cfg.warmup_uops);
            ((r.start - warmup)..r.end, warmup as u64)
        })
        .collect()
}

/// Builds the [`WarmSet`] for a plan: walks the trace **once**, replaying
/// it architecturally (caches, prefetcher, branch predictor,
/// memory-dependence predictor — no timing) through a
/// [`FunctionalWarmer`], and clones the warmer at every representative's
/// warm-up boundary. Each checkpoint is bit-identical to an independent
/// functional replay of the whole prefix before its window — replay is
/// deterministic and history-only — so windows measure against
/// full-prefix state while the warm cost stays O(trace), not
/// O(clusters × trace).
pub fn warm_checkpoints(
    trace: &Trace,
    plan: &ClusterPlan,
    kind: PredictorKind,
    core: &CoreConfig,
    cfg: &SamplingConfig,
) -> WarmSet {
    let mut boundaries: Vec<(usize, usize)> = window_ranges(plan, cfg)
        .iter()
        .enumerate()
        .map(|(ci, (range, _))| (ci, range.start))
        .collect();
    boundaries.sort_by_key(|&(_, start)| start);

    let mut warmer = FunctionalWarmer::new(core, kind.build());
    let mut checkpoints: Vec<Option<FunctionalWarmer<AnyPredictor>>> =
        (0..plan.clusters.len()).map(|_| None).collect();
    let mut cursor = 0usize;
    for (ci, start) in boundaries {
        warmer.replay(&trace.uops[cursor..start]);
        cursor = start;
        checkpoints[ci] = Some(warmer.clone());
    }
    WarmSet {
        checkpoints: checkpoints
            .into_iter()
            .map(|c| c.expect("every cluster checkpointed"))
            .collect(),
        warmed_uops: cursor as u64,
    }
}

/// The measurement half of a sampled run: simulates each cluster's
/// representative window in detail — seeded from its [`WarmSet`]
/// checkpoint, ramped with the short detailed warm-up — across the worker
/// pool, and [`project`]s full-trace stats. Cheap relative to building
/// `warm`: only `clusters × (warmup + interval)` uops are simulated.
///
/// Deterministic end to end: the plan and checkpoints are pure functions
/// of trace + config, each window simulation is single-threaded and
/// self-contained, and results are collected in cluster order — so the
/// same inputs yield a bit-identical [`SampledOutcome`] regardless of
/// thread scheduling (the audit crate enforces exactly this).
///
/// # Panics
///
/// Panics if `warm` was built for a different plan (checkpoint count
/// mismatch).
pub fn run_sampled_with(
    trace: &Trace,
    plan: &ClusterPlan,
    warm: &WarmSet,
    core: &CoreConfig,
    cfg: &SamplingConfig,
) -> SampledOutcome {
    assert_eq!(
        warm.checkpoints.len(),
        plan.clusters.len(),
        "warm set does not match the plan"
    );
    let cells = window_ranges(plan, cfg);
    let runs = parallel_map(&cells, |ci, (range, warmup)| {
        let sub = slice(trace, range.clone());
        let warmer = &warm.checkpoints[ci];
        let mut pred = warmer.predictor().clone();
        let mut sim = Simulator::new(&sub, core, &mut pred);
        sim.seed_from_warmer(warmer);
        let stats = sim.run_measured(*warmup);
        (stats, range.len() as u64)
    });
    let simulated_uops = runs.iter().map(|(_, n)| n).sum();
    let measurements: Vec<SimStats> = runs.iter().map(|(s, _)| s.clone()).collect();
    let measured: Vec<u64> = runs.iter().map(|(s, _)| s.committed_uops).collect();
    let projected = project(plan, &measurements, &measured);
    SampledOutcome {
        projected,
        plan: plan.clone(),
        simulated_uops,
        warmed_uops: warm.warmed_uops,
        represented_uops: trace.len() as u64,
    }
}

/// Runs the full sampled pipeline for one `(trace, predictor, core)` cell:
/// [`plan`] the clusters, build the [`warm_checkpoints`], and measure +
/// project with [`run_sampled_with`]. One-shot convenience — callers that
/// reuse a trace across predictors or configurations should hold on to the
/// plan and warm set instead (as the bench harness does).
pub fn run_sampled(
    trace: &Trace,
    kind: PredictorKind,
    core: &CoreConfig,
    cfg: &SamplingConfig,
) -> SampledOutcome {
    let plan = plan(trace, cfg);
    let warm = warm_checkpoints(trace, &plan, kind, core, cfg);
    run_sampled_with(trace, &plan, &warm, core, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot_workloads::{generate, spec};

    fn small_cfg() -> SamplingConfig {
        SamplingConfig {
            interval_uops: 2_000,
            clusters: 4,
            warmup_uops: 1_000,
            ..SamplingConfig::default()
        }
    }

    fn trace(name: &str, uops: usize) -> Trace {
        let profile = spec::profile(name).expect("known benchmark");
        generate(&profile, 2025, uops)
    }

    #[test]
    fn plan_partitions_intervals_and_weights_cover_the_trace() {
        // The generator rounds the requested length up to whole pattern
        // repetitions, so derive expectations from the actual length.
        let t = trace("perlbench2", 21_000);
        let n_intervals = t.len().div_ceil(2_000);
        let p = plan(&t, &small_cfg());
        assert_eq!(p.intervals.len(), n_intervals);
        assert_eq!(p.assignments.len(), n_intervals);
        assert!(p.clusters.len() <= 4);
        let total: u64 = p.clusters.iter().map(|c| c.weight_uops).sum();
        assert_eq!(total, t.len() as u64);
        let mut seen = vec![false; p.intervals.len()];
        for (c, cluster) in p.clusters.iter().enumerate() {
            assert!(cluster.members.contains(&cluster.representative));
            assert!(cluster.members.windows(2).all(|w| w[0] < w[1]));
            for &m in &cluster.members {
                assert_eq!(p.assignments[m], c as u32);
                assert!(!seen[m], "interval {m} in two clusters");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every interval clustered");
    }

    // Satellite property (a): intervals with identical contents get
    // bit-identical fingerprints and land in the same cluster.
    #[test]
    fn identical_intervals_share_a_cluster() {
        let t = trace("mcf", 4_000);
        // Tile the same 2k-uop block four times: intervals 0..4 are
        // literally identical.
        let mut uops = Vec::new();
        for _ in 0..4 {
            uops.extend_from_slice(&t.uops[..2_000]);
        }
        let tiled = Trace::new("tiled".to_string(), uops);
        let cfg = SamplingConfig {
            clusters: 2,
            ..small_cfg()
        };
        let fps: Vec<_> = intervals(tiled.len(), cfg.interval_uops)
            .iter()
            .map(|r| crate::fingerprint(&tiled.uops[r.clone()]))
            .collect();
        for fp in &fps[1..] {
            assert_eq!(fp, &fps[0]);
        }
        let p = plan(&tiled, &cfg);
        assert!(p.assignments.iter().all(|&a| a == p.assignments[0]));
    }

    // Satellite property (b): projecting the per-interval deltas of ONE
    // full run through the production `project` path, with every interval
    // its own cluster and weight == measurement, reproduces that run's
    // aggregate stats bit-for-bit (`SimStats` derives `PartialEq` over
    // every counter).
    #[test]
    fn projection_with_k_equal_n_is_exact() {
        let t = trace("perlbench2", 10_500);
        let core = CoreConfig::golden_cove();
        let cfg = SamplingConfig {
            interval_uops: 2_000,
            clusters: usize::MAX, // identity clustering
            ..small_cfg()
        };
        let p = plan(&t, &cfg);
        assert_eq!(p.clusters.len(), p.intervals.len());

        let mut pred = PredictorKind::Mascot.build();
        let full = Simulator::new(&t, &core, &mut pred).run();
        let mut pred2 = PredictorKind::Mascot.build();
        let deltas = Simulator::new(&t, &core, &mut pred2).run_interval_deltas(2_000);
        assert_eq!(deltas.len(), p.clusters.len());

        let measured: Vec<u64> = deltas.iter().map(|d| d.committed_uops).collect();
        // weight == measurement for every cluster, so scaling is ×1.0.
        for (c, &m) in p.clusters.iter().zip(&measured) {
            assert_eq!(c.weight_uops, m, "every uop commits");
        }
        let projected = project(&p, &deltas, &measured);
        assert_eq!(projected, full);
    }

    // Satellite property (c): the whole sampled pipeline is bit-stable
    // across repeated runs (thread scheduling must not leak in).
    #[test]
    fn sampled_run_is_deterministic() {
        let t = trace("xalancbmk", 16_000);
        let core = CoreConfig::golden_cove();
        let cfg = small_cfg();
        let a = run_sampled(&t, PredictorKind::Mascot, &core, &cfg);
        let b = run_sampled(&t, PredictorKind::Mascot, &core, &cfg);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.projected, b.projected);
        assert_eq!(a.simulated_uops, b.simulated_uops);
    }

    #[test]
    fn sampling_simulates_fewer_uops_than_it_represents() {
        let t = trace("mcf", 40_000);
        let cfg = small_cfg();
        let out = run_sampled(&t, PredictorKind::StoreSets, &CoreConfig::golden_cove(), &cfg);
        assert_eq!(out.represented_uops, t.len() as u64);
        assert!(
            out.simulated_uops < out.represented_uops,
            "simulated {} of {}",
            out.simulated_uops,
            out.represented_uops
        );
        // Projection should land in a plausible neighbourhood of the full
        // run (loose sanity bound; the bench gate enforces the real one).
        let mut pred = PredictorKind::StoreSets.build();
        let full = Simulator::new(&t, &CoreConfig::golden_cove(), &mut pred).run();
        let err = mascot_stats::projection::relative_error(out.projected.ipc(), full.ipc());
        assert!(err.abs() < 0.25, "projected IPC off by {err:+.3}");
    }
}
