//! # mascot-sampling — cluster-and-project sampled simulation
//!
//! Simulating a trace end to end costs wall-clock proportional to its
//! length; every evaluation axis in this repository (figures, ablations,
//! adversarial sweeps, snapshot differentials) is bottlenecked by it. The
//! Memory Access Vectors line of work (PAPERS.md) shows that *sampled* CPU
//! simulation stays faithful when the sampled intervals are chosen by
//! memory-access behaviour rather than position in time. This crate
//! applies that recipe to the MASCOT substrate (DESIGN.md §13):
//!
//! 1. **Slice** the trace into fixed-size intervals
//!    ([`mascot_workloads::intervals`]).
//! 2. **Fingerprint** each interval with a memory-access-vector signature
//!    ([`fingerprint`]): log2 store-distance histogram, alias and
//!    dependence-class rates, load/store/branch mix, branch entropy,
//!    data footprint.
//! 3. **Cluster** the fingerprints with a seeded, deterministic k-means
//!    ([`kmeans`]) — same trace and seed always produce bit-identical
//!    assignments.
//! 4. **Simulate** one representative interval per cluster, each primed by
//!    a warm-up prefix, in parallel across worker threads ([`pool`], the
//!    same scoped pool the bench harness runs suites on).
//! 5. **Project** full-trace [`mascot_sim::SimStats`] as cluster-weighted
//!    sums ([`pipeline::project`]), with error bars against occasional
//!    full reference runs ([`mascot_stats::projection`]).
//!
//! ```no_run
//! use mascot_predictors::PredictorKind;
//! use mascot_sampling::{run_sampled, SamplingConfig};
//! use mascot_sim::CoreConfig;
//! use mascot_workloads::{generate, spec};
//!
//! let profile = spec::profile("perlbench2").expect("known benchmark");
//! let trace = generate(&profile, 2025, 1_500_000);
//! let out = run_sampled(
//!     &trace,
//!     PredictorKind::Mascot,
//!     &CoreConfig::golden_cove(),
//!     &SamplingConfig::default(),
//! );
//! println!(
//!     "projected IPC {:.3} from {} of {} uops",
//!     out.projected.ipc(),
//!     out.simulated_uops,
//!     trace.len()
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fingerprint;
pub mod kmeans;
pub mod pipeline;
pub mod pool;

pub use fingerprint::{fingerprint, Fingerprint, FINGERPRINT_DIMS};
pub use kmeans::{kmeans, KmeansResult};
pub use pipeline::{
    plan, run_sampled, run_sampled_with, warm_checkpoints, Cluster, ClusterPlan, SampledOutcome,
    SamplingConfig, WarmSet,
};
pub use pool::parallel_map;
