//! A minimal scoped-thread worker pool.
//!
//! Both the sampling pipeline (one simulation per cluster representative)
//! and the bench harness (one simulation per suite cell) need the same
//! thing: run N independent jobs on however many cores exist, collect
//! results *in input order*, and propagate panics. `std::thread::scope`
//! gives us that without any dependency: workers claim job indices from a
//! shared atomic counter and write results into per-job slots, so the
//! output order is deterministic regardless of which worker ran what.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item of `items` on a scoped worker pool and
/// returns the results in input order. `f` receives `(index, &item)`.
///
/// Spawns `min(available_parallelism, items.len())` workers (at least
/// one); on a single-core host this degrades to an in-order sequential
/// loop with no thread overhead beyond the one spawn. A panic in any job
/// propagates out of the scope and unwinds the caller.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len())
        .max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items = vec![(); 257];
        let out = parallel_map(&items, |i, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    // `std::thread::scope` repackages a worker panic as its own, so the
    // observable message is the scope's, not the job's — what matters is
    // that the caller unwinds at all instead of losing the result.
    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn job_panics_propagate() {
        let items = vec![0u64, 1, 2];
        let _ = parallel_map(&items, |_, &x| {
            if x == 1 {
                panic!("job failed");
            }
            x
        });
    }
}
