//! Memory-access-vector fingerprints (DESIGN.md §13).
//!
//! An interval's fingerprint is a fixed-length vector of *static* trace
//! features — computable in one linear scan, no simulation — chosen to
//! separate the behaviours that drive MDP/SMB predictor performance: how
//! often loads alias in-flight stores, at what store distance, under how
//! much branch noise, and against how large a data footprint. Identical
//! interval contents produce bit-identical fingerprints (pure integer
//! accumulation followed by the same float normalisation), which is what
//! makes the downstream clustering reproducible.

use std::collections::BTreeMap;

use mascot_sim::{BypassClass, Uop, UopKind};

/// Number of log2 store-distance histogram buckets: distance 1, 2–3, 4–7,
/// …, 64–127, and a final ≥128 bucket (beyond every predictor's
/// 127-distance window).
pub const DISTANCE_BUCKETS: usize = 8;

/// Fingerprint vector length. Layout (see [`fingerprint`]):
/// load/store/branch mix (3), alias rate (1), Fig. 2 class rates (4),
/// log2 store-distance histogram ([`DISTANCE_BUCKETS`]), branch entropy
/// (1), data-footprint scale (1).
pub const FINGERPRINT_DIMS: usize = 3 + 1 + 4 + DISTANCE_BUCKETS + 1 + 1;

/// A memory-access-vector signature for one trace interval. All components
/// are normalised rates in `[0, 1]`, so unweighted Euclidean distance in
/// [`crate::kmeans`] treats every axis comparably.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fingerprint(pub [f64; FINGERPRINT_DIMS]);

impl Fingerprint {
    /// Squared Euclidean distance to another fingerprint.
    pub fn dist2(&self, other: &Fingerprint) -> f64 {
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

/// Binary entropy of a taken-rate, in bits (0 for p ∈ {0, 1}, 1 at 0.5).
fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
    }
}

/// log2 bucket index for a ground-truth store distance (≥ 1).
fn distance_bucket(distance: u32) -> usize {
    (31 - u32::leading_zeros(distance.max(1)) as usize).min(DISTANCE_BUCKETS - 1)
}

/// Computes the memory-access-vector fingerprint of `uops` (one interval
/// of a trace). Deterministic: the same slice always yields bit-identical
/// output — per-PC branch statistics are accumulated in a [`BTreeMap`], so
/// even the float summation order is fixed.
pub fn fingerprint(uops: &[Uop]) -> Fingerprint {
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut branches = 0u64;
    let mut aliased = 0u64;
    let mut classes = [0u64; 4];
    let mut dist_hist = [0u64; DISTANCE_BUCKETS];
    // pc → (taken, total) for conditional-branch entropy.
    let mut branch_stats: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    // 64-byte cache lines touched by loads and stores; collected flat and
    // sort+dedup'd once at the end — far cheaper than per-access tree
    // inserts, with the identical (order-independent) distinct count.
    let mut lines: Vec<u64> = Vec::new();

    for uop in uops {
        match uop.kind {
            UopKind::Alu => {}
            UopKind::Load { addr, dep, .. } => {
                loads += 1;
                lines.push(addr >> 6);
                if let Some(dep) = dep {
                    aliased += 1;
                    classes[match dep.class {
                        BypassClass::DirectBypass => 0,
                        BypassClass::NoOffset => 1,
                        BypassClass::Offset => 2,
                        BypassClass::MdpOnly => 3,
                    }] += 1;
                    dist_hist[distance_bucket(dep.distance)] += 1;
                }
            }
            UopKind::Store { addr, .. } => {
                stores += 1;
                lines.push(addr >> 6);
            }
            UopKind::Branch { taken, .. } => {
                branches += 1;
                let e = branch_stats.entry(uop.pc).or_insert((0, 0));
                e.0 += u64::from(taken);
                e.1 += 1;
            }
        }
    }

    let rate = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    let total = uops.len() as u64;

    let mut v = [0.0f64; FINGERPRINT_DIMS];
    v[0] = rate(loads, total);
    v[1] = rate(stores, total);
    v[2] = rate(branches, total);
    v[3] = rate(aliased, loads);
    for (i, &c) in classes.iter().enumerate() {
        v[4 + i] = rate(c, loads);
    }
    for (i, &d) in dist_hist.iter().enumerate() {
        v[8 + i] = rate(d, loads);
    }
    // Branch-count-weighted mean per-PC entropy: high when branches are
    // coin-flips, low when each static branch is biased or patterned.
    v[8 + DISTANCE_BUCKETS] = branch_stats
        .values()
        .map(|&(taken, n)| rate(n, branches) * binary_entropy(rate(taken, n)))
        .sum();
    // Data footprint on a log scale, normalised so ~1M distinct lines ≈ 1.
    lines.sort_unstable();
    lines.dedup();
    v[9 + DISTANCE_BUCKETS] = ((1 + lines.len()) as f64).log2() / 20.0;
    Fingerprint(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot_sim::TraceDep;

    fn pattern() -> Vec<Uop> {
        let dep = TraceDep {
            distance: 1,
            class: BypassClass::DirectBypass,
            store_pc: 0x10,
            branches_between: 0,
        };
        vec![
            Uop::store(0x10, 0x1000, 8, None, Some(1)),
            Uop::load(0x14, 0x1000, 8, None, 2, Some(dep)),
            Uop::branch(0x18, true, 0x10, None),
            Uop::alu(0x1c, [Some(2), None], Some(3), 1),
            Uop::load(0x20, 0x2000, 8, None, 4, None),
        ]
    }

    #[test]
    fn identical_slices_fingerprint_identically() {
        let a = fingerprint(&pattern());
        let b = fingerprint(&pattern());
        assert_eq!(a, b);
        // Bit-identical, not merely approximately equal.
        for (x, y) in a.0.iter().zip(&b.0) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn rates_reflect_the_mix() {
        let fp = fingerprint(&pattern());
        assert!((fp.0[0] - 0.4).abs() < 1e-12, "2 loads of 5 uops");
        assert!((fp.0[1] - 0.2).abs() < 1e-12, "1 store of 5 uops");
        assert!((fp.0[3] - 0.5).abs() < 1e-12, "1 of 2 loads aliased");
        assert!((fp.0[4] - 0.5).abs() < 1e-12, "the alias is DirectBypass");
        assert!((fp.0[8] - 0.5).abs() < 1e-12, "distance 1 bucket");
        // Always-taken branch: zero entropy.
        assert_eq!(fp.0[8 + DISTANCE_BUCKETS], 0.0);
    }

    #[test]
    fn distance_buckets_are_log2() {
        assert_eq!(distance_bucket(1), 0);
        assert_eq!(distance_bucket(2), 1);
        assert_eq!(distance_bucket(3), 1);
        assert_eq!(distance_bucket(4), 2);
        assert_eq!(distance_bucket(127), 6);
        assert_eq!(distance_bucket(128), 7);
        assert_eq!(distance_bucket(u32::MAX), 7);
    }

    #[test]
    fn coin_flip_branches_score_full_entropy() {
        let mut uops = Vec::new();
        for i in 0..100u64 {
            uops.push(Uop::branch(0x40, i % 2 == 0, 0x10, None));
        }
        let fp = fingerprint(&uops);
        assert!((fp.0[8 + DISTANCE_BUCKETS] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_is_all_zero() {
        let fp = fingerprint(&[]);
        for (i, v) in fp.0.iter().enumerate() {
            assert_eq!(*v, 0.0, "dim {i}");
        }
    }
}
