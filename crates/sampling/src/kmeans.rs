//! Seeded, deterministic k-means over interval fingerprints.
//!
//! No external dependencies and no ambient randomness: initialisation is
//! k-means++ driven by a splitmix64 stream seeded by the caller (the same
//! generator family as `mascot-predictors`' randomized defense), distance
//! ties break toward the lowest index, and Lloyd iterations are strictly
//! sequential — so the same `(points, k, seed)` triple produces
//! bit-identical assignments and centroids on every run, on every host.
//! That determinism is load-bearing: the audit crate differentials a
//! sampled run against a rerun and requires equality to the bit.

use crate::fingerprint::{Fingerprint, FINGERPRINT_DIMS};

/// splitmix64 step: advances `state` and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the splitmix64 stream (53 mantissa bits).
fn next_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The outcome of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Per-point cluster index, `assignments[i] < centroids.len()`.
    pub assignments: Vec<u32>,
    /// Cluster centroids. Some may own no points (duplicate-heavy inputs);
    /// callers compact them away (see `pipeline::plan`).
    pub centroids: Vec<Fingerprint>,
    /// Lloyd iterations executed before convergence (or the cap).
    pub iterations: usize,
}

/// Index of the centroid nearest to `p` (ties toward the lowest index).
fn nearest(centroids: &[Fingerprint], p: &Fingerprint) -> u32 {
    let mut best = 0u32;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = p.dist2(centroid);
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    best
}

/// k-means++ initial centroids: the first is a uniform draw, each later
/// one is drawn with probability proportional to its squared distance from
/// the nearest centroid so far. Duplicate-heavy inputs can exhaust the
/// distance mass early; remaining centroids then repeat the first point,
/// which Lloyd leaves empty and the caller compacts away.
fn seed_centroids(points: &[Fingerprint], k: usize, state: &mut u64) -> Vec<Fingerprint> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[(splitmix64(state) % points.len() as u64) as usize]);
    let mut d2: Vec<f64> = points.iter().map(|p| p.dist2(&centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All residual mass is zero: every point coincides with some
            // centroid. Keep the draw count stable anyway.
            let _ = splitmix64(state);
            centroids[0]
        } else {
            let mut r = next_f64(state) * total;
            let mut idx = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if r < d {
                    idx = i;
                    break;
                }
                r -= d;
            }
            points[idx]
        };
        centroids.push(next);
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(p.dist2(&next));
        }
    }
    centroids
}

/// Clusters `points` into (at most) `k` groups. `k` is clamped to the
/// point count; `max_iters` bounds the Lloyd loop (convergence — an
/// iteration that changes no assignment — usually lands far earlier).
///
/// # Panics
///
/// Panics if `points` is empty or `k` is zero.
pub fn kmeans(points: &[Fingerprint], k: usize, seed: u64, max_iters: usize) -> KmeansResult {
    assert!(!points.is_empty(), "cannot cluster zero points");
    assert!(k > 0, "cluster count must be non-zero");
    let k = k.min(points.len());
    let mut state = seed ^ 0x6d61_7363_6f74_u64; // domain-separate from other users
    let mut centroids = seed_centroids(points, k, &mut state);
    let mut assignments: Vec<u32> = points.iter().map(|p| nearest(&centroids, p)).collect();

    let mut iterations = 0;
    while iterations < max_iters {
        iterations += 1;
        // Recompute centroids as member means; empty clusters keep their
        // previous centroid (they stay empty unless a later reassignment
        // moves mass toward them).
        let mut sums = vec![[0.0f64; FINGERPRINT_DIMS]; k];
        let mut counts = vec![0u64; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a as usize] += 1;
            for (s, v) in sums[a as usize].iter_mut().zip(&p.0) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let mut centroid = [0.0f64; FINGERPRINT_DIMS];
                for (dst, s) in centroid.iter_mut().zip(&sums[c]) {
                    *dst = s / counts[c] as f64;
                }
                centroids[c] = Fingerprint(centroid);
            }
        }
        let next: Vec<u32> = points.iter().map(|p| nearest(&centroids, p)).collect();
        if next == assignments {
            break;
        }
        assignments = next;
    }
    KmeansResult {
        assignments,
        centroids,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(bias: f64, jitter: f64) -> Fingerprint {
        let mut v = [0.0; FINGERPRINT_DIMS];
        v[0] = bias + jitter;
        v[3] = bias;
        Fingerprint(v)
    }

    #[test]
    fn separates_two_obvious_blobs() {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(point(0.1, i as f64 * 1e-3));
            points.push(point(0.9, i as f64 * 1e-3));
        }
        let r = kmeans(&points, 2, 42, 50);
        // Even indices all in one cluster, odd in the other.
        let a0 = r.assignments[0];
        let a1 = r.assignments[1];
        assert_ne!(a0, a1);
        for (i, &a) in r.assignments.iter().enumerate() {
            assert_eq!(a, if i % 2 == 0 { a0 } else { a1 }, "point {i}");
        }
    }

    #[test]
    fn fixed_seed_is_bit_stable_across_runs() {
        let points: Vec<Fingerprint> = (0..40)
            .map(|i| point((i % 7) as f64 / 7.0, (i % 3) as f64 * 1e-2))
            .collect();
        let a = kmeans(&points, 5, 2025, 50);
        let b = kmeans(&points, 5, 2025, 50);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.iterations, b.iterations);
        for (ca, cb) in a.centroids.iter().zip(&b.centroids) {
            for (x, y) in ca.0.iter().zip(&cb.0) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // A different seed is allowed to (and here does) shuffle cluster
        // ids; determinism is per-seed.
        let c = kmeans(&points, 5, 2026, 50);
        assert_eq!(c.assignments.len(), a.assignments.len());
    }

    #[test]
    fn identical_points_land_in_one_cluster() {
        let points = vec![point(0.5, 0.0); 12];
        let r = kmeans(&points, 4, 7, 50);
        let first = r.assignments[0];
        assert!(r.assignments.iter().all(|&a| a == first));
    }

    #[test]
    fn k_clamps_to_point_count() {
        let points = vec![point(0.1, 0.0), point(0.9, 0.0)];
        let r = kmeans(&points, 16, 1, 50);
        assert_eq!(r.centroids.len(), 2);
        assert_ne!(r.assignments[0], r.assignments[1]);
    }
}
