//! The MASCOT predictor snapshot format.
//!
//! A versioned, length-prefixed, checksummed little-endian container in the
//! same codec discipline as the serve wire protocol (`mascot_serve::wire`)
//! and the trace codec (`mascot_sim::codec`):
//!
//! ```text
//! magic "MSNP" (4) | version (1) | label_len u16 | label (UTF-8)
//! | created_unix_s u64 | restarts u64
//! | shard_count u32 | shard_count x (len u32 | payload)
//! | fnv1a64 checksum u64 over every preceding byte
//! ```
//!
//! Each shard payload is an opaque predictor-state blob produced by the
//! predictor's own `snap_encode` (the payload layout is private to the type
//! that owns the fields — this crate only frames, checksums and versions).
//!
//! Decoding is **strict and fail-closed**: a bad magic, an unknown version,
//! a truncated buffer, trailing bytes, an out-of-range length or a checksum
//! mismatch all return a descriptive [`SnapError`]; no partially decoded
//! state is ever produced. A corrupt snapshot must cold-start the predictor,
//! never warm-start it with garbage.
//!
//! This crate is dependency-free so that every layer (stats counters, core
//! tables, baseline predictors, the serve daemon) can share one reader and
//! writer without cycles.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Container magic.
pub const MAGIC: [u8; 4] = *b"MSNP";
/// Container format version.
pub const VERSION: u8 = 1;
/// Upper bound on one shard payload (64 MiB), enforced before allocation.
pub const MAX_SHARD_PAYLOAD: usize = 1 << 26;
/// Upper bound on shards in one container.
pub const MAX_SHARDS: usize = 1024;
/// Upper bound on the predictor-kind label length.
pub const MAX_LABEL: usize = 256;

/// Errors produced while decoding a snapshot. Every variant is terminal:
/// the caller must discard the snapshot and cold-start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer does not start with the `MSNP` magic.
    BadMagic,
    /// The container version is not supported by this build.
    BadVersion(u8),
    /// The trailing checksum does not match the content.
    BadChecksum {
        /// Checksum recorded in the snapshot.
        stored: u64,
        /// Checksum recomputed from the content.
        computed: u64,
    },
    /// The buffer ended before the named field.
    Truncated(&'static str),
    /// A field held an out-of-range or internally inconsistent value.
    Corrupt(&'static str),
    /// A length prefix exceeds its hard limit (hostile or damaged header).
    TooLarge(&'static str),
    /// Decoding finished with unconsumed bytes (length lies).
    TrailingBytes(usize),
    /// The snapshot was taken by a different predictor kind than the one
    /// restoring it.
    KindMismatch {
        /// Label recorded in the snapshot.
        stored: String,
        /// Label of the predictor attempting the restore.
        expected: String,
    },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a mascot snapshot (bad magic)"),
            SnapError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapError::BadChecksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapError::Truncated(what) => write!(f, "snapshot truncated at {what}"),
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
            SnapError::TooLarge(what) => write!(f, "snapshot field exceeds limit: {what}"),
            SnapError::TrailingBytes(n) => write!(f, "snapshot has {n} trailing bytes"),
            SnapError::KindMismatch { stored, expected } => write!(
                f,
                "snapshot was taken by predictor {stored:?}, not {expected:?}"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

/// 64-bit FNV-1a over `bytes` — the container's integrity checksum. Not
/// cryptographic; it detects the truncations, bit flips and torn writes a
/// crash mid-checkpoint can produce.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Little-endian append-only writer for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a boolean as a single `0`/`1` byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn len_bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.bytes(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Strict little-endian reader for snapshot payloads. Every accessor fails
/// on a short buffer; [`SnapReader::finish`] fails on trailing bytes, so a
/// decoder that completes has consumed exactly the payload it was given.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapError::Truncated(what))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of buffer.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, SnapError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a one-byte boolean, rejecting anything other than `0` or `1`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of buffer, [`SnapError::Corrupt`]
    /// when the byte is not a valid boolean.
    pub fn bool(&mut self, what: &'static str) -> Result<bool, SnapError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt(what)),
        }
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of buffer.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of buffer.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of buffer.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u32` length prefix, then that many bytes. The claimed
    /// length is validated against both `limit` and the bytes actually
    /// remaining, so a hostile prefix can never drive a large allocation.
    ///
    /// # Errors
    ///
    /// [`SnapError::TooLarge`] past `limit`, [`SnapError::Truncated`] when
    /// the buffer is shorter than claimed.
    pub fn len_bytes(&mut self, limit: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        let len = self.u32(what)? as usize;
        if len > limit {
            return Err(SnapError::TooLarge(what));
        }
        self.take(len, what)
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`SnapError::TrailingBytes`] when bytes remain.
    pub fn finish(self) -> Result<(), SnapError> {
        match self.buf.len() - self.pos {
            0 => Ok(()),
            n => Err(SnapError::TrailingBytes(n)),
        }
    }
}

/// A decoded snapshot container: metadata plus one opaque state payload per
/// shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFile {
    /// Registry label of the predictor kind that produced the payloads.
    pub kind_label: String,
    /// Wall-clock seconds since the Unix epoch when the snapshot was taken
    /// (0 when the clock was unavailable).
    pub created_unix_s: u64,
    /// How many warm restarts preceded this snapshot (0 for the first
    /// process generation).
    pub restarts: u64,
    /// One opaque predictor-state payload per shard, indexed by shard id.
    pub shards: Vec<Vec<u8>>,
}

impl SnapshotFile {
    /// Encodes the container, appending the trailing checksum.
    ///
    /// # Panics
    ///
    /// Panics if the label or a shard payload exceeds its hard limit —
    /// those are producer bugs, not recoverable conditions.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.kind_label.len() <= MAX_LABEL, "label too long");
        assert!(self.shards.len() <= MAX_SHARDS, "too many shards");
        let mut w = SnapWriter::new();
        w.bytes(&MAGIC);
        w.u8(VERSION);
        w.u16(self.kind_label.len() as u16);
        w.bytes(self.kind_label.as_bytes());
        w.u64(self.created_unix_s);
        w.u64(self.restarts);
        w.u32(self.shards.len() as u32);
        for shard in &self.shards {
            assert!(shard.len() <= MAX_SHARD_PAYLOAD, "shard payload too large");
            w.len_bytes(shard);
        }
        let checksum = fnv1a64(&w.buf);
        w.u64(checksum);
        w.into_bytes()
    }

    /// Decodes and fully validates a container.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`]; the checksum is verified first so that every
    /// later field error implies real corruption rather than bit rot.
    pub fn decode(bytes: &[u8]) -> Result<SnapshotFile, SnapError> {
        if bytes.len() < MAGIC.len() + 1 + 8 {
            return Err(SnapError::Truncated("container header"));
        }
        if bytes[..4] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        if bytes[4] != VERSION {
            return Err(SnapError::BadVersion(bytes[4]));
        }
        let (content, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        let computed = fnv1a64(content);
        if stored != computed {
            return Err(SnapError::BadChecksum { stored, computed });
        }
        let mut r = SnapReader::new(&content[5..]);
        let label_len = usize::from(r.u16("label length")?);
        if label_len > MAX_LABEL {
            return Err(SnapError::TooLarge("kind label"));
        }
        let kind_label = std::str::from_utf8(r.take(label_len, "kind label")?)
            .map_err(|_| SnapError::Corrupt("kind label is not UTF-8"))?
            .to_string();
        let created_unix_s = r.u64("created timestamp")?;
        let restarts = r.u64("restart counter")?;
        let shard_count = r.u32("shard count")? as usize;
        if shard_count > MAX_SHARDS {
            return Err(SnapError::TooLarge("shard count"));
        }
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shards.push(r.len_bytes(MAX_SHARD_PAYLOAD, "shard payload")?.to_vec());
        }
        r.finish()?;
        Ok(SnapshotFile {
            kind_label,
            created_unix_s,
            restarts,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotFile {
        SnapshotFile {
            kind_label: "mascot".to_string(),
            created_unix_s: 1_754_000_000,
            restarts: 3,
            shards: vec![vec![1, 2, 3], Vec::new(), vec![0xff; 100]],
        }
    }

    #[test]
    fn container_roundtrip() {
        let file = sample();
        let bytes = file.encode();
        assert_eq!(SnapshotFile::decode(&bytes).unwrap(), file);
    }

    #[test]
    fn empty_container_roundtrip() {
        let file = SnapshotFile {
            kind_label: String::new(),
            created_unix_s: 0,
            restarts: 0,
            shards: Vec::new(),
        };
        let bytes = file.encode();
        assert_eq!(SnapshotFile::decode(&bytes).unwrap(), file);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(SnapshotFile::decode(&bytes), Err(SnapError::BadMagic));
        let mut bytes = sample().encode();
        bytes[4] = 99;
        assert_eq!(SnapshotFile::decode(&bytes), Err(SnapError::BadVersion(99)));
    }

    #[test]
    fn rejects_every_truncation_point() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                SnapshotFile::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn rejects_every_single_byte_flip() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                SnapshotFile::decode(&corrupt).is_err(),
                "flip at byte {i} must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        // Appending bytes invalidates the checksum position; re-seal to
        // test the TrailingBytes path specifically.
        let file = sample();
        let mut w = SnapWriter::new();
        w.bytes(&file.encode()[..file.encode().len() - 8]);
        w.u8(0); // smuggled extra byte before the checksum
        let checksum = fnv1a64(&w.buf);
        w.u64(checksum);
        assert!(matches!(
            SnapshotFile::decode(&w.into_bytes()),
            Err(SnapError::TrailingBytes(1))
        ));
    }

    #[test]
    fn reader_is_strict() {
        let mut w = SnapWriter::new();
        w.u32(7);
        w.u64(9);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u32("a").unwrap(), 7);
        assert_eq!(r.u64("b").unwrap(), 9);
        assert_eq!(r.u8("c"), Err(SnapError::Truncated("c")));
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u32("a").unwrap(), 7);
        assert!(matches!(r.finish(), Err(SnapError::TrailingBytes(8))));
    }

    #[test]
    fn len_bytes_rejects_hostile_prefix() {
        let mut w = SnapWriter::new();
        w.u32(u32::MAX); // claims 4 GiB
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.len_bytes(1 << 20, "blob"), Err(SnapError::TooLarge("blob")));
        // Claim within the limit but beyond the buffer: truncated.
        let mut w = SnapWriter::new();
        w.u32(100);
        w.bytes(&[0; 10]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.len_bytes(1 << 20, "blob"), Err(SnapError::Truncated("blob")));
    }

    #[test]
    fn checksum_is_fnv1a() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn errors_display_a_cause() {
        for (err, needle) in [
            (SnapError::BadMagic, "magic"),
            (SnapError::BadVersion(9), "9"),
            (
                SnapError::BadChecksum {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (SnapError::Truncated("history"), "history"),
            (SnapError::Corrupt("counter"), "counter"),
            (SnapError::TooLarge("label"), "label"),
            (SnapError::TrailingBytes(4), "4"),
            (
                SnapError::KindMismatch {
                    stored: "phast".into(),
                    expected: "mascot".into(),
                },
                "phast",
            ),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
