//! Criterion benchmark: end-to-end simulator throughput (simulated µops per
//! wall-clock second) with the MASCOT predictor attached.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mascot_bench::PredictorKind;
use mascot_sim::{simulate, CoreConfig};
use mascot_workloads::{generate, spec};

fn bench_simulator(c: &mut Criterion) {
    let core = CoreConfig::golden_cove();
    let uops = 40_000usize;
    let mut group = c.benchmark_group("simulate_40k_uops");
    group.sample_size(10);
    for name in ["perlbench2", "bwaves", "mcf"] {
        let profile = spec::profile(name).expect("known benchmark");
        let trace = generate(&profile, 2025, uops);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = PredictorKind::Mascot.build();
                simulate(&trace, &core, &mut p)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
