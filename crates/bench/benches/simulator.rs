//! Std-only benchmark: end-to-end simulator throughput (simulated µops per
//! wall-clock second) with the MASCOT predictor attached.
//!
//! Run with `cargo bench --bench simulator`. For the committed perf
//! trajectory, use the `throughput` binary instead, which writes
//! `BENCH_sim_throughput.json`.

use std::time::Instant;

use mascot_bench::PredictorKind;
use mascot_sim::{simulate, CoreConfig};
use mascot_workloads::{generate, spec};

fn main() {
    let core = CoreConfig::golden_cove();
    let uops = 40_000usize;
    let iters = 5u32;
    println!("simulate_40k_uops ({iters} iterations per benchmark)");
    for name in ["perlbench2", "bwaves", "mcf"] {
        let profile = spec::profile(name).expect("known benchmark");
        let trace = generate(&profile, 2025, uops);
        // Warm-up run.
        let mut p = PredictorKind::Mascot.build();
        simulate(&trace, &core, &mut p);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let mut p = PredictorKind::Mascot.build();
            let t0 = Instant::now();
            let stats = simulate(&trace, &core, &mut p);
            let dt = t0.elapsed().as_secs_f64();
            assert!(stats.committed_uops >= uops as u64);
            best = best.min(dt);
        }
        println!(
            "  {name:<12} {:>8.1} ms  {:>8.2} Muops/s",
            best * 1e3,
            trace.len() as f64 / best / 1e6
        );
    }
}
