//! Criterion microbenchmarks: predict+train throughput of each predictor.
//!
//! These measure the software model's cost (relevant when running the full
//! experiment sweep), not hardware latency.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mascot::{BypassClass, LoadOutcome, MemDepPredictor, ObservedDependence, StoreDistance};
use mascot_bench::PredictorKind;
use mascot_predictors::AnyPredictor;

/// A deterministic stream of (pc, outcome) pairs with realistic mix.
fn training_stream(n: usize) -> Vec<(u64, LoadOutcome)> {
    (0..n)
        .map(|i| {
            let pc = 0x400_000 + ((i * 37) % 256) as u64 * 4;
            let outcome = if i % 3 == 0 {
                LoadOutcome::dependent(ObservedDependence {
                    distance: StoreDistance::new(1 + (i as u32 % 9)).unwrap(),
                    class: if i % 2 == 0 {
                        BypassClass::DirectBypass
                    } else {
                        BypassClass::MdpOnly
                    },
                    store_pc: 0x500_000 + ((i * 13) % 64) as u64 * 4,
                    branches_between: (i % 5) as u32,
                })
            } else {
                LoadOutcome::independent()
            };
            (pc, outcome)
        })
        .collect()
}

fn drive(p: &mut AnyPredictor, stream: &[(u64, LoadOutcome)]) {
    for (i, (pc, outcome)) in stream.iter().enumerate() {
        let (pred, meta) = p.predict(*pc, i as u64, None);
        p.train(*pc, meta, pred, outcome);
        if i % 4 == 0 {
            p.on_branch(&mascot::BranchEvent {
                pc: 0x600_000 + (i % 32) as u64 * 4,
                kind: mascot::BranchKind::Conditional,
                taken: i % 2 == 0,
                target: 0x600_100,
            });
        }
    }
}

fn bench_predictors(c: &mut Criterion) {
    let stream = training_stream(4096);
    let mut group = c.benchmark_group("predict_train_4k_loads");
    for kind in [
        PredictorKind::Mascot,
        PredictorKind::MascotOpt(4),
        PredictorKind::Phast,
        PredictorKind::NoSq,
        PredictorKind::StoreSets,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || kind.build(),
                |mut p| drive(&mut p, &stream),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
