//! Std-only microbenchmarks: predict+train throughput of each predictor.
//!
//! These measure the software model's cost (relevant when running the full
//! experiment sweep), not hardware latency. Run with
//! `cargo bench --bench predictors`.

use std::time::Instant;

use mascot::{BypassClass, LoadOutcome, MemDepPredictor, ObservedDependence, StoreDistance};
use mascot_bench::PredictorKind;
use mascot_predictors::AnyPredictor;

/// A deterministic stream of (pc, outcome) pairs with realistic mix.
fn training_stream(n: usize) -> Vec<(u64, LoadOutcome)> {
    (0..n)
        .map(|i| {
            let pc = 0x400_000 + ((i * 37) % 256) as u64 * 4;
            let outcome = if i % 3 == 0 {
                LoadOutcome::dependent(ObservedDependence {
                    distance: StoreDistance::new(1 + (i as u32 % 9)).unwrap(),
                    class: if i % 2 == 0 {
                        BypassClass::DirectBypass
                    } else {
                        BypassClass::MdpOnly
                    },
                    store_pc: 0x500_000 + ((i * 13) % 64) as u64 * 4,
                    branches_between: (i % 5) as u32,
                })
            } else {
                LoadOutcome::independent()
            };
            (pc, outcome)
        })
        .collect()
}

fn drive(p: &mut AnyPredictor, stream: &[(u64, LoadOutcome)]) {
    for (i, (pc, outcome)) in stream.iter().enumerate() {
        let (pred, meta) = p.predict(*pc, i as u64, None);
        p.train(*pc, meta, pred, outcome);
        if i % 4 == 0 {
            p.on_branch(&mascot::BranchEvent {
                pc: 0x600_000 + (i % 32) as u64 * 4,
                kind: mascot::BranchKind::Conditional,
                taken: i % 2 == 0,
                target: 0x600_100,
            });
        }
    }
}

fn main() {
    let stream = training_stream(4096);
    let iters = 20u32;
    println!("predict_train_4k_loads ({iters} iterations per predictor)");
    for kind in [
        PredictorKind::Mascot,
        PredictorKind::MascotOpt(4),
        PredictorKind::Phast,
        PredictorKind::NoSq,
        PredictorKind::StoreSets,
    ] {
        // Warm-up run.
        drive(&mut kind.build(), &stream);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let mut p = kind.build();
            let t0 = Instant::now();
            drive(&mut p, &stream);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        println!(
            "  {:<18} {:>8.1} µs  {:>8.2} Mloads/s",
            kind.label(),
            best * 1e6,
            stream.len() as f64 / best / 1e6
        );
    }
}
