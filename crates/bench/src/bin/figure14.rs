//! Fig. 14: per-slot F1 scores, ranked within each MASCOT table (§IV-F).
//!
//! Runs MASCOT with tuning instrumentation across the suite, averages the
//! ranked F1 curves over benchmarks, and prints selected rank percentiles
//! per table. The paper reads the curves as: table 1's worst slots are still
//! useful (it could be larger), tables 5–8 have mostly idle slots (they can
//! shrink) — the observation behind MASCOT-OPT's sizing.

use mascot::config::MascotConfig;
use mascot::predictor::Mascot;
use mascot_bench::{run_with_predictor, trace_uops_from_env, TextTable};
use mascot_predictors::AnyPredictor;
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

/// Tuning period in cycles: the paper uses 1 M cycles on 100 M-instruction
/// SimPoints; we scale to our shorter traces.
const TUNING_PERIOD: u64 = 25_000;

fn main() {
    let profiles = spec::all_profiles();
    let core = CoreConfig::golden_cove();
    let uops = trace_uops_from_env();
    let mut curves: Vec<Vec<f64>> = Vec::new(); // per table, rank-averaged
    let mut n_runs = 0.0;
    for profile in &profiles {
        let cfg = MascotConfig::default().with_tuning();
        let mut p = AnyPredictor::Mascot(Mascot::new(cfg).expect("valid preset"));
        let _ = run_with_predictor(
            profile,
            &mut p,
            &core,
            uops,
            mascot_bench::DEFAULT_SEED,
            Some(TUNING_PERIOD),
        );
        let m = p.as_mascot().expect("mascot predictor");
        let tuning = m.tuning().expect("tuning enabled");
        let ranked = tuning.ranked_f1_all();
        if curves.is_empty() {
            curves = vec![vec![0.0; ranked[0].len()]; ranked.len()];
        }
        for (acc, r) in curves.iter_mut().zip(&ranked) {
            for (a, v) in acc.iter_mut().zip(r) {
                *a += v;
            }
        }
        n_runs += 1.0;
    }
    for c in &mut curves {
        for v in c.iter_mut() {
            *v /= n_runs;
        }
    }
    let ranks = [0usize, 15, 31, 63, 127, 255, 383, 511];
    let mut t = TextTable::new([
        "table", "rank 1", "rank 16", "rank 32", "rank 64", "rank 128", "rank 256", "rank 384",
        "rank 512",
    ]);
    for (i, c) in curves.iter().enumerate() {
        let mut cells = vec![format!("T{} (h{})", i + 1, [0, 2, 4, 8, 16, 32, 64, 128][i])];
        cells.extend(ranks.iter().map(|&r| {
            c.get(r).map_or("-".to_string(), |v| format!("{v:.3}"))
        }));
        t.row(cells);
    }
    println!("== Fig. 14 — averaged ranked per-slot F1 per table ==");
    println!("{}", t.render());

    // The §IV-F sizing readout: fraction of slots with any usefulness.
    let mut u = TextTable::new(["table", "slots with avg F1 >= 0.1", "sizing implication"]);
    for (i, c) in curves.iter().enumerate() {
        let useful = c.iter().filter(|&&v| v >= 0.1).count();
        let frac = useful as f64 / c.len() as f64;
        let implication = if frac > 0.75 {
            "could be larger"
        } else if frac < 0.35 {
            "can shrink"
        } else {
            "about right"
        };
        u.row([
            format!("T{}", i + 1),
            format!("{useful}/{} ({:.0}%)", c.len(), frac * 100.0),
            implication.to_string(),
        ]);
    }
    println!("{}", u.render());
    println!("paper conclusion: grow table 1, halve tables 5-7, quarter table 8 -> MASCOT-OPT");
}
