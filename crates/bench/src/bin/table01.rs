//! Table I: system configuration.
//!
//! Prints the modelled Golden Cove (and Lion Cove) parameters so they can be
//! checked against the paper's Table I.

use mascot_bench::TextTable;
use mascot_sim::CoreConfig;

fn rows(t: &mut TextTable, c: &CoreConfig) {
    t.row(["Front-end width".into(), format!("{}-wide fetch and decode", c.fetch_width)]);
    t.row([
        "Back-end width".into(),
        format!(
            "{} execution ports ({} load + {} store + {} ALU) and {} commit width",
            c.load_ports + c.store_ports + c.alu_ports,
            c.load_ports,
            c.store_ports,
            c.alu_ports,
            c.commit_width
        ),
    ]);
    t.row([
        "ROB/IQ/LQ/SB".into(),
        format!("{}/{}/{}/{} entries", c.rob_entries, c.iq_entries, c.lq_entries, c.sb_entries),
    ]);
    t.row([
        "L1I (private)".into(),
        format!(
            "{}KB, {} ways, {}-cycle hit latency, {} MSHRs",
            c.l1i.size_bytes / 1024,
            c.l1i.ways,
            c.l1i.hit_latency,
            c.l1i.mshrs
        ),
    ]);
    t.row([
        "L1D (private)".into(),
        format!(
            "{}KB, {} ways, {}-cycle hit latency, {} MSHRs",
            c.l1d.size_bytes / 1024,
            c.l1d.ways,
            c.l1d.hit_latency,
            c.l1d.mshrs
        ),
    ]);
    t.row([
        "L1D prefetcher".into(),
        format!("IP-stride with a prefetch degree of {}", c.prefetch_degree),
    ]);
    t.row([
        "L2 (private)".into(),
        format!(
            "{:.2}MB, {} ways, {}-cycle hit latency, {} MSHRs",
            c.l2.size_bytes as f64 / (1024.0 * 1024.0),
            c.l2.ways,
            c.l2.hit_latency,
            c.l2.mshrs
        ),
    ]);
    t.row([
        "L3 (share)".into(),
        format!(
            "{}MB, {} ways, {}-cycle hit latency, {} MSHRs",
            c.l3.size_bytes / (1024 * 1024),
            c.l3.ways,
            c.l3.hit_latency,
            c.l3.mshrs
        ),
    ]);
    t.row([
        "Memory".into(),
        format!("{}-cycle access latency", c.memory_latency),
    ]);
}

fn main() {
    for core in [CoreConfig::golden_cove(), CoreConfig::lion_cove()] {
        let mut t = TextTable::new(["parameter", "value"]);
        rows(&mut t, &core);
        println!("== Table I — {} ==\n{}", core.name, t.render());
    }
}
