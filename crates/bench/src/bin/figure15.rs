//! Fig. 15: MASCOT-OPT and its tag-reduced variants — area vs IPC.
//!
//! Paper headline: MASCOT-OPT loses only 0.09 % IPC for a 16 % area saving;
//! reducing its tags by 4 bits loses 0.13 % total while shrinking to
//! 10.1 KiB (27.7 % smaller than the 14 KiB default), at the cost of a
//! 17.4 % rise in mispredictions.

use mascot_bench::{
    benchmarks, find, geomean_normalized_ipc, run_suite, table::count, trace_uops_from_env,
    PredictorKind, TextTable,
};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let profiles = spec::all_profiles();
    let kinds = [
        PredictorKind::PerfectMdp,
        PredictorKind::Mascot,
        PredictorKind::MascotOpt(0),
        PredictorKind::MascotOpt(2),
        PredictorKind::MascotOpt(4),
        PredictorKind::MascotOpt(6),
    ];
    let results = run_suite(
        &profiles,
        &kinds,
        &CoreConfig::golden_cove(),
        trace_uops_from_env(),
        mascot_bench::DEFAULT_SEED,
    );
    let benches = benchmarks(&results);
    let baseline = geomean_normalized_ipc(&results, &benches, "mascot", "perfect-mdp").unwrap();
    let base_mis: u64 = benches
        .iter()
        .map(|b| find(&results, b, "mascot").unwrap().stats.total_mispredictions())
        .sum();
    let mut t = TextTable::new([
        "configuration",
        "size (KiB)",
        "area vs 14 KiB",
        "IPC vs MASCOT",
        "mispredictions",
        "vs MASCOT",
    ]);
    for kind in &kinds[1..] {
        let label = kind.label();
        let gm = geomean_normalized_ipc(&results, &benches, &label, "perfect-mdp").unwrap();
        let mis: u64 = benches
            .iter()
            .map(|b| find(&results, b, &label).unwrap().stats.total_mispredictions())
            .sum();
        let kib = find(&results, &benches[0], &label).unwrap().storage_kib;
        t.row([
            label.clone().into_owned(),
            format!("{kib:.2}"),
            format!("{:+.1}%", (kib / 14.0 - 1.0) * 100.0),
            format!("{:+.3}%", (gm / baseline - 1.0) * 100.0),
            count(mis),
            format!("{:+.1}%", (mis as f64 / base_mis.max(1) as f64 - 1.0) * 100.0),
        ]);
    }
    println!("== Fig. 15 — MASCOT-OPT tag-size sweep ==");
    println!("{}", t.render());
    println!(
        "paper: OPT -0.09% IPC at 11.8 KiB; OPT(tag-4) -0.13% IPC at 10.1 KiB with +17.4% mispredictions"
    );
}
