//! Fig. 10: distribution of MASCOT's prediction and misprediction types
//! per benchmark.
//!
//! Left panel: fractions of loads predicted no-dependence / MDP / SMB (over
//! 80 % of predictions are "no dependence" in the paper). Right panel: the
//! misprediction mix (SMB mispredictions stay rare thanks to the saturated
//! confidence requirement; *mcf* is the outlier).

use mascot_bench::{run_suite, table::frac_pct, trace_uops_from_env, PredictorKind, TextTable};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let profiles = spec::all_profiles();
    let results = run_suite(
        &profiles,
        &[PredictorKind::Mascot],
        &CoreConfig::golden_cove(),
        trace_uops_from_env(),
        mascot_bench::DEFAULT_SEED,
    );
    let mut preds = TextTable::new(["benchmark", "no-dep", "mdp", "smb"]);
    let mut mis = TextTable::new([
        "benchmark",
        "missed dep",
        "false dep",
        "wrong store",
        "smb error",
        "total",
    ]);
    let mut agg = [0.0f64; 3];
    for r in &results {
        let s = &r.stats;
        let loads = (s.pred_no_dep + s.pred_mdp + s.pred_smb).max(1) as f64;
        let f = [
            s.pred_no_dep as f64 / loads,
            s.pred_mdp as f64 / loads,
            s.pred_smb as f64 / loads,
        ];
        for (a, v) in agg.iter_mut().zip(f) {
            *a += v;
        }
        preds.row([
            r.benchmark.clone(),
            frac_pct(f[0]),
            frac_pct(f[1]),
            frac_pct(f[2]),
        ]);
        let total = s.total_mispredictions().max(1) as f64;
        mis.row([
            r.benchmark.clone(),
            frac_pct(s.missed_dependencies as f64 / total),
            frac_pct(s.false_dependencies as f64 / total),
            frac_pct(s.wrong_store as f64 / total),
            frac_pct(s.smb_errors as f64 / total),
            s.total_mispredictions().to_string(),
        ]);
    }
    let n = results.len() as f64;
    preds.row([
        "MEAN".to_string(),
        frac_pct(agg[0] / n),
        frac_pct(agg[1] / n),
        frac_pct(agg[2] / n),
    ]);
    println!("== Fig. 10 (left) — MASCOT prediction types ==\n{}", preds.render());
    println!("paper: over 80% of all predictions are no-dependence\n");
    println!("== Fig. 10 (right) — MASCOT misprediction types ==\n{}", mis.render());
}
