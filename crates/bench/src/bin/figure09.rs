//! Fig. 9: MDP-only comparison — Store Sets, PHAST and MDP-only MASCOT,
//! normalised to perfect MDP.
//!
//! Paper headline: MASCOT-MDP out-performs Store Sets by 6.2 % and PHAST by
//! 0.4 %; on a few benchmarks imperfect predictors beat "perfect" MDP
//! because an occasional missed dependence resolves in time anyway.

use mascot_bench::{
    benchmarks, geomean_normalized_ipc, normalized_ipc, run_suite, table::ratio,
    trace_uops_from_env, PredictorKind, TextTable,
};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let profiles = spec::all_profiles();
    let kinds = [
        PredictorKind::PerfectMdp,
        PredictorKind::StoreSets,
        PredictorKind::MdpTage,
        PredictorKind::Phast,
        PredictorKind::MascotMdp,
    ];
    let results = run_suite(
        &profiles,
        &kinds,
        &CoreConfig::golden_cove(),
        trace_uops_from_env(),
        mascot_bench::DEFAULT_SEED,
    );
    let benches = benchmarks(&results);
    let shown = ["store-sets", "mdp-tage", "phast", "mascot-mdp"];
    let mut t = TextTable::new(["benchmark", "store-sets", "mdp-tage", "phast", "mascot-mdp"]);
    for b in &benches {
        let cells: Vec<String> = shown
            .iter()
            .map(|p| ratio(normalized_ipc(&results, b, p, "perfect-mdp").unwrap_or(f64::NAN)))
            .collect();
        t.row(std::iter::once(b.clone()).chain(cells));
    }
    let gm: Vec<f64> = shown
        .iter()
        .map(|p| geomean_normalized_ipc(&results, &benches, p, "perfect-mdp").unwrap_or(f64::NAN))
        .collect();
    t.row([
        "GEOMEAN".to_string(),
        ratio(gm[0]),
        ratio(gm[1]),
        ratio(gm[2]),
        ratio(gm[3]),
    ]);
    println!("== Fig. 9 — MDP-only IPC normalised to perfect MDP ==");
    println!("{}", t.render());
    println!("mascot-mdp vs store-sets: {:+.2}% (paper: +6.18%)", (gm[3] / gm[0] - 1.0) * 100.0);
    println!("mascot-mdp vs mdp-tage:   {:+.2}% (historical baseline, beyond the paper)", (gm[3] / gm[1] - 1.0) * 100.0);
    println!("mascot-mdp vs phast:      {:+.2}% (paper: +0.36%)", (gm[3] / gm[2] - 1.0) * 100.0);
    let above: Vec<&String> = benches
        .iter()
        .filter(|b| normalized_ipc(&results, b, "mascot-mdp", "perfect-mdp").unwrap_or(0.0) > 1.0)
        .collect();
    println!("benchmarks where MDP-only MASCOT beats perfect MDP: {above:?}");
}
