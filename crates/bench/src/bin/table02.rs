//! Table II: configuration and storage of the evaluated predictors.

use mascot::MemDepPredictor;
use mascot_bench::{PredictorKind, TextTable};

fn main() {
    let kinds = [
        (PredictorKind::StoreSets, "SSIT 8K direct (1v+12b SSID), LFST 4K direct (1v+10b StID)"),
        (PredictorKind::NoSq, "2 tables, 4-way, 4K entries: 22b tag + 7b counter + 7b distance + 2b LRU"),
        (PredictorKind::Phast, "8 tables, 4-way, 4K entries: 16b tag + 4b counter + 7b distance + 2b LRU"),
        (PredictorKind::Mascot, "8 tables, 4-way, 4K entries: 16b tag + 3b counter + 7b distance + 2b bypass"),
        (PredictorKind::MascotOpt(0), "MASCOT-OPT: tables [1024,512,512,512,256,256,256,128], tags [15,16,16,16,17,17,17,18]"),
        (PredictorKind::MascotOpt(4), "MASCOT-OPT with 4-bit tag reduction (the paper's 10.1 KiB point)"),
    ];
    let mut t = TextTable::new(["predictor", "size (KiB)", "size (bits)", "fields"]);
    for (kind, desc) in kinds {
        let p = kind.build();
        t.row([
            kind.label().into_owned(),
            format!("{:.2}", p.storage_kib()),
            p.storage_bits().to_string(),
            desc.to_string(),
        ]);
    }
    println!("== Table II — evaluated predictor configurations ==\n{}", t.render());
    println!(
        "paper sizes: Store Sets 18.5 KB, NoSQ 19 KB, PHAST 14.5 KB, MASCOT 14 KB, \
         MASCOT-OPT 11.8 KiB, MASCOT-OPT(tag-4) 10.1 KiB"
    );
}
