//! Fig. 12: MASCOT and the perfect MDP+SMB ceiling on Golden Cove vs Lion
//! Cove, each normalised to that architecture's perfect MDP.
//!
//! Paper headline: the SMB ceiling grows from +2.1 % (Golden Cove) to
//! +2.8 % (Lion Cove); MASCOT's gain grows from +1.0 % to +1.3 %.

use mascot_bench::{
    benchmarks, geomean_normalized_ipc, run_suite, table::pct, trace_uops_from_env,
    PredictorKind, TextTable,
};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let profiles = spec::all_profiles();
    let kinds = [
        PredictorKind::PerfectMdp,
        PredictorKind::Mascot,
        PredictorKind::PerfectMdpSmb,
    ];
    let mut t = TextTable::new(["core", "mascot vs perfect MDP", "perfect MDP+SMB vs perfect MDP"]);
    for core in [CoreConfig::golden_cove(), CoreConfig::lion_cove()] {
        let results = run_suite(
            &profiles,
            &kinds,
            &core,
            trace_uops_from_env(),
            mascot_bench::DEFAULT_SEED,
        );
        let benches = benchmarks(&results);
        let mascot = geomean_normalized_ipc(&results, &benches, "mascot", "perfect-mdp").unwrap();
        let ceiling =
            geomean_normalized_ipc(&results, &benches, "perfect-mdp-smb", "perfect-mdp").unwrap();
        t.row([
            core.name.clone(),
            pct((mascot - 1.0) * 100.0),
            pct((ceiling - 1.0) * 100.0),
        ]);
    }
    println!("== Fig. 12 — SMB opportunity across core generations ==");
    println!("{}", t.render());
    println!("paper: ceiling +2.1% (Golden Cove) -> +2.8% (Lion Cove); mascot +1.0% -> +1.3%");
}
