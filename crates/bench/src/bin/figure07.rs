//! Fig. 7: IPC of NoSQ, PHAST and MASCOT (MDP + SMB), normalised to a
//! perfect memory-dependence predictor that does no bypassing.
//!
//! Paper headline: MASCOT out-performs NoSQ by 4.9 %, PHAST by 1.9 % and
//! perfect MDP by 1.0 % on the geometric mean; peak gains on perlbench2.

use mascot_bench::{
    benchmarks, geomean_normalized_ipc, normalized_ipc, run_suite, table::ratio,
    trace_uops_from_env, PredictorKind, TextTable,
};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let profiles = spec::all_profiles();
    let kinds = [
        PredictorKind::PerfectMdp,
        PredictorKind::NoSq,
        PredictorKind::Phast,
        PredictorKind::Mascot,
        PredictorKind::PerfectMdpSmb,
    ];
    let results = run_suite(
        &profiles,
        &kinds,
        &CoreConfig::golden_cove(),
        trace_uops_from_env(),
        mascot_bench::DEFAULT_SEED,
    );
    let benches = benchmarks(&results);
    let shown = ["nosq", "phast", "mascot"];
    let mut t = TextTable::new(["benchmark", "nosq", "phast", "mascot"]);
    for b in &benches {
        let cells: Vec<String> = shown
            .iter()
            .map(|p| ratio(normalized_ipc(&results, b, p, "perfect-mdp").unwrap_or(f64::NAN)))
            .collect();
        t.row(std::iter::once(b.clone()).chain(cells));
    }
    let gm: Vec<f64> = shown
        .iter()
        .map(|p| geomean_normalized_ipc(&results, &benches, p, "perfect-mdp").unwrap_or(f64::NAN))
        .collect();
    t.row([
        "GEOMEAN".to_string(),
        ratio(gm[0]),
        ratio(gm[1]),
        ratio(gm[2]),
    ]);
    println!("== Fig. 7 — IPC normalised to perfect MDP (no SMB) ==");
    println!("{}", t.render());
    let ceiling =
        geomean_normalized_ipc(&results, &benches, "perfect-mdp-smb", "perfect-mdp").unwrap();
    println!("mascot vs nosq:  {:+.2}%", (gm[2] / gm[0] - 1.0) * 100.0);
    println!("mascot vs phast: {:+.2}%", (gm[2] / gm[1] - 1.0) * 100.0);
    println!("mascot vs perfect MDP: {:+.2}%", (gm[2] - 1.0) * 100.0);
    println!(
        "perfect MDP+SMB ceiling: {:+.2}% (mascot is {:+.2}% below it)",
        (ceiling - 1.0) * 100.0,
        (gm[2] / ceiling - 1.0) * 100.0
    );
    println!("paper: mascot +4.9% vs NoSQ, +1.9% vs PHAST, +1.0% vs perfect MDP, -1.0% vs perfect MDP+SMB");
}
