//! Fig. 13: distribution of MASCOT predictions across its tables.
//!
//! "Base" is the default non-dependence prediction when no table hits.
//! The paper observes most non-base predictions come from the short-history
//! tables, with table 1 heavily used.

use mascot::MemDepPredictor;
use mascot_bench::{run_with_predictor, table::frac_pct, trace_uops_from_env, PredictorKind, TextTable};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let profiles = spec::all_profiles();
    let core = CoreConfig::golden_cove();
    let uops = trace_uops_from_env();
    let mut per_table = [0u64; 8];
    let mut base = 0u64;
    let mut rows: Vec<(String, Vec<u64>, u64)> = Vec::new();
    for profile in &profiles {
        let mut p = PredictorKind::Mascot.build();
        let _ = run_with_predictor(profile, &mut p, &core, uops, mascot_bench::DEFAULT_SEED, None);
        let m = p.as_mascot().expect("mascot predictor");
        let stats = m.stats();
        for (acc, v) in per_table.iter_mut().zip(&stats.table_predictions) {
            *acc += v;
        }
        base += stats.base_predictions;
        rows.push((
            profile.name.to_string(),
            stats.table_predictions.clone(),
            stats.base_predictions,
        ));
        let _ = m.storage_bits();
    }
    let mut t = TextTable::new([
        "benchmark", "base", "T1(h0)", "T2(h2)", "T3(h4)", "T4(h8)", "T5(h16)", "T6(h32)",
        "T7(h64)", "T8(h128)",
    ]);
    for (name, tables, b) in &rows {
        let total = (tables.iter().sum::<u64>() + b).max(1) as f64;
        let mut cells = vec![name.clone(), frac_pct(*b as f64 / total)];
        cells.extend(tables.iter().map(|&v| frac_pct(v as f64 / total)));
        t.row(cells);
    }
    let total = (per_table.iter().sum::<u64>() + base).max(1) as f64;
    let mut cells = vec!["TOTAL".to_string(), frac_pct(base as f64 / total)];
    cells.extend(per_table.iter().map(|&v| frac_pct(v as f64 / total)));
    t.row(cells);
    println!("== Fig. 13 — share of predictions provided by each MASCOT table ==");
    println!("{}", t.render());
    println!("paper shape: the base prediction dominates; among table hits, short-history tables provide most predictions");
}
