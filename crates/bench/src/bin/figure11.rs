//! Fig. 11: MASCOT vs a structurally identical TAGE predictor that does not
//! allocate non-dependence entries (it only decays confidence on a false
//! dependence, like prior TAGE-based MDP/SMB designs).
//!
//! Paper headline: the ablation accumulates more than 12× MASCOT's false
//! dependencies and loses IPC, especially when bypassing.

use mascot_bench::{
    benchmarks, geomean_normalized_ipc, normalized_ipc, run_suite, table::count, table::ratio,
    trace_uops_from_env, PredictorKind, TextTable,
};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let profiles = spec::all_profiles();
    let kinds = [
        PredictorKind::PerfectMdp,
        PredictorKind::Mascot,
        PredictorKind::TageNoNd,
    ];
    let results = run_suite(
        &profiles,
        &kinds,
        &CoreConfig::golden_cove(),
        trace_uops_from_env(),
        mascot_bench::DEFAULT_SEED,
    );
    let benches = benchmarks(&results);
    let mut t = TextTable::new([
        "benchmark",
        "mascot (norm IPC)",
        "tage-no-nd (norm IPC)",
        "mascot false deps",
        "no-nd false deps",
        "mascot smb squashes",
        "no-nd smb squashes",
    ]);
    let (mut fd_m, mut fd_a, mut sq_m, mut sq_a) = (0u64, 0u64, 0u64, 0u64);
    for b in &benches {
        let m = mascot_bench::find(&results, b, "mascot").unwrap();
        let a = mascot_bench::find(&results, b, "tage-no-nd").unwrap();
        fd_m += m.stats.false_dependencies;
        fd_a += a.stats.false_dependencies;
        sq_m += m.stats.smb_squashes;
        sq_a += a.stats.smb_squashes;
        t.row([
            b.clone(),
            ratio(normalized_ipc(&results, b, "mascot", "perfect-mdp").unwrap()),
            ratio(normalized_ipc(&results, b, "tage-no-nd", "perfect-mdp").unwrap()),
            count(m.stats.false_dependencies),
            count(a.stats.false_dependencies),
            count(m.stats.smb_squashes),
            count(a.stats.smb_squashes),
        ]);
    }
    let gm_m = geomean_normalized_ipc(&results, &benches, "mascot", "perfect-mdp").unwrap();
    let gm_a = geomean_normalized_ipc(&results, &benches, "tage-no-nd", "perfect-mdp").unwrap();
    t.row([
        "GEOMEAN/TOTAL".to_string(),
        ratio(gm_m),
        ratio(gm_a),
        count(fd_m),
        count(fd_a),
        count(sq_m),
        count(sq_a),
    ]);
    println!("== Fig. 11 — MASCOT vs TAGE without non-dependence allocation ==");
    println!("{}", t.render());
    println!("IPC: mascot {:+.2}% vs ablation", (gm_m / gm_a - 1.0) * 100.0);
    if fd_m > 0 {
        println!(
            "false dependencies: ablation has {:.1}x MASCOT's (paper: >12x)",
            fd_a as f64 / fd_m as f64
        );
    }
}
