//! Fig. 2: percentage of loads with a dependence on an in-flight prior
//! store, split by bypass class.
//!
//! Runs every benchmark under the perfect-MDP predictor (the census does not
//! depend on the predictor; perfect MDP avoids squash noise) and prints the
//! per-class fractions of committed loads.

use mascot::BypassClass;
use mascot_bench::{run_suite, table::frac_pct, trace_uops_from_env, PredictorKind, TextTable};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let profiles = spec::all_profiles();
    let results = run_suite(
        &profiles,
        &[PredictorKind::PerfectMdp],
        &CoreConfig::golden_cove(),
        trace_uops_from_env(),
        mascot_bench::DEFAULT_SEED,
    );
    let mut t = TextTable::new([
        "benchmark",
        "DirectBypass",
        "NoOffset",
        "Offset",
        "MDP only",
        "any dependence",
    ]);
    let mut sums = [0.0f64; 5];
    for r in &results {
        let s = &r.stats;
        let cols = [
            s.class_fraction(BypassClass::DirectBypass),
            s.class_fraction(BypassClass::NoOffset),
            s.class_fraction(BypassClass::Offset),
            s.class_fraction(BypassClass::MdpOnly),
            s.dependent_load_fraction(),
        ];
        for (acc, v) in sums.iter_mut().zip(cols) {
            *acc += v;
        }
        t.row([
            r.benchmark.clone(),
            frac_pct(cols[0]),
            frac_pct(cols[1]),
            frac_pct(cols[2]),
            frac_pct(cols[3]),
            frac_pct(cols[4]),
        ]);
    }
    let n = results.len() as f64;
    t.row([
        "MEAN".to_string(),
        frac_pct(sums[0] / n),
        frac_pct(sums[1] / n),
        frac_pct(sums[2] / n),
        frac_pct(sums[3] / n),
        frac_pct(sums[4] / n),
    ]);
    println!("== Fig. 2 — loads with an in-flight store dependence, by class ==");
    println!("{}", t.render());
    println!(
        "paper shape: perlbench/lbm ~40% bypassable loads, bwaves/wrf ~5%; \
         the DirectBypass case dominates everywhere"
    );
}
