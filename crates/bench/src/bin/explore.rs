//! Free-form exploration CLI: run any benchmark × predictor × core
//! configuration without writing code.
//!
//! ```text
//! explore [key=value ...]
//!
//!   bench=perlbench2          benchmark profile (see `--list`)
//!   pred=mascot               mascot | mascot-mdp | mascot-opt | mascot-opt-tagN |
//!                             tage-no-nd | phast | nosq | mdp-tage | store-sets |
//!                             perfect-mdp | perfect-mdp-smb
//!   core=golden-cove          golden-cove | lion-cove
//!   uops=150000               trace length
//!   seed=2025                 generation seed
//!   rob=512 iq=204 lq=192 sb=114   core structure overrides
//!   l1d=5 mem=100             latency overrides (cycles)
//!   drain=40                  store-drain delay override
//! ```
//!
//! Example: `explore bench=mcf pred=mascot rob=768 sb=171`

use mascot_bench::{run_one, PredictorKind, TextTable};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn parse_kind(s: &str) -> Option<PredictorKind> {
    Some(match s {
        "mascot" => PredictorKind::Mascot,
        "mascot-mdp" => PredictorKind::MascotMdp,
        "mascot-opt" => PredictorKind::MascotOpt(0),
        "tage-no-nd" => PredictorKind::TageNoNd,
        "phast" => PredictorKind::Phast,
        "nosq" => PredictorKind::NoSq,
        "mdp-tage" => PredictorKind::MdpTage,
        "store-sets" => PredictorKind::StoreSets,
        "perfect-mdp" => PredictorKind::PerfectMdp,
        "perfect-mdp-smb" => PredictorKind::PerfectMdpSmb,
        other => {
            let n = other.strip_prefix("mascot-opt-tag")?.parse().ok()?;
            PredictorKind::MascotOpt(n)
        }
    })
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\nrun with --help for usage");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: explore [bench=NAME] [pred=KIND] [core=NAME] [uops=N] [seed=N]");
        println!("               [rob=N] [iq=N] [lq=N] [sb=N] [l1d=N] [mem=N] [drain=N]");
        println!("       explore --list   # available benchmarks");
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for p in spec::all_profiles() {
            println!("{}", p.name);
        }
        return;
    }

    let mut bench = "perlbench2".to_string();
    let mut kind = PredictorKind::Mascot;
    let mut core = CoreConfig::golden_cove();
    let mut uops = 150_000usize;
    let mut seed = mascot_bench::DEFAULT_SEED;
    for arg in &args {
        let Some((key, value)) = arg.split_once('=') else {
            fail(&format!("expected key=value, got {arg:?}"));
        };
        let num = || -> u32 {
            value
                .parse()
                .unwrap_or_else(|_| fail(&format!("{key}: not a number: {value:?}")))
        };
        match key {
            "bench" => bench = value.to_string(),
            "pred" => {
                kind = parse_kind(value)
                    .unwrap_or_else(|| fail(&format!("unknown predictor {value:?}")));
            }
            "core" => {
                core = match value {
                    "golden-cove" => CoreConfig::golden_cove(),
                    "lion-cove" => CoreConfig::lion_cove(),
                    _ => fail(&format!("unknown core {value:?}")),
                };
            }
            "uops" => uops = num() as usize,
            "seed" => seed = u64::from(num()),
            "rob" => core.rob_entries = num(),
            "iq" => core.iq_entries = num(),
            "lq" => core.lq_entries = num(),
            "sb" => core.sb_entries = num(),
            "l1d" => core.l1d.hit_latency = num(),
            "mem" => core.memory_latency = num(),
            "drain" => core.store_drain_delay = num(),
            _ => fail(&format!("unknown key {key:?}")),
        }
    }
    let Some(profile) = spec::profile(&bench) else {
        fail(&format!("unknown benchmark {bench:?} (try --list)"));
    };
    core.validate().unwrap_or_else(|e| fail(&e));

    let r = run_one(&profile, kind, &core, uops, seed);
    let s = &r.stats;
    println!(
        "{} on {} with {} ({:.1} KiB), {} uops, seed {}\n",
        r.benchmark, r.core, r.predictor, r.storage_kib, uops, seed
    );
    let mut t = TextTable::new(["metric", "value"]);
    t.row(["IPC".to_string(), format!("{:.4}", s.ipc())]);
    t.row(["cycles".to_string(), s.cycles.to_string()]);
    t.row(["loads / stores / branches".to_string(), format!(
        "{} / {} / {}",
        s.committed_loads, s.committed_stores, s.committed_branches
    )]);
    t.row(["predictions (no-dep / mdp / smb)".to_string(), format!(
        "{} / {} / {}",
        s.pred_no_dep, s.pred_mdp, s.pred_smb
    )]);
    t.row(["mispredictions (missed/false/wrong-store/smb)".to_string(), format!(
        "{} / {} / {} / {}",
        s.missed_dependencies, s.false_dependencies, s.wrong_store, s.smb_errors
    )]);
    t.row(["squashes (memory-order / smb)".to_string(), format!(
        "{} / {}",
        s.mem_order_squashes, s.smb_squashes
    )]);
    t.row(["loads bypassed / forwarded / from cache".to_string(), format!(
        "{} / {} / {}",
        s.loads_bypassed, s.loads_forwarded, s.loads_from_cache
    )]);
    t.row(["branch mispredicts (MPKI)".to_string(), format!(
        "{} ({:.1})",
        s.branch_mispredicts,
        s.branch_mispredicts as f64 * 1000.0 / s.committed_uops.max(1) as f64
    )]);
    t.row(["cache misses (l1i/l1d/l2/l3)".to_string(), format!(
        "{} / {} / {} / {}",
        s.l1i_misses, s.l1d_misses, s.l2_misses, s.l3_misses
    )]);
    t.row(["dispatch stalls (fe/rob/iq/lq/sb)".to_string(), format!(
        "{} / {} / {} / {} / {}",
        s.stall_frontend, s.stall_rob, s.stall_iq, s.stall_lq, s.stall_sb
    )]);
    t.row(["avg dependent issue wait".to_string(), format!("{:.1} cycles", s.avg_dependent_wait())]);
    t.row(["dependent-load fraction".to_string(), format!(
        "{:.1}%",
        s.dependent_load_fraction() * 100.0
    )]);
    println!("{}", t.render());
}
