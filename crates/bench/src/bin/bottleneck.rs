//! Cycle-accounting analysis: where each benchmark's cycles go, and the
//! §VI-A issue-wait numbers.
//!
//! Not a paper figure, but the transparency behind EXPERIMENTS.md's
//! divergence notes: it attributes zero-dispatch cycles to the frontend
//! (branch redirects / I-cache) or to back-end structural limits, and
//! reports the average dependence wait with and without bypassing.

use mascot_bench::{run_one, table::frac_pct, trace_uops_from_env, PredictorKind, TextTable};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let core = CoreConfig::golden_cove();
    let uops = trace_uops_from_env();
    let mut t = TextTable::new([
        "benchmark",
        "IPC",
        "br MPKI",
        "frontend",
        "rob",
        "iq",
        "lq",
        "sb",
        "busy",
        "wait mdp",
        "wait smb",
    ]);
    for profile in spec::all_profiles() {
        let base = run_one(&profile, PredictorKind::PerfectMdp, &core, uops, mascot_bench::DEFAULT_SEED);
        let smb = run_one(&profile, PredictorKind::PerfectMdpSmb, &core, uops, mascot_bench::DEFAULT_SEED);
        let s = &base.stats;
        let c = s.cycles.max(1) as f64;
        t.row([
            profile.name.to_string(),
            format!("{:.2}", s.ipc()),
            format!("{:.1}", s.branch_mispredicts as f64 * 1000.0 / s.committed_uops.max(1) as f64),
            frac_pct(s.stall_frontend as f64 / c),
            frac_pct(s.stall_rob as f64 / c),
            frac_pct(s.stall_iq as f64 / c),
            frac_pct(s.stall_lq as f64 / c),
            frac_pct(s.stall_sb as f64 / c),
            frac_pct(1.0 - s.total_dispatch_stalls() as f64 / c),
            format!("{:.1}", s.avg_dependent_wait()),
            format!("{:.1}", smb.stats.avg_dependent_wait()),
        ]);
    }
    println!("== Cycle accounting (perfect-MDP baseline; stalls = zero-dispatch cycles) ==");
    println!("{}", t.render());
    println!("'wait mdp/smb': §VI-A average dispatch->issue wait of load consumers,");
    println!("under perfect MDP vs perfect MDP+SMB (the paper's perlbench analysis).");
}
