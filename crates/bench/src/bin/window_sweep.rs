//! Out-of-order window sweep: how memory-dependence prediction quality
//! scales with core size.
//!
//! The paper argues (§VI-A, §VI-C) that bigger windows expose more
//! potentially-conflicting load/store pairs, raising both the cost of bad
//! MDP (Store Sets' deficit on the 512-entry Golden Cove ROB) and the
//! opportunity for SMB (Lion Cove's larger ceiling). This sweep scales
//! ROB/IQ/LQ/SB together from a small OoO core up past Golden Cove and
//! reports each predictor's normalised IPC per point.

use mascot_bench::{
    benchmarks, geomean_normalized_ipc, run_suite, table::ratio, trace_uops_from_env,
    PredictorKind, TextTable,
};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn scaled_core(scale: f64) -> CoreConfig {
    let base = CoreConfig::golden_cove();
    let s = |v: u32| ((f64::from(v) * scale).round() as u32).max(8);
    CoreConfig {
        name: format!("rob-{}", s(base.rob_entries)),
        rob_entries: s(base.rob_entries),
        iq_entries: s(base.iq_entries),
        lq_entries: s(base.lq_entries),
        sb_entries: s(base.sb_entries),
        ..base
    }
}

fn main() {
    let profiles = spec::quick_suite();
    let kinds = [
        PredictorKind::PerfectMdp,
        PredictorKind::PerfectMdpSmb,
        PredictorKind::StoreSets,
        PredictorKind::Phast,
        PredictorKind::MascotMdp,
        PredictorKind::Mascot,
    ];
    let uops = trace_uops_from_env();
    let mut t = TextTable::new([
        "window",
        "store-sets",
        "phast",
        "mascot-mdp",
        "mascot",
        "smb ceiling",
    ]);
    for scale in [0.25, 0.5, 1.0, 1.5] {
        let core = scaled_core(scale);
        let results = run_suite(&profiles, &kinds, &core, uops, mascot_bench::DEFAULT_SEED);
        let benches = benchmarks(&results);
        let gm = |p: &str| {
            geomean_normalized_ipc(&results, &benches, p, "perfect-mdp").unwrap_or(f64::NAN)
        };
        t.row([
            format!(
                "ROB {} / SB {}",
                core.rob_entries, core.sb_entries
            ),
            ratio(gm("store-sets")),
            ratio(gm("phast")),
            ratio(gm("mascot-mdp")),
            ratio(gm("mascot")),
            ratio(gm("perfect-mdp-smb")),
        ]);
    }
    println!("== Window sweep — normalised IPC vs OoO window size (quick suite) ==");
    println!("{}", t.render());
    println!("paper's argument: larger windows raise both the cost of bad MDP and the SMB ceiling (§VI-A/C)");
}
