//! Runs every experiment binary in sequence, mirroring the paper's
//! evaluation section end to end. Equivalent to running each `table*` /
//! `figure*` binary yourself; see DESIGN.md §3 for the index.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("binary directory");
    let experiments = [
        "table01",
        "table02",
        "counter_decay",
        "figure02",
        "figure07",
        "figure08",
        "figure09",
        "figure10",
        "figure11",
        "figure12",
        "figure13",
        "figure14",
        "figure15",
        "ablations",
        "window_sweep",
        "bottleneck",
    ];
    let started = std::time::Instant::now();
    for name in experiments {
        println!("\n######## {name} ########\n");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed with {status}");
    }
    println!("\nall experiments completed in {:?}", started.elapsed());
}
