//! Runs every experiment binary in sequence, mirroring the paper's
//! evaluation section end to end. Equivalent to running each `table*` /
//! `figure*` binary yourself; see DESIGN.md §3 for the index.
//!
//! `--sampled` runs the whole sweep in cluster-and-project mode: every
//! child is launched with `MASCOT_SAMPLED=1`, so each (benchmark,
//! predictor, core) cell is projected from representative intervals
//! (DESIGN.md §13) instead of simulated end to end. Useful for a fast
//! smoke pass over the full evaluation; headline numbers should still
//! come from the default full-trace run.

use std::process::Command;

fn main() {
    let mut sampled = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--sampled" => sampled = true,
            other => {
                eprintln!("unknown argument `{other}`; usage: all_experiments [--sampled]");
                std::process::exit(2);
            }
        }
    }
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("binary directory");
    let experiments = [
        "table01",
        "table02",
        "counter_decay",
        "figure02",
        "figure07",
        "figure08",
        "figure09",
        "figure10",
        "figure11",
        "figure12",
        "figure13",
        "figure14",
        "figure15",
        "ablations",
        "window_sweep",
        "bottleneck",
    ];
    if sampled {
        println!("sampled mode: projecting every cell from representative intervals");
    }
    let started = std::time::Instant::now();
    for name in experiments {
        println!("\n######## {name} ########\n");
        let mut command = Command::new(dir.join(name));
        if sampled {
            command.env("MASCOT_SAMPLED", "1");
        }
        let status = command
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed with {status}");
    }
    println!("\nall experiments completed in {:?}", started.elapsed());
}
