//! Adversarial mistraining evaluation: attack success per attacker profile
//! and the security-vs-IPC frontier of the randomized defense
//! (DESIGN.md §12, EXPERIMENTS.md "Adversarial mistraining").
//!
//! For every attacker profile × defender, the victim program runs twice —
//! alone and interleaved with the attacker — with per-tenant misprediction
//! attribution enabled. The attack success rate is the *induced* victim
//! misprediction rate: under-attack minus alone, clamped at zero
//! (`mascot_stats::pollution`). The benign cost of the defense is the
//! worst-case IPC delta of `randomized-mascot` vs `mascot` across the
//! quick benign suite.
//!
//! Modes:
//!
//! - `adversarial` — print the frontier table.
//! - `adversarial --check` — additionally gate (exit non-zero on failure):
//!   1. baseline `mascot` is actually attackable on `mistrain_alias`
//!      (induced victim misprediction rate ≥ 2%, induced false-bypass
//!      rate > 0) — keeps the attack generator honest;
//!   2. `randomized-mascot` cuts the alias attack success by ≥ 10×;
//!   3. the defense's benign-suite IPC cost is ≤ 5%.

use mascot_bench::{run_one, run_trace, table, PredictorKind, TextTable};
use mascot_sim::CoreConfig;
use mascot_stats::pollution;
use mascot_workloads::adversarial::{compose, victim_only, AttackKind, TENANT_BOUNDARY};
use mascot_workloads::spec;

const UOPS: usize = 60_000;
const SEED: u64 = 2025;
const DEFENDERS: [PredictorKind; 2] = [PredictorKind::Mascot, PredictorKind::RandomizedMascot];
/// Benign workloads for the IPC-cost side of the frontier.
const BENIGN: [&str; 3] = ["perlbench2", "mcf", "exchange2"];

/// Gate 1: the alias attack must induce at least this victim
/// misprediction rate against baseline mascot (measured ~1.47 at the
/// pinned seed — above 1.0 because a poisoned load often squashes on the
/// wrong bypass *and* then commits demoted as a false dependence; the
/// generous margin tolerates trace regeneration).
const MIN_BASELINE_SUCCESS: f64 = 0.5;
/// Gate 2: required attack-success reduction of the randomized defense.
const MIN_REDUCTION: f64 = 10.0;
/// Gate 3: allowed benign-suite IPC cost of the randomized defense.
const MAX_BENIGN_IPC_COST: f64 = 0.05;

struct Cell {
    attack: AttackKind,
    predictor: PredictorKind,
    alone_rate: f64,
    attacked_rate: f64,
    induced: f64,
    induced_fb: f64,
    victim_loads: u64,
}

fn measure_attacks() -> Vec<Cell> {
    let core = CoreConfig::golden_cove();
    let mut cells = Vec::new();
    for attack in AttackKind::ALL {
        let alone_trace = victim_only(attack, SEED, UOPS);
        let attacked_trace = compose(attack, SEED, UOPS);
        for predictor in DEFENDERS {
            let alone = run_trace(&alone_trace, predictor, &core, Some(TENANT_BOUNDARY));
            let attacked = run_trace(&attacked_trace, predictor, &core, Some(TENANT_BOUNDARY));
            for r in [&alone, &attacked] {
                r.stats
                    .check_identities()
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", r.benchmark, r.predictor));
            }
            cells.push(Cell {
                attack,
                predictor,
                alone_rate: alone.stats.victim.misprediction_rate(),
                attacked_rate: attacked.stats.victim.misprediction_rate(),
                induced: pollution::induced(
                    alone.stats.victim.misprediction_rate(),
                    attacked.stats.victim.misprediction_rate(),
                ),
                induced_fb: pollution::induced(
                    alone.stats.victim.false_bypass_rate(),
                    attacked.stats.victim.false_bypass_rate(),
                ),
                victim_loads: attacked.stats.victim.loads,
            });
        }
    }
    cells
}

/// Worst-case relative IPC cost of the defense across the benign suite.
fn benign_ipc_cost() -> (f64, Vec<(String, f64, f64)>) {
    let core = CoreConfig::golden_cove();
    let mut rows = Vec::new();
    let mut worst = 0.0f64;
    for name in BENIGN {
        let profile = spec::profile(name).expect("known benchmark");
        let base = run_one(&profile, PredictorKind::Mascot, &core, UOPS, SEED);
        let defended = run_one(&profile, PredictorKind::RandomizedMascot, &core, UOPS, SEED);
        let cost = 1.0 - defended.stats.ipc() / base.stats.ipc();
        worst = worst.max(cost);
        rows.push((name.to_string(), base.stats.ipc(), defended.stats.ipc()));
    }
    (worst, rows)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");

    let cells = measure_attacks();
    let mut t = TextTable::new(vec![
        "attack",
        "predictor",
        "victim loads",
        "alone",
        "attacked",
        "induced",
        "induced-FB",
    ]);
    for c in &cells {
        t.row(vec![
            c.attack.name().to_string(),
            c.predictor.label().into_owned(),
            c.victim_loads.to_string(),
            table::ratio(c.alone_rate),
            table::ratio(c.attacked_rate),
            table::ratio(c.induced),
            table::ratio(c.induced_fb),
        ]);
    }
    println!("Attack success (victim mispredictions per load, induced by the attacker):");
    println!("{}", t.render());

    let (worst_cost, benign_rows) = benign_ipc_cost();
    let mut t = TextTable::new(vec!["benchmark", "mascot IPC", "randomized IPC", "cost"]);
    for (name, base, defended) in &benign_rows {
        t.row(vec![
            name.clone(),
            table::ratio(*base),
            table::ratio(*defended),
            format!("{:+.1}%", (1.0 - defended / base) * 100.0),
        ]);
    }
    println!("Benign cost of the randomized defense:");
    println!("{}", t.render());

    let find = |attack: AttackKind, kind: PredictorKind| {
        cells
            .iter()
            .find(|c| c.attack == attack && c.predictor == kind)
            .expect("measured cell")
    };
    let baseline = find(AttackKind::Alias, PredictorKind::Mascot);
    let defended = find(AttackKind::Alias, PredictorKind::RandomizedMascot);
    let reduction = pollution::reduction_factor(baseline.induced, defended.induced);
    println!(
        "mistrain_alias: baseline induced {:.4} (FB {:.4}), defended induced {:.4} \
         => reduction {:.1}x; worst benign IPC cost {:+.2}%",
        baseline.induced,
        baseline.induced_fb,
        defended.induced,
        reduction,
        worst_cost * 100.0
    );

    if !check {
        return;
    }
    let mut failures = Vec::new();
    if baseline.induced < MIN_BASELINE_SUCCESS {
        failures.push(format!(
            "alias attack too weak against baseline mascot: induced {:.4} < {MIN_BASELINE_SUCCESS}",
            baseline.induced
        ));
    }
    if baseline.induced_fb <= 0.0 {
        failures.push("alias attack induced no victim false bypasses".to_string());
    }
    if reduction < MIN_REDUCTION {
        failures.push(format!(
            "randomized defense reduction {reduction:.1}x < required {MIN_REDUCTION}x \
             (baseline {:.4}, defended {:.4})",
            baseline.induced, defended.induced
        ));
    }
    if worst_cost > MAX_BENIGN_IPC_COST {
        failures.push(format!(
            "benign IPC cost {:.2}% exceeds {:.0}%",
            worst_cost * 100.0,
            MAX_BENIGN_IPC_COST * 100.0
        ));
    }
    if failures.is_empty() {
        println!("adversarial gate OK");
    } else {
        for f in &failures {
            eprintln!("adversarial gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}
