//! Simulator throughput trajectory: simulated µops per wall-clock second,
//! per predictor, on the default suite.
//!
//! Modes:
//!
//! - `throughput` — measure and rewrite `BENCH_sim_throughput.json` at the
//!   repository root (the committed baseline for future PRs).
//! - `throughput --check` — measure and compare against the committed
//!   baseline; exits non-zero if aggregate throughput regressed by more
//!   than 10%, or any single predictor's suite-wide throughput by more
//!   than 12%. Per-row numbers are printed but not gated: single
//!   (benchmark, predictor) cells are too noisy for a hard threshold;
//!   per-predictor aggregates pool the whole suite, which is enough signal
//!   to catch one predictor regressing while the others mask it.
//!
//! Traces come from the harness-wide cache ([`mascot_bench::cached_trace`]),
//! so each workload is generated once and shared across predictors and
//! repeat runs; the measured window covers simulation only.

use mascot_bench::json::{scan_f64_field, JsonObject};
use mascot_bench::{run_one, table, PredictorKind, RunResult, TextTable};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

/// The default suite: one pointer-chasing, one streaming, and one
/// cache-resident control-heavy profile — the three throughput regimes.
const WORKLOADS: [&str; 3] = ["perlbench2", "bwaves", "mcf"];
const KINDS: [PredictorKind; 3] = [
    PredictorKind::Mascot,
    PredictorKind::NoSq,
    PredictorKind::StoreSets,
];
const UOPS: usize = 40_000;
const SEED: u64 = 2025;
/// Timed repetitions per cell (plus one untimed warm-up); best-of wins.
/// Five keeps run-to-run noise on a loaded host well inside the
/// regression tolerance.
const ITERS: usize = 5;

/// Allowed aggregate slowdown vs the committed baseline in `--check` mode.
const REGRESSION_TOLERANCE: f64 = 0.10;
/// Allowed per-predictor suite-wide slowdown in `--check` mode; looser
/// than the aggregate gate because a third of the cells back each number.
const PER_PREDICTOR_TOLERANCE: f64 = 0.12;
/// Full `measure()` passes in `--check` mode; the *median* aggregate is
/// gated. Best-of-N inside one pass still leaves pass-to-pass spread on a
/// loaded host (one bad scheduling window taints every cell it covers);
/// the median of three passes is immune to any single bad window, which is
/// what turned the 10% gate from flaky to dependable.
const CHECK_PASSES: usize = 3;

const BASELINE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_sim_throughput.json"
);

fn measure() -> (Vec<RunResult>, f64) {
    let core = CoreConfig::golden_cove();
    let mut rows = Vec::new();
    let (mut total_uops, mut total_secs) = (0.0f64, 0.0f64);
    for name in WORKLOADS {
        let profile = spec::profile(name).expect("known benchmark");
        for kind in KINDS {
            let mut best: Option<RunResult> = None;
            // Iteration 0 is the warm-up (cold caches, first-touch trace
            // generation) and is discarded.
            for iter in 0..=ITERS {
                let r = run_one(&profile, kind, &core, UOPS, SEED);
                if iter > 0 && best.as_ref().is_none_or(|b| r.wall_ms < b.wall_ms) {
                    best = Some(r);
                }
            }
            let best = best.expect("at least one timed iteration");
            total_uops += best.stats.committed_uops as f64;
            total_secs += best.wall_ms / 1e3;
            rows.push(best);
        }
    }
    let aggregate = total_uops / total_secs;
    (rows, aggregate)
}

/// Baseline JSON field name for one predictor's suite-wide throughput.
fn predictor_field(label: &str) -> String {
    format!("{}_uops_per_sec", label.replace('-', "_"))
}

/// Per-predictor aggregate throughput (uops over wall time, summed across
/// the whole suite), in [`KINDS`] order.
fn per_predictor(rows: &[RunResult]) -> Vec<(String, f64)> {
    KINDS
        .iter()
        .map(|kind| {
            let label = kind.label();
            let (mut uops, mut secs) = (0.0f64, 0.0f64);
            for r in rows.iter().filter(|r| r.predictor == label.as_ref()) {
                uops += r.stats.committed_uops as f64;
                secs += r.wall_ms / 1e3;
            }
            (label.into_owned(), uops / secs)
        })
        .collect()
}

fn render(rows: &[RunResult], aggregate: f64) -> String {
    let mut t = TextTable::new(["benchmark", "predictor", "wall", "Muops/s"]);
    for r in rows {
        t.row([
            r.benchmark.clone(),
            r.predictor.clone(),
            table::ms(r.wall_ms),
            table::muops_per_sec(r.uops_per_sec),
        ]);
    }
    let mut out = format!(
        "{}aggregate: {} Muops/s ({} uops, best of {ITERS}, seed {SEED})\n",
        t.render(),
        table::muops_per_sec(aggregate),
        UOPS
    );
    for (label, v) in per_predictor(rows) {
        out.push_str(&format!(
            "  {label}: {} Muops/s\n",
            table::muops_per_sec(v)
        ));
    }
    out
}

fn to_json(rows: &[RunResult], aggregate: f64) -> String {
    let run_rows: Vec<JsonObject> = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .str("benchmark", &r.benchmark)
                .str("predictor", &r.predictor)
                .float("wall_ms", r.wall_ms, 2)
                .float("uops_per_sec", r.uops_per_sec, 0)
        })
        .collect();
    let mut obj = JsonObject::new()
        .int("uops", UOPS as u64)
        .int("seed", SEED)
        .int("iterations", ITERS as u64)
        .float("aggregate_uops_per_sec", aggregate, 0);
    for (label, v) in per_predictor(rows) {
        obj = obj.float(&predictor_field(&label), v, 0);
    }
    obj.rows("runs", &run_rows).render()
}

/// Pulls `"aggregate_uops_per_sec": <number>` out of the baseline file.
/// The file is machine-written by this binary, so a field scan is enough —
/// no JSON parser in the tree (offline build, no serde_json).
fn baseline_aggregate(json: &str) -> Option<f64> {
    scan_f64_field(json, "aggregate_uops_per_sec")
}

/// Measures [`CHECK_PASSES`] times and returns the pass with the median
/// aggregate (rows and aggregate stay consistent with each other).
fn measure_median() -> (Vec<RunResult>, f64) {
    let mut passes: Vec<(Vec<RunResult>, f64)> = (0..CHECK_PASSES)
        .map(|i| {
            let pass = measure();
            println!(
                "pass {}/{CHECK_PASSES}: {} Muops/s",
                i + 1,
                table::muops_per_sec(pass.1)
            );
            pass
        })
        .collect();
    passes.sort_by(|a, b| a.1.total_cmp(&b.1));
    passes.swap_remove(CHECK_PASSES / 2)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (rows, aggregate) = if check { measure_median() } else { measure() };
    print!("{}", render(&rows, aggregate));

    if check {
        let baseline = match std::fs::read_to_string(BASELINE_PATH) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("no committed baseline at {BASELINE_PATH}: {e}");
                eprintln!("run `throughput` without --check to create it");
                std::process::exit(2);
            }
        };
        let Some(base) = baseline_aggregate(&baseline) else {
            eprintln!("malformed baseline: missing aggregate_uops_per_sec");
            std::process::exit(2);
        };
        let ratio = aggregate / base;
        println!("baseline: {} Muops/s, ratio {ratio:.3}", table::muops_per_sec(base));
        let mut failed = false;
        if ratio < 1.0 - REGRESSION_TOLERANCE {
            eprintln!(
                "FAIL: aggregate throughput regressed {:.1}% (> {:.0}% tolerance)",
                (1.0 - ratio) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            );
            failed = true;
        }
        for (label, v) in per_predictor(&rows) {
            let field = predictor_field(&label);
            let Some(base) = scan_f64_field(&baseline, &field) else {
                // Pre-per-predictor baseline: nothing to gate against.
                println!("  {label}: no baseline field {field}, skipping gate");
                continue;
            };
            let ratio = v / base;
            println!(
                "  {label}: baseline {} Muops/s, ratio {ratio:.3}",
                table::muops_per_sec(base)
            );
            if ratio < 1.0 - PER_PREDICTOR_TOLERANCE {
                eprintln!(
                    "FAIL: {label} throughput regressed {:.1}% (> {:.0}% tolerance)",
                    (1.0 - ratio) * 100.0,
                    PER_PREDICTOR_TOLERANCE * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("throughput check passed");
    } else {
        let json = to_json(&rows, aggregate);
        std::fs::write(BASELINE_PATH, json).expect("write BENCH_sim_throughput.json");
        println!("wrote {BASELINE_PATH}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_field_scan_parses_own_output() {
        let json = "{\n  \"aggregate_uops_per_sec\": 3064212,\n}";
        assert_eq!(baseline_aggregate(json), Some(3_064_212.0));
        assert_eq!(baseline_aggregate("{}"), None);
    }
}
