//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Sweeps, each against the default MASCOT on a representative benchmark
//! subset:
//!
//! 1. **Associativity** (§IV-B: "4-way to tolerate conflicts").
//! 2. **History-length schedule** (geometric [0,2,...,128] vs shorter and
//!    PC-only variants).
//! 3. **Allocation usefulness** (§IV-C allocates dependents at 6,
//!    non-dependents at 2).
//! 4. **Periodic usefulness decay** (§IV-C: "no meaningful change").
//! 5. **Offset-bypass extension** (§IV-E: small upside, matching the thin
//!    Offset slice in Fig. 2).

use mascot::config::MascotConfig;
use mascot::predictor::Mascot;
use mascot_bench::{run_with_predictor, table::ratio, trace_uops_from_env, TextTable};
use mascot_predictors::AnyPredictor;
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn benchmarks() -> Vec<mascot_workloads::WorkloadProfile> {
    ["perlbench2", "gcc4", "mcf", "lbm", "exchange2", "xalancbmk"]
        .iter()
        .map(|n| spec::profile(n).expect("known benchmark"))
        .collect()
}

/// Runs a MASCOT config over the subset; returns (geomean IPC, total
/// mispredictions).
fn evaluate(cfg: MascotConfig, label: &str) -> (f64, u64) {
    let core = CoreConfig::golden_cove();
    let uops = trace_uops_from_env();
    let mut ipcs = Vec::new();
    let mut mis = 0u64;
    for profile in benchmarks() {
        let mut p = AnyPredictor::Mascot(
            Mascot::new(cfg.clone()).unwrap_or_else(|e| panic!("{label}: {e}")),
        );
        let r = run_with_predictor(&profile, &mut p, &core, uops, mascot_bench::DEFAULT_SEED, None);
        ipcs.push(r.stats.ipc());
        mis += r.stats.total_mispredictions();
    }
    (
        mascot_stats::summary::geometric_mean(ipcs).expect("positive IPCs"),
        mis,
    )
}

fn main() {
    let (base_ipc, base_mis) = evaluate(MascotConfig::default(), "default");
    let mut t = TextTable::new(["configuration", "geomean IPC", "vs default", "mispredictions", "KiB"]);
    let mut row = |label: &str, cfg: MascotConfig| {
        let kib = cfg.storage_kib();
        let (ipc, mis) = evaluate(cfg, label);
        t.row([
            label.to_string(),
            ratio(ipc),
            format!("{:+.3}%", (ipc / base_ipc - 1.0) * 100.0),
            format!("{mis} ({:+.1}%)", (mis as f64 / base_mis.max(1) as f64 - 1.0) * 100.0),
            format!("{kib:.1}"),
        ]);
    };

    row("default (4-way)", MascotConfig::default());

    // 1. Associativity sweep at constant storage.
    for assoc in [1u32, 2, 8] {
        let cfg = MascotConfig {
            associativity: assoc,
            ..MascotConfig::default()
        };
        row(&format!("{assoc}-way"), cfg);
    }

    // 2. History schedules.
    row(
        "histories [0,1,2,4,8,16,32,64]",
        MascotConfig {
            history_lengths: vec![0, 1, 2, 4, 8, 16, 32, 64],
            ..MascotConfig::default()
        },
    );
    row(
        "PC-only (single table, 4K entries)",
        MascotConfig {
            history_lengths: vec![0],
            table_entries: vec![4096],
            tag_bits: vec![16],
            ..MascotConfig::default()
        },
    );

    // 3. Allocation usefulness.
    row(
        "dep alloc u=3 (weak)",
        MascotConfig {
            dep_alloc_usefulness: 3,
            ..MascotConfig::default()
        },
    );
    row(
        "nondep alloc u=6 (sticky non-deps)",
        MascotConfig {
            nondep_alloc_usefulness: 6,
            ..MascotConfig::default()
        },
    );

    // 4. Periodic decay (§IV-C: expected ~no change).
    row("periodic decay /4096", MascotConfig::default().with_periodic_decay(4096));
    row("periodic decay /512", MascotConfig::default().with_periodic_decay(512));

    // 5. Offset-bypass extension (§IV-E).
    row("offset-bypass extension", MascotConfig::default().with_offset_bypass());

    println!("== Ablations — MASCOT design choices (6-benchmark subset) ==");
    println!("{}", t.render());
    println!("expected shapes: 4-way ≈ 8-way > 1-way; geometric histories ≥ compressed;");
    println!("PC-only loses the §III-A contexts; sticky non-deps hurt; periodic decay ≈ no change (§IV-C);");
    println!("offset bypassing a small win (the Offset slice of Fig. 2 is thin).");
}
