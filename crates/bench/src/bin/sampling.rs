//! Sampled-simulation gate: trace-volume throughput and projection error
//! of cluster-and-project sampling vs full simulation (DESIGN.md §13).
//!
//! Modes:
//!
//! - `sampling` — measure and rewrite `BENCH_sampling.json` at the
//!   repository root (the committed baseline for future PRs).
//! - `sampling --check` — measure (median of [`CHECK_PASSES`] passes by
//!   speedup) and gate: aggregate trace-volume speedup must stay ≥
//!   [`MIN_SPEEDUP`]× and every cell's projected-IPC relative error within
//!   ±[`IPC_ERR_BOUND`]. Exits 2 with a re-baseline message if the
//!   committed baseline predates the sampling schema.
//! - `sampling --frontier` — sweep cluster counts k ∈ {4, 8, 16, 32} and
//!   print the speedup-vs-projection-error frontier (EXPERIMENTS.md).
//!
//! The suite runs [`LONG_UOPS`]-uop traces — 10× the harness default —
//! because that is the regime sampling exists for: the speedup gate
//! demonstrates the >10× win at exactly the trace length the ISSUE's
//! acceptance bar names.
//!
//! # What the speedup measures
//!
//! Sampling splits into *prep* (fingerprint + cluster the trace, then one
//! sequential functional warm pass that checkpoints architectural state at
//! each representative's window) and *measurement* (simulate the
//! representative windows in detail, project). Prep is a pure function of
//! `(trace, predictor, core, config)`; the harness caches it
//! ([`mascot_bench::cached_sampling_prep`]), exactly like SimPoint
//! checkpoints on disk — built once per trace, reused by every study that
//! sweeps that trace. The gated `speedup` is therefore the **marginal**
//! throughput of one more sampled experiment against full simulation, the
//! number that governs a predictor sweep; the one-time prep cost is
//! reported alongside (`prep_wall_ms`, and `cold_speedup` = the aggregate
//! including all prep), never hidden.

use mascot_bench::json::{scan_f64_field, JsonObject};
use mascot_bench::{run_one, run_one_sampled, PredictorKind, SamplingConfig, TextTable};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

/// One pointer-chasing, one streaming, one cache-resident control-heavy
/// profile — the three regimes whose interval mix differs most.
const WORKLOADS: [&str; 3] = ["perlbench2", "bwaves", "mcf"];
const KINDS: [PredictorKind; 2] = [PredictorKind::Mascot, PredictorKind::StoreSets];
/// 10× the harness default trace length ([`mascot_bench::DEFAULT_TRACE_UOPS`]).
const LONG_UOPS: usize = 1_500_000;
const SEED: u64 = 2025;

/// Gate: sampled trace-volume throughput (represented uops per second)
/// must be at least this multiple of full-simulation throughput.
const MIN_SPEEDUP: f64 = 10.0;
/// Gate: every cell's projected IPC must sit within this relative error of
/// the full reference run. The documented bound for the default
/// [`SamplingConfig`] (10k-uop intervals, k = 8, full-prefix functional
/// warm-up, 2k-uop detailed ramp).
const IPC_ERR_BOUND: f64 = 0.08;
/// Full `measure()` passes in `--check` mode; the median-by-speedup pass
/// is gated, so one bad scheduling window cannot flake the gate.
const CHECK_PASSES: usize = 3;

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sampling.json");

/// One (benchmark, predictor) comparison cell.
struct Cell {
    benchmark: String,
    predictor: String,
    full_ipc: f64,
    projected_ipc: f64,
    /// Signed relative error of the projected IPC vs the full run.
    rel_err: f64,
    /// Per-cell marginal trace-volume speedup (represented-uops/s over
    /// full-uops/s, prep amortised).
    speedup: f64,
    full_wall_ms: f64,
    sampled_wall_ms: f64,
    /// One-time prep cost for this cell (0 when the prep cache held it).
    prep_wall_ms: f64,
    simulated_uops: u64,
}

struct Measurement {
    cells: Vec<Cell>,
    /// Suite-aggregate marginal trace-volume speedup (prep amortised).
    speedup: f64,
    /// Aggregate speedup with every cell's one-time prep cost charged —
    /// what a from-scratch single-shot study would see.
    cold_speedup: f64,
    max_abs_err: f64,
    mean_abs_err: f64,
}

fn measure(cfg: &SamplingConfig) -> Measurement {
    let core = CoreConfig::golden_cove();
    let mut cells = Vec::new();
    let (mut full_uops, mut full_secs) = (0.0f64, 0.0f64);
    let (mut rep_uops, mut sampled_secs, mut prep_secs) = (0.0f64, 0.0f64, 0.0f64);
    let mut err = mascot_stats::ErrorBar::new();
    for name in WORKLOADS {
        let profile = spec::profile(name).expect("known benchmark");
        for kind in KINDS {
            let sampled = run_one_sampled(&profile, kind, &core, LONG_UOPS, SEED, cfg);
            let full = run_one(&profile, kind, &core, LONG_UOPS, SEED);
            let rel_err = mascot_stats::projection::relative_error(
                sampled.run.stats.ipc(),
                full.stats.ipc(),
            );
            err.record(sampled.run.stats.ipc(), full.stats.ipc());
            full_uops += full.stats.committed_uops as f64;
            full_secs += full.wall_ms / 1e3;
            rep_uops += sampled.represented_uops as f64;
            sampled_secs += sampled.run.wall_ms / 1e3;
            prep_secs += sampled.prep_wall_ms / 1e3;
            cells.push(Cell {
                benchmark: full.benchmark,
                predictor: full.predictor,
                full_ipc: full.stats.ipc(),
                projected_ipc: sampled.run.stats.ipc(),
                rel_err,
                speedup: sampled.run.uops_per_sec / full.uops_per_sec,
                full_wall_ms: full.wall_ms,
                sampled_wall_ms: sampled.run.wall_ms,
                prep_wall_ms: sampled.prep_wall_ms,
                simulated_uops: sampled.simulated_uops,
            });
        }
    }
    let full_rate = full_uops / full_secs;
    Measurement {
        cells,
        speedup: (rep_uops / sampled_secs) / full_rate,
        cold_speedup: (rep_uops / (sampled_secs + prep_secs)) / full_rate,
        max_abs_err: err.max_abs(),
        mean_abs_err: err.mean_abs(),
    }
}

fn render(m: &Measurement) -> String {
    let mut t = TextTable::new([
        "benchmark",
        "predictor",
        "full IPC",
        "proj IPC",
        "rel err",
        "speedup",
    ]);
    for c in &m.cells {
        t.row([
            c.benchmark.clone(),
            c.predictor.clone(),
            format!("{:.3}", c.full_ipc),
            format!("{:.3}", c.projected_ipc),
            format!("{:+.2}%", c.rel_err * 100.0),
            format!("{:.1}x", c.speedup),
        ]);
    }
    format!(
        "{}aggregate: {:.1}x marginal trace-volume speedup ({:.1}x with one-time \
         prep charged), IPC err mean {:.2}% max {:.2}% ({} uops, seed {SEED})\n",
        t.render(),
        m.speedup,
        m.cold_speedup,
        m.mean_abs_err * 100.0,
        m.max_abs_err * 100.0,
        LONG_UOPS
    )
}

fn to_json(m: &Measurement, cfg: &SamplingConfig) -> String {
    let rows: Vec<JsonObject> = m
        .cells
        .iter()
        .map(|c| {
            JsonObject::new()
                .str("benchmark", &c.benchmark)
                .str("predictor", &c.predictor)
                .float("full_ipc", c.full_ipc, 4)
                .float("projected_ipc", c.projected_ipc, 4)
                .float("rel_err", c.rel_err, 4)
                .float("speedup", c.speedup, 2)
                .float("full_wall_ms", c.full_wall_ms, 2)
                .float("sampled_wall_ms", c.sampled_wall_ms, 2)
                .float("prep_wall_ms", c.prep_wall_ms, 2)
                .int("simulated_uops", c.simulated_uops)
        })
        .collect();
    JsonObject::new()
        .int("long_uops", LONG_UOPS as u64)
        .int("interval_uops", cfg.interval_uops as u64)
        .int("clusters", cfg.clusters as u64)
        .int("warmup_uops", cfg.warmup_uops as u64)
        .int("seed", SEED)
        .float("speedup", m.speedup, 2)
        .float("cold_speedup", m.cold_speedup, 2)
        .float("max_abs_ipc_err", m.max_abs_err, 4)
        .float("mean_abs_ipc_err", m.mean_abs_err, 4)
        .rows("cells", &rows)
        .render()
}

/// Measures [`CHECK_PASSES`] times, returns the pass with the median
/// aggregate speedup (cells stay consistent with the aggregate).
fn measure_median(cfg: &SamplingConfig) -> Measurement {
    let mut passes: Vec<Measurement> = (0..CHECK_PASSES)
        .map(|i| {
            let m = measure(cfg);
            println!(
                "pass {}/{CHECK_PASSES}: {:.1}x speedup, max err {:.2}%",
                i + 1,
                m.speedup,
                m.max_abs_err * 100.0
            );
            m
        })
        .collect();
    passes.sort_by(|a, b| a.speedup.total_cmp(&b.speedup));
    passes.swap_remove(CHECK_PASSES / 2)
}

fn frontier() {
    let mut t = TextTable::new(["k", "sim uops", "speedup", "mean |err|", "max |err|"]);
    for k in [4usize, 8, 16, 32] {
        let cfg = SamplingConfig {
            clusters: k,
            ..SamplingConfig::default()
        };
        let m = measure(&cfg);
        let sim: u64 = m.cells.iter().map(|c| c.simulated_uops).sum();
        t.row([
            k.to_string(),
            sim.to_string(),
            format!("{:.1}x", m.speedup),
            format!("{:.2}%", m.mean_abs_err * 100.0),
            format!("{:.2}%", m.max_abs_err * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!("({} uops, mascot + store-sets over {:?}, seed {SEED})", LONG_UOPS, WORKLOADS);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--frontier") {
        frontier();
        return;
    }
    let check = args.iter().any(|a| a == "--check");
    let cfg = SamplingConfig::default();
    let m = if check { measure_median(&cfg) } else { measure(&cfg) };
    print!("{}", render(&m));

    if check {
        let baseline = match std::fs::read_to_string(BASELINE_PATH) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("no committed baseline at {BASELINE_PATH}: {e}");
                eprintln!("run `sampling` without --check to create it");
                std::process::exit(2);
            }
        };
        // Schema validation: a baseline from before the sampling schema
        // (or a hand-damaged one) cannot be gated against.
        for field in ["speedup", "max_abs_ipc_err", "mean_abs_ipc_err"] {
            if scan_f64_field(&baseline, field).is_none() {
                eprintln!("baseline {BASELINE_PATH} is missing field `{field}`");
                eprintln!("it predates the sampling schema: re-baseline with `sampling`");
                std::process::exit(2);
            }
        }
        let base_speedup = scan_f64_field(&baseline, "speedup").expect("validated above");
        println!("baseline speedup {base_speedup:.1}x, measured {:.1}x", m.speedup);
        let mut failed = false;
        if m.speedup < MIN_SPEEDUP {
            eprintln!(
                "FAIL: trace-volume speedup {:.1}x below the {MIN_SPEEDUP:.0}x floor",
                m.speedup
            );
            failed = true;
        }
        if m.max_abs_err > IPC_ERR_BOUND {
            eprintln!(
                "FAIL: worst projected-IPC error {:.2}% exceeds the ±{:.0}% bound",
                m.max_abs_err * 100.0,
                IPC_ERR_BOUND * 100.0
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("sampling check passed");
    } else {
        let json = to_json(&m, &cfg);
        std::fs::write(BASELINE_PATH, json).expect("write BENCH_sampling.json");
        println!("wrote {BASELINE_PATH}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_fields_round_trip() {
        let m = Measurement {
            cells: Vec::new(),
            speedup: 12.5,
            cold_speedup: 6.2,
            max_abs_err: 0.031,
            mean_abs_err: 0.012,
        };
        let json = to_json(&m, &SamplingConfig::default());
        assert_eq!(scan_f64_field(&json, "speedup"), Some(12.5));
        assert_eq!(scan_f64_field(&json, "max_abs_ipc_err"), Some(0.031));
        assert_eq!(scan_f64_field(&json, "mean_abs_ipc_err"), Some(0.012));
        assert_eq!(scan_f64_field(&json, "clusters"), Some(8.0));
        // A pre-schema baseline fails validation by missing these fields.
        assert_eq!(scan_f64_field("{}", "max_abs_ipc_err"), None);
    }
}
