//! Fig. 8: total mispredictions per predictor and their split into false
//! dependencies vs speculative errors.
//!
//! Paper headline: MASCOT reduces total errors by 98 % vs NoSQ and 85 % vs
//! PHAST; vs PHAST it cuts speculative errors by 39 % and false
//! dependencies by 91 %.

use mascot_bench::{run_suite, table::count, trace_uops_from_env, PredictorKind, TextTable};
use mascot_sim::CoreConfig;
use mascot_workloads::spec;

fn main() {
    let profiles = spec::all_profiles();
    let kinds = [PredictorKind::NoSq, PredictorKind::Phast, PredictorKind::Mascot];
    let results = run_suite(
        &profiles,
        &kinds,
        &CoreConfig::golden_cove(),
        trace_uops_from_env(),
        mascot_bench::DEFAULT_SEED,
    );
    let mut t = TextTable::new([
        "predictor",
        "total",
        "false deps",
        "speculative errors",
        "MPKI",
    ]);
    let mut totals = std::collections::HashMap::new();
    for kind in &kinds {
        let label = kind.label();
        let (mut total, mut false_d, mut spec_e, mut uops) = (0u64, 0u64, 0u64, 0u64);
        for r in results.iter().filter(|r| r.predictor == label) {
            total += r.stats.total_mispredictions();
            false_d += r.stats.false_dependencies;
            spec_e += r.stats.speculative_errors();
            uops += r.stats.committed_uops;
        }
        totals.insert(label.clone(), (total, false_d, spec_e));
        t.row([
            label.into_owned(),
            count(total),
            count(false_d),
            count(spec_e),
            format!("{:.3}", mascot_stats::summary::mpki(total, uops)),
        ]);
    }
    println!("== Fig. 8 — total mispredictions and their distribution ==");
    println!("{}", t.render());
    let m = totals["mascot"];
    let p = totals["phast"];
    let n = totals["nosq"];
    let red = |a: u64, b: u64| {
        if b == 0 {
            0.0
        } else {
            (1.0 - a as f64 / b as f64) * 100.0
        }
    };
    println!("mascot vs nosq:  total errors reduced {:.1}% (paper: 98%)", red(m.0, n.0));
    println!("mascot vs phast: total errors reduced {:.1}% (paper: 85%)", red(m.0, p.0));
    println!(
        "mascot vs phast: false dependencies reduced {:.1}% (paper: 91%), \
         speculative errors reduced {:.1}% (paper: 39%)",
        red(m.1, p.1),
        red(m.2, p.2)
    );
}
