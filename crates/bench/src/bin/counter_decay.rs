//! §III-A / footnote 1: how long a saturating counter takes to unlearn.
//!
//! Reproduces the paper's claim that a 3-bit usefulness counter initialised
//! to its maximum needs an expected ≈1,625 predictions to decay to zero when
//! the entry is correct 70 % of the time — the motivation for allocating
//! explicit non-dependence entries instead of waiting for decay.

use mascot_bench::TextTable;
use mascot_stats::markov::{expected_predictions_to_saturate, expected_predictions_to_zero};

fn main() {
    let mut t = TextTable::new(["counter", "p(correct)", "E[predictions to zero]"]);
    for (bits, label) in [(2u8, "2-bit"), (3, "3-bit (MASCOT usefulness)"), (4, "4-bit (PHAST)")] {
        for p in [0.5, 0.6, 0.7, 0.8] {
            let start = (1u8 << bits) - 1;
            let n = expected_predictions_to_zero(bits, start, p);
            t.row([label.to_string(), format!("{p:.1}"), format!("{n:.1}")]);
        }
    }
    println!("== §III-A — expected predictions for a max-initialised counter to decay ==");
    println!("{}", t.render());
    let headline = expected_predictions_to_zero(3, 7, 0.7);
    println!("paper footnote 1: 3-bit counter @ 70% correct -> 1,625; measured {headline:.1}\n");

    let mut t2 = TextTable::new(["counter", "p(bypassable)", "E[predictions to saturate]"]);
    for p in [0.7, 0.9, 0.99] {
        let n = expected_predictions_to_saturate(2, 1, p);
        t2.row(["2-bit bypass (from 1)".to_string(), format!("{p:.2}"), format!("{n:.2}")]);
    }
    println!("== §IV-E — predictions before the bypass counter trusts an entry ==");
    println!("{}", t2.render());
}
