//! Experiment harness: builds predictors, runs (benchmark × predictor ×
//! core) simulations in parallel, and aggregates results.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use mascot::MemDepPredictor;
use mascot_predictors::AnyPredictor;
// The registry of buildable predictor configurations lives in
// `mascot-predictors` (shared with `mascot-serve`); re-exported here so
// every figure/table binary keeps importing it from the harness.
pub use mascot_predictors::PredictorKind;
use mascot_sim::{simulate, CoreConfig, SimStats, Trace};
use mascot_workloads::{generate, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// Default trace length per benchmark (micro-ops).
pub const DEFAULT_TRACE_UOPS: usize = 150_000;
/// Default generation seed.
pub const DEFAULT_SEED: u64 = 2025;

/// Returns the trace for `(profile, seed, uops)`, generating it at most
/// once per process and sharing it read-only afterwards. A full suite run
/// is `|profiles| × |kinds|` simulations but only `|profiles|` distinct
/// traces; generation is a double-digit share of short runs, so every
/// caller on the (benchmark × predictor) cross product goes through here.
///
/// Keyed by the full profile (not just its name), so ad-hoc profiles with
/// colliding names stay distinct. The cache is a linear scan: suites hold
/// at most a few dozen entries and each hit saves milliseconds.
pub fn cached_trace(profile: &WorkloadProfile, seed: u64, trace_uops: usize) -> Arc<Trace> {
    type Key = (WorkloadProfile, u64, usize);
    type Slot = Arc<OnceLock<Arc<Trace>>>;
    static CACHE: OnceLock<Mutex<Vec<(Key, Slot)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    // The registry lock is held only to find/insert the key's slot, never
    // during generation, so workers building *different* traces proceed in
    // parallel; workers racing for the *same* trace rendezvous on the
    // slot's `OnceLock` and generate it exactly once.
    let slot: Slot = {
        let mut entries = cache.lock().expect("trace cache poisoned");
        match entries
            .iter()
            .find(|((p, s, u), _)| p == profile && *s == seed && *u == trace_uops)
        {
            Some((_, slot)) => Arc::clone(slot),
            None => {
                let slot = Slot::default();
                entries.push(((profile.clone(), seed, trace_uops), Arc::clone(&slot)));
                slot
            }
        }
    };
    Arc::clone(slot.get_or_init(|| Arc::new(generate(profile, seed, trace_uops))))
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Predictor label.
    pub predictor: String,
    /// Core configuration name.
    pub core: String,
    /// Full simulator statistics.
    pub stats: SimStats,
    /// Predictor storage (KiB).
    pub storage_kib: f64,
    /// Wall-clock time of the simulation itself (milliseconds), excluding
    /// trace generation and predictor construction.
    pub wall_ms: f64,
    /// Simulated micro-ops committed per wall-clock second.
    pub uops_per_sec: f64,
}

/// Computes the throughput fields from a finished run.
fn throughput_of(stats: &SimStats, wall: std::time::Duration) -> (f64, f64) {
    let secs = wall.as_secs_f64();
    let uops_per_sec = if secs > 0.0 {
        stats.committed_uops as f64 / secs
    } else {
        0.0
    };
    (secs * 1e3, uops_per_sec)
}

/// Trace length override from `MASCOT_TRACE_UOPS`, else the default.
pub fn trace_uops_from_env() -> usize {
    std::env::var("MASCOT_TRACE_UOPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TRACE_UOPS)
}

/// Runs one simulation against a caller-owned predictor (used by the
/// Figs. 13–14 experiments, which inspect predictor-internal state after
/// the run). `tuning_period` enables periodic §IV-F snapshots.
pub fn run_with_predictor(
    profile: &WorkloadProfile,
    predictor: &mut AnyPredictor,
    core: &CoreConfig,
    trace_uops: usize,
    seed: u64,
    tuning_period: Option<u64>,
) -> RunResult {
    let trace = cached_trace(profile, seed, trace_uops);
    let t0 = Instant::now();
    let sim = mascot_sim::Simulator::new(&trace, core, predictor);
    let sim = match tuning_period {
        Some(p) => sim.with_tuning_period(p),
        None => sim,
    };
    let stats = sim.run();
    let (wall_ms, uops_per_sec) = throughput_of(&stats, t0.elapsed());
    RunResult {
        benchmark: profile.name.to_string(),
        predictor: predictor.name().to_string(),
        core: core.name.clone(),
        stats,
        storage_kib: predictor.storage_kib(),
        wall_ms,
        uops_per_sec,
    }
}

/// Runs a caller-supplied trace (adversarial composers and other traces
/// that do not come from a [`WorkloadProfile`]) with a fresh predictor.
/// `tenant_split` enables per-tenant misprediction attribution at the
/// given PC boundary (see `mascot_sim::Simulator::with_tenant_split`).
pub fn run_trace(
    trace: &Trace,
    kind: PredictorKind,
    core: &CoreConfig,
    tenant_split: Option<u64>,
) -> RunResult {
    let mut predictor = kind.build();
    let t0 = Instant::now();
    let sim = mascot_sim::Simulator::new(trace, core, &mut predictor);
    let sim = match tenant_split {
        Some(boundary) => sim.with_tenant_split(boundary),
        None => sim,
    };
    let stats = sim.run();
    let (wall_ms, uops_per_sec) = throughput_of(&stats, t0.elapsed());
    RunResult {
        benchmark: trace.name.clone(),
        predictor: kind.label().into_owned(),
        core: core.name.clone(),
        stats,
        storage_kib: predictor.storage_kib(),
        wall_ms,
        uops_per_sec,
    }
}

/// Runs one (benchmark, predictor, core) combination.
pub fn run_one(
    profile: &WorkloadProfile,
    kind: PredictorKind,
    core: &CoreConfig,
    trace_uops: usize,
    seed: u64,
) -> RunResult {
    let trace = cached_trace(profile, seed, trace_uops);
    let mut predictor = kind.build();
    let t0 = Instant::now();
    let stats = simulate(&trace, core, &mut predictor);
    let (wall_ms, uops_per_sec) = throughput_of(&stats, t0.elapsed());
    RunResult {
        benchmark: profile.name.to_string(),
        predictor: kind.label().into_owned(),
        core: core.name.clone(),
        stats,
        storage_kib: predictor.storage_kib(),
        wall_ms,
        uops_per_sec,
    }
}

/// Runs the full cross product in parallel (one thread per combination,
/// bounded by the host's parallelism).
pub fn run_suite(
    profiles: &[WorkloadProfile],
    kinds: &[PredictorKind],
    core: &CoreConfig,
    trace_uops: usize,
    seed: u64,
) -> Vec<RunResult> {
    let jobs: Vec<(usize, &WorkloadProfile, PredictorKind)> = profiles
        .iter()
        .flat_map(|p| kinds.iter().map(move |&k| (p, k)))
        .enumerate()
        .map(|(i, (p, k))| (i, p, k))
        .collect();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    // One slot per job, written exactly once by the worker that claims the
    // job, then unwrapped in place — no intermediate collection.
    let slots: Vec<Mutex<Option<RunResult>>> =
        (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(idx, profile, kind)) = jobs.get(i) else {
                    break;
                };
                let result = run_one(profile, kind, core, trace_uops, seed);
                *slots[idx].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job produced a result")
        })
        .collect()
}

/// Finds the result for (benchmark, predictor) in a result set.
pub fn find<'a>(results: &'a [RunResult], benchmark: &str, predictor: &str) -> Option<&'a RunResult> {
    results
        .iter()
        .find(|r| r.benchmark == benchmark && r.predictor == predictor)
}

/// Per-benchmark IPC of `predictor` normalised to `baseline`.
pub fn normalized_ipc(results: &[RunResult], benchmark: &str, predictor: &str, baseline: &str) -> Option<f64> {
    let p = find(results, benchmark, predictor)?.stats.ipc();
    let b = find(results, benchmark, baseline)?.stats.ipc();
    mascot_stats::summary::normalize(p, b)
}

/// Geometric-mean normalised IPC of `predictor` vs `baseline` across all
/// benchmarks present in `results`.
pub fn geomean_normalized_ipc(
    results: &[RunResult],
    benchmarks: &[String],
    predictor: &str,
    baseline: &str,
) -> Option<f64> {
    let ratios: Option<Vec<f64>> = benchmarks
        .iter()
        .map(|b| normalized_ipc(results, b, predictor, baseline))
        .collect();
    mascot_stats::summary::geometric_mean(ratios?)
}

/// The distinct benchmark names in a result set, in first-seen order.
pub fn benchmarks(results: &[RunResult]) -> Vec<String> {
    let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut out = Vec::new();
    for r in results {
        // Dedupe on the borrowed name; clone only the first occurrence.
        if seen.insert(r.benchmark.as_str()) {
            out.push(r.benchmark.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot_workloads::spec;

    #[test]
    fn kinds_build_and_have_expected_sizes() {
        assert!((PredictorKind::Mascot.build().storage_kib() - 14.0).abs() < 0.01);
        assert!((PredictorKind::Phast.build().storage_kib() - 14.5).abs() < 0.01);
        assert!((PredictorKind::NoSq.build().storage_kib() - 19.0).abs() < 0.01);
        assert!((PredictorKind::MascotOpt(4).build().storage_kib() - 10.125).abs() < 0.01);
        assert_eq!(PredictorKind::PerfectMdp.build().storage_kib(), 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            PredictorKind::Mascot,
            PredictorKind::MascotMdp,
            PredictorKind::MascotOpt(0),
            PredictorKind::MascotOpt(4),
            PredictorKind::TageNoNd,
            PredictorKind::Phast,
            PredictorKind::NoSq,
            PredictorKind::StoreSets,
            PredictorKind::PerfectMdp,
            PredictorKind::PerfectMdpSmb,
        ];
        let labels: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn run_one_produces_complete_stats() {
        let profile = spec::profile("exchange2").unwrap();
        let r = run_one(
            &profile,
            PredictorKind::PerfectMdp,
            &CoreConfig::golden_cove(),
            20_000,
            1,
        );
        assert!(r.stats.committed_uops >= 20_000);
        assert!(r.stats.ipc() > 0.1);
        assert_eq!(r.benchmark, "exchange2");
    }

    #[test]
    fn suite_runner_covers_cross_product() {
        let profiles = vec![
            spec::profile("exchange2").unwrap(),
            spec::profile("bwaves").unwrap(),
        ];
        let kinds = [PredictorKind::PerfectMdp, PredictorKind::StoreSets];
        let results = run_suite(&profiles, &kinds, &CoreConfig::golden_cove(), 15_000, 3);
        assert_eq!(results.len(), 4);
        assert!(find(&results, "bwaves", "store-sets").is_some());
        let bs = benchmarks(&results);
        assert_eq!(bs, vec!["exchange2".to_string(), "bwaves".to_string()]);
    }

    #[test]
    fn normalized_ipc_handles_missing_entries() {
        let results: Vec<RunResult> = Vec::new();
        assert!(normalized_ipc(&results, "x", "mascot", "perfect-mdp").is_none());
        assert!(geomean_normalized_ipc(&results, &["x".to_string()], "mascot", "perfect-mdp")
            .is_none());
    }

    #[test]
    fn trace_uops_env_override() {
        // No env var set in the test environment: default applies.
        assert_eq!(trace_uops_from_env(), DEFAULT_TRACE_UOPS);
    }

    #[test]
    fn run_with_predictor_reports_inner_name_and_size() {
        let profile = spec::profile("exchange2").unwrap();
        let mut p = PredictorKind::MascotOpt(4).build();
        let r = run_with_predictor(
            &profile,
            &mut p,
            &CoreConfig::golden_cove(),
            10_000,
            1,
            None,
        );
        assert_eq!(r.predictor, "mascot");
        assert!((r.storage_kib - 10.125).abs() < 0.01);
        assert!(r.stats.committed_uops >= 10_000);
    }

    #[test]
    fn mdp_tage_kind_builds() {
        use mascot::MemDepPredictor;
        let p = PredictorKind::MdpTage.build();
        assert_eq!(p.name(), "mdp-tage");
        assert!((p.storage_kib() - 10.0).abs() < 0.01);
    }
}
