//! Experiment harness: builds predictors, runs (benchmark × predictor ×
//! core) simulations in parallel, and aggregates results.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use mascot::MemDepPredictor;
use mascot_predictors::AnyPredictor;
// The registry of buildable predictor configurations lives in
// `mascot-predictors` (shared with `mascot-serve`); re-exported here so
// every figure/table binary keeps importing it from the harness.
pub use mascot_predictors::PredictorKind;
pub use mascot_sampling::SamplingConfig;
use mascot_sampling::{ClusterPlan, WarmSet};
use mascot_sim::{simulate, CoreConfig, SimStats, Trace};
use mascot_workloads::{generate, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// Default trace length per benchmark (micro-ops).
pub const DEFAULT_TRACE_UOPS: usize = 150_000;
/// Default generation seed.
pub const DEFAULT_SEED: u64 = 2025;

/// Entry cap for the process-wide trace cache.
const TRACE_CACHE_MAX_ENTRIES: usize = 48;
/// Total requested-uop budget for the process-wide trace cache. Long-trace
/// sweeps (sampled-simulation gates run 10× traces) would otherwise pin
/// tens of millions of uops per distinct key for the process lifetime.
const TRACE_CACHE_MAX_UOPS: usize = 24_000_000;

type TraceKey = (WorkloadProfile, u64, usize);
type TraceSlot = Arc<OnceLock<Arc<Trace>>>;

struct TraceCacheEntry {
    key: TraceKey,
    slot: TraceSlot,
    last_used: u64,
}

/// A bounded LRU of generated traces, keyed by `(profile, seed, uops)`.
/// Kept separate from the static instance so the eviction policy is unit
/// testable on a fresh cache.
struct TraceCache {
    /// Entries plus a monotonic access tick, under one lock.
    inner: Mutex<(Vec<TraceCacheEntry>, u64)>,
    max_entries: usize,
    max_uops: usize,
}

impl TraceCache {
    const fn new(max_entries: usize, max_uops: usize) -> Self {
        Self {
            inner: Mutex::new((Vec::new(), 0)),
            max_entries,
            max_uops,
        }
    }

    fn get(&self, profile: &WorkloadProfile, seed: u64, trace_uops: usize) -> Arc<Trace> {
        // The registry lock is held only to find/insert the key's slot,
        // never during generation, so workers building *different* traces
        // proceed in parallel; workers racing for the *same* trace
        // rendezvous on the slot's `OnceLock` and generate it exactly once.
        // Eviction drops only the registry's reference — a worker holding a
        // slot for an evicted key finishes generating into its own `Arc`s.
        let slot: TraceSlot = {
            let mut guard = self.inner.lock().expect("trace cache poisoned");
            let (entries, tick) = &mut *guard;
            *tick += 1;
            let now = *tick;
            match entries
                .iter_mut()
                .find(|e| e.key.0 == *profile && e.key.1 == seed && e.key.2 == trace_uops)
            {
                Some(entry) => {
                    entry.last_used = now;
                    Arc::clone(&entry.slot)
                }
                None => {
                    // Evict least-recently-used entries until the new one
                    // fits both bounds (an oversized single trace still
                    // gets cached — the bounds limit *retention*, not
                    // admission, so the generate-once rendezvous works for
                    // any size).
                    while !entries.is_empty()
                        && (entries.len() >= self.max_entries
                            || entries.iter().map(|e| e.key.2).sum::<usize>() + trace_uops
                                > self.max_uops)
                    {
                        let lru = entries
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(i, _)| i)
                            .expect("checked non-empty");
                        entries.swap_remove(lru);
                    }
                    let slot = TraceSlot::default();
                    entries.push(TraceCacheEntry {
                        key: (profile.clone(), seed, trace_uops),
                        slot: Arc::clone(&slot),
                        last_used: now,
                    });
                    slot
                }
            }
        };
        Arc::clone(slot.get_or_init(|| Arc::new(generate(profile, seed, trace_uops))))
    }
}

/// Returns the trace for `(profile, seed, uops)`, generating it at most
/// once and sharing it read-only while it stays cached. A full suite run
/// is `|profiles| × |kinds|` simulations but only `|profiles|` distinct
/// traces; generation is a double-digit share of short runs, so every
/// caller on the (benchmark × predictor) cross product goes through here.
///
/// Keyed by the full profile (not just its name), so ad-hoc profiles with
/// colliding names stay distinct. The cache is a bounded LRU
/// ([`TRACE_CACHE_MAX_ENTRIES`] entries, [`TRACE_CACHE_MAX_UOPS`] total
/// requested uops): least-recently-used traces are dropped once either
/// bound is exceeded, so long-lived processes sweeping many long traces
/// don't accumulate every trace they ever touched. Lookup is a linear
/// scan — at the entry cap that's still trivially cheaper than the
/// milliseconds a hit saves.
pub fn cached_trace(profile: &WorkloadProfile, seed: u64, trace_uops: usize) -> Arc<Trace> {
    static CACHE: TraceCache = TraceCache::new(TRACE_CACHE_MAX_ENTRIES, TRACE_CACHE_MAX_UOPS);
    CACHE.get(profile, seed, trace_uops)
}

/// Entry cap for the process-wide sampling-prep cache. Each entry holds one
/// warm-up checkpoint per cluster (~1–2 MiB of cache tags and predictor
/// tables each), so the cap bounds resident memory to a few hundred MiB in
/// the worst case while still covering a whole benchmark × predictor sweep
/// at one configuration.
const PREP_CACHE_MAX_ENTRIES: usize = 6;

/// The reusable half of a sampled run for one `(trace, predictor, core,
/// config)` cell: the cluster plan and the per-cluster functional warm-up
/// checkpoints. Building this walks the trace twice (fingerprinting, then
/// the sequential architectural warm pass); measuring with it simulates
/// only `clusters × (warmup + interval)` uops.
#[derive(Debug)]
pub struct SamplingPrep {
    /// The clustering decision (predictor-independent).
    pub plan: ClusterPlan,
    /// Per-cluster warm-up checkpoints for this predictor kind.
    pub warm: WarmSet,
}

type PrepKey = (WorkloadProfile, u64, usize, String, CoreConfig, SamplingConfig);
type PrepSlot = Arc<OnceLock<Arc<SamplingPrep>>>;

/// Returns the sampling prep for a cell, building it at most once while it
/// stays cached (bounded LRU, same slot-rendezvous discipline as
/// [`cached_trace`]). This is what makes sampled *sweeps* fast: the plan
/// and warm checkpoints are a per-trace/per-predictor investment — itself
/// several times cheaper than one full simulation — after which every
/// further sampled run of that cell costs only its representative windows.
/// The SimPoint checkpoint workflow, in-process.
pub fn cached_sampling_prep(
    profile: &WorkloadProfile,
    trace: &Trace,
    kind: PredictorKind,
    core: &CoreConfig,
    seed: u64,
    trace_uops: usize,
    cfg: &SamplingConfig,
) -> Arc<SamplingPrep> {
    static CACHE: Mutex<(Vec<(PrepKey, PrepSlot, u64)>, u64)> = Mutex::new((Vec::new(), 0));
    let key: PrepKey = (
        profile.clone(),
        seed,
        trace_uops,
        kind.label().into_owned(),
        core.clone(),
        *cfg,
    );
    let slot: PrepSlot = {
        let mut guard = CACHE.lock().expect("prep cache poisoned");
        let (entries, tick) = &mut *guard;
        *tick += 1;
        let now = *tick;
        match entries.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, slot, last_used)) => {
                *last_used = now;
                Arc::clone(slot)
            }
            None => {
                while entries.len() >= PREP_CACHE_MAX_ENTRIES {
                    let lru = entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, _, last_used))| *last_used)
                        .map(|(i, _)| i)
                        .expect("checked non-empty");
                    entries.swap_remove(lru);
                }
                let slot = PrepSlot::default();
                entries.push((key, Arc::clone(&slot), now));
                slot
            }
        }
    };
    Arc::clone(slot.get_or_init(|| {
        let plan = mascot_sampling::plan(trace, cfg);
        let warm = mascot_sampling::warm_checkpoints(trace, &plan, kind, core, cfg);
        Arc::new(SamplingPrep { plan, warm })
    }))
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Predictor label.
    pub predictor: String,
    /// Core configuration name.
    pub core: String,
    /// Full simulator statistics.
    pub stats: SimStats,
    /// Predictor storage (KiB).
    pub storage_kib: f64,
    /// Wall-clock time of the simulation itself (milliseconds), excluding
    /// trace generation and predictor construction.
    pub wall_ms: f64,
    /// Simulated micro-ops committed per wall-clock second.
    pub uops_per_sec: f64,
}

/// Computes the throughput fields from a finished run.
fn throughput_of(stats: &SimStats, wall: std::time::Duration) -> (f64, f64) {
    let secs = wall.as_secs_f64();
    let uops_per_sec = if secs > 0.0 {
        stats.committed_uops as f64 / secs
    } else {
        0.0
    };
    (secs * 1e3, uops_per_sec)
}

/// Trace length override from `MASCOT_TRACE_UOPS`, else the default.
pub fn trace_uops_from_env() -> usize {
    std::env::var("MASCOT_TRACE_UOPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TRACE_UOPS)
}

/// Sampled-mode override from `MASCOT_SAMPLED` (any value other than empty
/// or `0` enables). When set, [`run_one`] — and therefore [`run_suite`] and
/// every figure/table binary built on them — transparently projects each
/// cell from representative intervals ([`run_one_sampled`] with the default
/// [`SamplingConfig`]) instead of simulating the whole trace.
pub fn sampled_from_env() -> bool {
    std::env::var("MASCOT_SAMPLED").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Runs one simulation against a caller-owned predictor (used by the
/// Figs. 13–14 experiments, which inspect predictor-internal state after
/// the run). `tuning_period` enables periodic §IV-F snapshots.
pub fn run_with_predictor(
    profile: &WorkloadProfile,
    predictor: &mut AnyPredictor,
    core: &CoreConfig,
    trace_uops: usize,
    seed: u64,
    tuning_period: Option<u64>,
) -> RunResult {
    let trace = cached_trace(profile, seed, trace_uops);
    let t0 = Instant::now();
    let sim = mascot_sim::Simulator::new(&trace, core, predictor);
    let sim = match tuning_period {
        Some(p) => sim.with_tuning_period(p),
        None => sim,
    };
    let stats = sim.run();
    let (wall_ms, uops_per_sec) = throughput_of(&stats, t0.elapsed());
    RunResult {
        benchmark: profile.name.to_string(),
        predictor: predictor.name().to_string(),
        core: core.name.clone(),
        stats,
        storage_kib: predictor.storage_kib(),
        wall_ms,
        uops_per_sec,
    }
}

/// Runs a caller-supplied trace (adversarial composers and other traces
/// that do not come from a [`WorkloadProfile`]) with a fresh predictor.
/// `tenant_split` enables per-tenant misprediction attribution at the
/// given PC boundary (see `mascot_sim::Simulator::with_tenant_split`).
pub fn run_trace(
    trace: &Trace,
    kind: PredictorKind,
    core: &CoreConfig,
    tenant_split: Option<u64>,
) -> RunResult {
    let mut predictor = kind.build();
    let t0 = Instant::now();
    let sim = mascot_sim::Simulator::new(trace, core, &mut predictor);
    let sim = match tenant_split {
        Some(boundary) => sim.with_tenant_split(boundary),
        None => sim,
    };
    let stats = sim.run();
    let (wall_ms, uops_per_sec) = throughput_of(&stats, t0.elapsed());
    RunResult {
        benchmark: trace.name.clone(),
        predictor: kind.label().into_owned(),
        core: core.name.clone(),
        stats,
        storage_kib: predictor.storage_kib(),
        wall_ms,
        uops_per_sec,
    }
}

/// Runs one (benchmark, predictor, core) combination. Honours the
/// `MASCOT_SAMPLED` override ([`sampled_from_env`]): when set, the cell is
/// projected from representative intervals instead of simulated end to end.
pub fn run_one(
    profile: &WorkloadProfile,
    kind: PredictorKind,
    core: &CoreConfig,
    trace_uops: usize,
    seed: u64,
) -> RunResult {
    if sampled_from_env() {
        return run_one_sampled(profile, kind, core, trace_uops, seed, &SamplingConfig::default())
            .run;
    }
    let trace = cached_trace(profile, seed, trace_uops);
    let mut predictor = kind.build();
    let t0 = Instant::now();
    let stats = simulate(&trace, core, &mut predictor);
    let (wall_ms, uops_per_sec) = throughput_of(&stats, t0.elapsed());
    RunResult {
        benchmark: profile.name.to_string(),
        predictor: kind.label().into_owned(),
        core: core.name.clone(),
        stats,
        storage_kib: predictor.storage_kib(),
        wall_ms,
        uops_per_sec,
    }
}

/// Runs the full cross product in parallel on the shared scoped worker
/// pool ([`mascot_sampling::parallel_map`]), bounded by the host's
/// parallelism, results in cross-product order.
pub fn run_suite(
    profiles: &[WorkloadProfile],
    kinds: &[PredictorKind],
    core: &CoreConfig,
    trace_uops: usize,
    seed: u64,
) -> Vec<RunResult> {
    let jobs: Vec<(&WorkloadProfile, PredictorKind)> = profiles
        .iter()
        .flat_map(|p| kinds.iter().map(move |&k| (p, k)))
        .collect();
    mascot_sampling::parallel_map(&jobs, |_, &(profile, kind)| {
        run_one(profile, kind, core, trace_uops, seed)
    })
}

/// The outcome of one *sampled* simulation run (DESIGN.md §13): projected
/// full-trace stats plus the sampling cost accounting.
#[derive(Debug, Clone)]
pub struct SampledRunResult {
    /// The projected result, shaped like a normal [`RunResult`] so every
    /// downstream table/figure helper works unchanged. `stats` holds the
    /// cluster-weighted projection; `wall_ms`/`uops_per_sec` measure the
    /// *measurement* (representative-window simulation + projection)
    /// against the uops it represents — the marginal trace-volume
    /// throughput once the cell's prep is built, which is what the
    /// speedup gate compares. One-time prep cost is reported separately in
    /// [`prep_wall_ms`](Self::prep_wall_ms).
    pub run: RunResult,
    /// Uops actually simulated in detail (detailed warm-ups included).
    pub simulated_uops: u64,
    /// Uops the projection stands in for (the full trace).
    pub represented_uops: u64,
    /// Wall-clock spent building this cell's [`SamplingPrep`] (fingerprint
    /// + clustering + the sequential functional warm pass) — `0.0` when
    /// the prep cache already held it. Amortised across every sampled run
    /// of the same cell, the SimPoint checkpoint economics.
    pub prep_wall_ms: f64,
}

/// Runs one (benchmark, predictor, core) combination in sampled mode:
/// cluster the trace's intervals, functionally warm one checkpoint per
/// cluster (cached via [`cached_sampling_prep`]), simulate each cluster's
/// representative window and project full-trace stats
/// ([`mascot_sampling::run_sampled_with`]).
pub fn run_one_sampled(
    profile: &WorkloadProfile,
    kind: PredictorKind,
    core: &CoreConfig,
    trace_uops: usize,
    seed: u64,
    cfg: &SamplingConfig,
) -> SampledRunResult {
    let trace = cached_trace(profile, seed, trace_uops);
    let p0 = Instant::now();
    let prep = cached_sampling_prep(profile, &trace, kind, core, seed, trace_uops, cfg);
    let prep_wall_ms = p0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let out = mascot_sampling::run_sampled_with(&trace, &prep.plan, &prep.warm, core, cfg);
    let secs = t0.elapsed().as_secs_f64();
    let uops_per_sec = if secs > 0.0 {
        out.represented_uops as f64 / secs
    } else {
        0.0
    };
    SampledRunResult {
        run: RunResult {
            benchmark: profile.name.to_string(),
            predictor: kind.label().into_owned(),
            core: core.name.clone(),
            stats: out.projected,
            storage_kib: kind.build().storage_kib(),
            wall_ms: secs * 1e3,
            uops_per_sec,
        },
        simulated_uops: out.simulated_uops,
        represented_uops: out.represented_uops,
        prep_wall_ms,
    }
}

/// Sampled-mode [`run_suite`]: the same cross product, each cell projected
/// from representative intervals instead of simulated end to end. The
/// per-cell pipeline already fans its representatives out on the worker
/// pool, so cells run sequentially here rather than nesting pools.
pub fn run_suite_sampled(
    profiles: &[WorkloadProfile],
    kinds: &[PredictorKind],
    core: &CoreConfig,
    trace_uops: usize,
    seed: u64,
    cfg: &SamplingConfig,
) -> Vec<SampledRunResult> {
    profiles
        .iter()
        .flat_map(|p| kinds.iter().map(move |&k| (p, k)))
        .map(|(p, k)| run_one_sampled(p, k, core, trace_uops, seed, cfg))
        .collect()
}

/// Finds the result for (benchmark, predictor) in a result set.
pub fn find<'a>(results: &'a [RunResult], benchmark: &str, predictor: &str) -> Option<&'a RunResult> {
    results
        .iter()
        .find(|r| r.benchmark == benchmark && r.predictor == predictor)
}

/// Per-benchmark IPC of `predictor` normalised to `baseline`.
pub fn normalized_ipc(results: &[RunResult], benchmark: &str, predictor: &str, baseline: &str) -> Option<f64> {
    let p = find(results, benchmark, predictor)?.stats.ipc();
    let b = find(results, benchmark, baseline)?.stats.ipc();
    mascot_stats::summary::normalize(p, b)
}

/// Geometric-mean normalised IPC of `predictor` vs `baseline` across all
/// benchmarks present in `results`.
pub fn geomean_normalized_ipc(
    results: &[RunResult],
    benchmarks: &[String],
    predictor: &str,
    baseline: &str,
) -> Option<f64> {
    let ratios: Option<Vec<f64>> = benchmarks
        .iter()
        .map(|b| normalized_ipc(results, b, predictor, baseline))
        .collect();
    mascot_stats::summary::geometric_mean(ratios?)
}

/// The distinct benchmark names in a result set, in first-seen order.
pub fn benchmarks(results: &[RunResult]) -> Vec<String> {
    let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut out = Vec::new();
    for r in results {
        // Dedupe on the borrowed name; clone only the first occurrence.
        if seen.insert(r.benchmark.as_str()) {
            out.push(r.benchmark.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot_workloads::spec;

    #[test]
    fn kinds_build_and_have_expected_sizes() {
        assert!((PredictorKind::Mascot.build().storage_kib() - 14.0).abs() < 0.01);
        assert!((PredictorKind::Phast.build().storage_kib() - 14.5).abs() < 0.01);
        assert!((PredictorKind::NoSq.build().storage_kib() - 19.0).abs() < 0.01);
        assert!((PredictorKind::MascotOpt(4).build().storage_kib() - 10.125).abs() < 0.01);
        assert_eq!(PredictorKind::PerfectMdp.build().storage_kib(), 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            PredictorKind::Mascot,
            PredictorKind::MascotMdp,
            PredictorKind::MascotOpt(0),
            PredictorKind::MascotOpt(4),
            PredictorKind::TageNoNd,
            PredictorKind::Phast,
            PredictorKind::NoSq,
            PredictorKind::StoreSets,
            PredictorKind::PerfectMdp,
            PredictorKind::PerfectMdpSmb,
        ];
        let labels: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn run_one_produces_complete_stats() {
        let profile = spec::profile("exchange2").unwrap();
        let r = run_one(
            &profile,
            PredictorKind::PerfectMdp,
            &CoreConfig::golden_cove(),
            20_000,
            1,
        );
        assert!(r.stats.committed_uops >= 20_000);
        assert!(r.stats.ipc() > 0.1);
        assert_eq!(r.benchmark, "exchange2");
    }

    #[test]
    fn suite_runner_covers_cross_product() {
        let profiles = vec![
            spec::profile("exchange2").unwrap(),
            spec::profile("bwaves").unwrap(),
        ];
        let kinds = [PredictorKind::PerfectMdp, PredictorKind::StoreSets];
        let results = run_suite(&profiles, &kinds, &CoreConfig::golden_cove(), 15_000, 3);
        assert_eq!(results.len(), 4);
        assert!(find(&results, "bwaves", "store-sets").is_some());
        let bs = benchmarks(&results);
        assert_eq!(bs, vec!["exchange2".to_string(), "bwaves".to_string()]);
    }

    #[test]
    fn normalized_ipc_handles_missing_entries() {
        let results: Vec<RunResult> = Vec::new();
        assert!(normalized_ipc(&results, "x", "mascot", "perfect-mdp").is_none());
        assert!(geomean_normalized_ipc(&results, &["x".to_string()], "mascot", "perfect-mdp")
            .is_none());
    }

    #[test]
    fn trace_cache_caps_entries_and_evicts_lru() {
        let cache = TraceCache::new(4, usize::MAX);
        let profile = spec::profile("exchange2").unwrap();
        // Fill the cache with 4 distinct keys (seeds 0..4).
        let traces: Vec<Arc<Trace>> = (0..4).map(|s| cache.get(&profile, s, 200)).collect();
        // Touch seed 0 so seed 1 becomes the least recently used.
        assert!(Arc::ptr_eq(&cache.get(&profile, 0, 200), &traces[0]));
        // A fifth key evicts exactly one entry: seed 1.
        let _ = cache.get(&profile, 4, 200);
        assert!(
            Arc::ptr_eq(&cache.get(&profile, 0, 200), &traces[0]),
            "recently touched entry survives"
        );
        // Seed 1 was evicted, so this access regenerates (which in turn
        // evicts the new LRU) — a fresh allocation, not the cached one.
        assert!(
            !Arc::ptr_eq(&cache.get(&profile, 1, 200), &traces[1]),
            "LRU entry was evicted and regenerated"
        );
    }

    #[test]
    fn trace_cache_respects_uop_budget_but_admits_oversized_traces() {
        let cache = TraceCache::new(usize::MAX, 1_000);
        let profile = spec::profile("exchange2").unwrap();
        let small = cache.get(&profile, 1, 400);
        let _ = cache.get(&profile, 2, 400);
        // 400 + 400 + 400 > 1000: inserting a third evicts the oldest.
        let _ = cache.get(&profile, 3, 400);
        assert!(!Arc::ptr_eq(&cache.get(&profile, 1, 400), &small));
        // A single trace over the whole budget is still generated once and
        // cached (bounds limit retention, not admission)…
        let big = cache.get(&profile, 9, 2_000);
        assert!(Arc::ptr_eq(&cache.get(&profile, 9, 2_000), &big));
        // …at the cost of evicting everything else.
        let (entries, _) = &*cache.inner.lock().unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn sampled_run_projects_plausible_stats() {
        let profile = spec::profile("exchange2").unwrap();
        let cfg = SamplingConfig {
            interval_uops: 2_000,
            clusters: 5,
            warmup_uops: 1_000,
            ..SamplingConfig::default()
        };
        let sampled = run_one_sampled(
            &profile,
            PredictorKind::Mascot,
            &CoreConfig::golden_cove(),
            30_000,
            1,
            &cfg,
        );
        assert!(sampled.simulated_uops < sampled.represented_uops);
        assert_eq!(sampled.run.benchmark, "exchange2");
        let full = run_one(
            &profile,
            PredictorKind::Mascot,
            &CoreConfig::golden_cove(),
            30_000,
            1,
        );
        // Projected committed-uop total equals the trace length by
        // construction (weights cover the trace; every uop commits).
        assert_eq!(
            sampled.run.stats.committed_uops,
            full.stats.committed_uops
        );
        let err = mascot_stats::projection::relative_error(
            sampled.run.stats.ipc(),
            full.stats.ipc(),
        );
        assert!(err.abs() < 0.25, "projected IPC off by {err:+.3}");
    }

    #[test]
    fn trace_uops_env_override() {
        // No env var set in the test environment: default applies.
        assert_eq!(trace_uops_from_env(), DEFAULT_TRACE_UOPS);
    }

    #[test]
    fn run_with_predictor_reports_inner_name_and_size() {
        let profile = spec::profile("exchange2").unwrap();
        let mut p = PredictorKind::MascotOpt(4).build();
        let r = run_with_predictor(
            &profile,
            &mut p,
            &CoreConfig::golden_cove(),
            10_000,
            1,
            None,
        );
        assert_eq!(r.predictor, "mascot");
        assert!((r.storage_kib - 10.125).abs() < 0.01);
        assert!(r.stats.committed_uops >= 10_000);
    }

    #[test]
    fn mdp_tage_kind_builds() {
        use mascot::MemDepPredictor;
        let p = PredictorKind::MdpTage.build();
        assert_eq!(p.name(), "mdp-tage");
        assert!((p.storage_kib() - 10.0).abs() < 0.01);
    }
}
