//! # mascot-bench — the experiment harness
//!
//! Regenerates every table and figure of the MASCOT paper's evaluation.
//! Each `figure*`/`table*` binary under `src/bin/` runs the relevant
//! (benchmark × predictor × core) sweep through the [`harness`] and prints
//! the same rows/series the paper reports; `all_experiments` runs the lot.
//!
//! See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
pub mod json;
pub mod table;

pub use harness::{
    benchmarks, cached_sampling_prep, cached_trace, find, geomean_normalized_ipc, normalized_ipc,
    run_one, run_one_sampled, run_suite, run_suite_sampled, run_trace, run_with_predictor,
    sampled_from_env, trace_uops_from_env, PredictorKind, RunResult, SampledRunResult,
    SamplingConfig, SamplingPrep, DEFAULT_SEED, DEFAULT_TRACE_UOPS,
};
pub use table::TextTable;
