//! Minimal JSON writing/scanning helpers for benchmark baselines.
//!
//! The build is offline (no `serde_json`), and the only JSON this workspace
//! handles is machine-written benchmark baselines (`BENCH_*.json`): flat
//! objects plus one array of flat row objects. [`JsonObject`] writes that
//! shape; [`scan_f64_field`] pulls a numeric field back out of a file this
//! module wrote — a field scan is sufficient because the input is always
//! our own output, and malformed files simply yield `None`.

use std::fmt::Write as _;

/// Builds a pretty-printed JSON object, field by field.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

/// Escapes a string for use inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field rendered with the given number of decimals.
    pub fn float(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.fields.push((key.to_string(), format!("{value:.decimals$}")));
        self
    }

    /// Adds an array-of-objects field; each row renders on its own line.
    pub fn rows(mut self, key: &str, rows: &[JsonObject]) -> Self {
        let mut s = String::from("[\n");
        for (i, row) in rows.iter().enumerate() {
            let _ = write!(s, "    {}", row.render_inline());
            s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]");
        self.fields.push((key.to_string(), s));
        self
    }

    /// Renders the object on a single line (used for array rows).
    pub fn render_inline(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": {v}", escape(k));
        }
        s.push('}');
        s
    }

    /// Renders the object pretty-printed, one field per line, with a
    /// trailing newline (the `BENCH_*.json` on-disk format).
    pub fn render(&self) -> String {
        let mut s = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let _ = write!(s, "  \"{}\": {v}", escape(k));
            s.push_str(if i + 1 < self.fields.len() { ",\n" } else { "\n" });
        }
        s.push_str("}\n");
        s
    }
}

/// Pulls `"key": <number>` out of a JSON string written by [`JsonObject`].
/// Returns `None` if the field is absent or not a plain number.
pub fn scan_f64_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_object() {
        let j = JsonObject::new()
            .int("uops", 40_000)
            .float("aggregate", 123456.789, 0)
            .str("note", "a\"b");
        let s = j.render();
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("\"uops\": 40000,\n"));
        assert!(s.contains("\"aggregate\": 123457,\n"));
        assert!(s.contains("\"note\": \"a\\\"b\"\n"));
    }

    #[test]
    fn renders_rows_one_per_line() {
        let rows = [
            JsonObject::new().str("b", "x").float("v", 1.25, 2),
            JsonObject::new().str("b", "y").float("v", 2.5, 2),
        ];
        let s = JsonObject::new().rows("runs", &rows).render();
        assert!(s.contains("\"runs\": [\n"));
        assert!(s.contains("    {\"b\": \"x\", \"v\": 1.25},\n"));
        assert!(s.contains("    {\"b\": \"y\", \"v\": 2.50}\n"));
    }

    #[test]
    fn scan_reads_own_output() {
        let s = JsonObject::new()
            .float("aggregate_uops_per_sec", 3_064_212.0, 0)
            .render();
        assert_eq!(scan_f64_field(&s, "aggregate_uops_per_sec"), Some(3_064_212.0));
        assert_eq!(scan_f64_field(&s, "missing"), None);
        assert_eq!(scan_f64_field("{}", "aggregate_uops_per_sec"), None);
    }
}
