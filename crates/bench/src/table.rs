//! Plain-text table rendering for experiment outputs.
//!
//! Every figure/table binary prints aligned text tables so results can be
//! compared against the paper and recorded in EXPERIMENTS.md without a
//! plotting stack.

/// A column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as e.g. `0.983`.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with sign, e.g. `+1.9%`.
pub fn pct(x: f64) -> String {
    format!("{x:+.2}%")
}

/// Formats a fraction (0..1) as a percentage, e.g. `38.2%`.
pub fn frac_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a wall-clock duration in milliseconds, e.g. `12.9 ms`.
pub fn ms(x: f64) -> String {
    format!("{x:.1} ms")
}

/// Formats a simulation rate in millions of µops per second, e.g. `3.11`.
pub fn muops_per_sec(uops_per_sec: f64) -> String {
    format!("{:.2}", uops_per_sec / 1e6)
}

/// Formats a count with thousands separators.
pub fn count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["bench", "ipc"]);
        t.row(["perlbench2", "1.234"]);
        t.row(["xz", "0.9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[2].ends_with("1.234"));
        // All rows are equally wide.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(0.98265), "0.983");
        assert_eq!(pct(1.9), "+1.90%");
        assert_eq!(pct(-0.13), "-0.13%");
        assert_eq!(frac_pct(0.382), "38.2%");
        assert_eq!(count(1_234_567), "1,234,567");
        assert_eq!(count(12), "12");
        assert_eq!(ms(12.94), "12.9 ms");
        assert_eq!(muops_per_sec(3_110_000.0), "3.11");
    }
}
