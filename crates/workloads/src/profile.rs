//! Workload profile: the knobs that shape a synthetic benchmark.
//!
//! Each SPEC CPU 2017 benchmark in the paper's evaluation is represented by
//! a [`WorkloadProfile`] controlling the four axes that drive MDP/SMB
//! predictor behaviour (DESIGN.md §1):
//!
//! 1. *how often* loads alias in-flight stores (pair counts vs streaming),
//! 2. *at what store distance* (filler stores between pair halves),
//! 3. *how strongly* the aliasing correlates with branch history
//!    (conditional-store hammocks — the paper's §III-A motif), and
//! 4. the *size/alignment class* of each pair (the Fig. 2 census).

use serde::{Deserialize, Serialize};

/// Per-class weights for dependent load/store pairs, in Fig. 2 order:
/// `[DirectBypass, NoOffset, Offset, MdpOnly]`.
pub type ClassMix = [f64; 4];

/// The shape of one synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name as reported in the paper's figures.
    pub name: &'static str,
    /// Conditional-alias hammocks per iteration: `branch; if taken {store};
    /// ...; load` — the load depends on the store only in the taken context
    /// (§III-A). These are MASCOT's signature opportunity.
    pub hammocks: usize,
    /// Probability a hammock branch is taken (the store executes).
    pub hammock_bias: f64,
    /// Unconditional spill/fill pairs per iteration (always-dependent, fixed
    /// distance: the easy MDP/SMB wins).
    pub spill_fills: usize,
    /// Class mix sampled for pair sites at program-construction time.
    pub class_mix: ClassMix,
    /// Independent streaming loads per iteration.
    pub stream_loads: usize,
    /// Pointer-chase loads per iteration (each load's address depends on the
    /// previous load's value: serialising, latency-sensitive).
    pub chase_loads: usize,
    /// Filler ALU micro-ops per iteration.
    pub alu_per_iter: usize,
    /// Fraction of filler ALU ops with long (4-cycle) latency.
    pub long_alu_frac: f64,
    /// Guarded filler stores between a pair's store and load: each is its
    /// own 50/50 branch + conditional scratch store, adding both distance
    /// noise and history dilution.
    pub distance_noise: usize,
    /// Extra context branches per iteration, unrelated to any dependence.
    pub noise_branches: usize,
    /// Taken bias of the noise branches.
    pub noise_branch_bias: f64,
    /// Probability that a noise branch is pure coin-flip rather than a
    /// repeating pattern (drives branch MPKI).
    pub branch_entropy: f64,
    /// Streaming footprint in 64-byte lines (cache pressure).
    pub footprint_lines: u64,
    /// Indirect branches per iteration.
    pub indirect_branches: usize,
    /// Distinct indirect targets cycled through.
    pub indirect_targets: usize,
    /// Latency of the ALU producing each pair store's data: larger values
    /// make the store's data arrive later, so bypassing matters more.
    pub store_data_latency: u8,
    /// Dependent ALU consumers per pair load (value sensitivity: how much a
    /// late load value stalls the window). Profiles with 2 or more consumers
    /// also branch on the loaded value (see the generator), the paper's
    /// §VI-A perlbench effect.
    pub load_consumers: usize,
    /// Loads per pair site whose *address* depends on the pair load's value
    /// (hash-lookup style): early load values directly accelerate later
    /// memory accesses.
    pub coupled_loads: usize,
    /// Distinct static code copies of the iteration body (inlining /
    /// unrolling): multiplies the static PC footprint, pressuring predictor
    /// capacity and tag widths.
    pub code_contexts: usize,
    /// Latency of the address-generation chain feeding each pair load.
    /// SMB's headline benefit is breaking the dependence on load/store
    /// addresses: a late-arriving load address stalls MDP forwarding but
    /// not a bypass. 0 = addresses always ready.
    pub load_addr_latency: u8,
    /// Store-chase hops per iteration: `store node; load node; -> next
    /// hop's address` — a serial chain *through memory* (linked-list
    /// update/traverse). MDP forwarding leaves the chain serial; bypassing
    /// breaks it hop-parallel (speculative memory cloaking), the paper's
    /// peak-gain structure (perlbench, §VI-A).
    pub store_chase: usize,
}

impl WorkloadProfile {
    /// A balanced default profile, used as the base for the SPEC presets.
    pub fn base(name: &'static str) -> Self {
        Self {
            name,
            hammocks: 2,
            hammock_bias: 0.7,
            spill_fills: 2,
            class_mix: [0.6, 0.15, 0.1, 0.15],
            stream_loads: 4,
            chase_loads: 1,
            alu_per_iter: 10,
            long_alu_frac: 0.2,
            distance_noise: 1,
            noise_branches: 2,
            noise_branch_bias: 0.75,
            branch_entropy: 0.2,
            footprint_lines: 512,
            indirect_branches: 0,
            indirect_targets: 4,
            store_data_latency: 4,
            load_consumers: 2,
            coupled_loads: 0,
            code_contexts: 4,
            load_addr_latency: 4,
            store_chase: 0,
        }
    }

    /// Loads emitted per iteration.
    pub fn loads_per_iter(&self) -> usize {
        self.hammocks + self.spill_fills + self.stream_loads + self.chase_loads
            + (self.hammocks + self.spill_fills) * self.coupled_loads
            + self.store_chase
    }

    /// Expected fraction of loads with a *recent* (small-distance)
    /// dependence — an analytic estimate of the Fig. 2 bar height.
    pub fn expected_dependent_fraction(&self) -> f64 {
        let dependent = self.hammocks as f64 * self.hammock_bias
            + self.spill_fills as f64
            + self.store_chase as f64;
        dependent / self.loads_per_iter() as f64
    }

    /// Validates knob ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.loads_per_iter() == 0 {
            return Err(format!("{}: profile emits no loads", self.name));
        }
        for (v, what) in [
            (self.hammock_bias, "hammock_bias"),
            (self.noise_branch_bias, "noise_branch_bias"),
            (self.branch_entropy, "branch_entropy"),
            (self.long_alu_frac, "long_alu_frac"),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {what} must be in [0, 1]", self.name));
            }
        }
        let sum: f64 = self.class_mix.iter().sum();
        if sum <= 0.0 || self.class_mix.iter().any(|&w| w < 0.0) {
            return Err(format!("{}: class_mix must be non-negative and non-zero", self.name));
        }
        if self.footprint_lines == 0 {
            return Err(format!("{}: footprint must be non-zero", self.name));
        }
        if self.indirect_branches > 0 && self.indirect_targets == 0 {
            return Err(format!("{}: indirect branches need targets", self.name));
        }
        if self.code_contexts == 0 || self.code_contexts > 256 {
            return Err(format!("{}: code_contexts must be in 1..=256", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_profile_is_valid() {
        WorkloadProfile::base("test").validate().unwrap();
    }

    #[test]
    fn dependent_fraction_estimate() {
        let p = WorkloadProfile {
            hammocks: 2,
            hammock_bias: 0.5,
            spill_fills: 3,
            stream_loads: 4,
            chase_loads: 1,
            ..WorkloadProfile::base("t")
        };
        // (2*0.5 + 3) / 10 = 0.4
        assert!((p.expected_dependent_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_no_loads() {
        let p = WorkloadProfile {
            hammocks: 0,
            spill_fills: 0,
            stream_loads: 0,
            chase_loads: 0,
            ..WorkloadProfile::base("t")
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_bias() {
        let p = WorkloadProfile {
            hammock_bias: 1.5,
            ..WorkloadProfile::base("t")
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_class_mix() {
        let p = WorkloadProfile {
            class_mix: [0.0; 4],
            ..WorkloadProfile::base("t")
        };
        assert!(p.validate().is_err());
    }
}
