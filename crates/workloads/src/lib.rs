//! # mascot-workloads — synthetic SPEC CPU 2017-like trace generators
//!
//! The paper evaluates on SPEC CPU 2017 SimPoints, which are not
//! redistributable; this crate provides parameterised synthetic equivalents
//! that exercise the same predictor code paths (see DESIGN.md §1 for the
//! substitution rationale). Each benchmark is a [`WorkloadProfile`]
//! controlling alias frequency, store-distance structure, branch-correlated
//! dependence patterns and the Fig. 2 class mix; [`generate`] lowers a
//! profile into a micro-op [`mascot_sim::Trace`] with exact ground-truth
//! dependence annotations.
//!
//! ```
//! use mascot_workloads::{generate, spec};
//!
//! let profile = spec::profile("perlbench2").expect("known benchmark");
//! let trace = generate(&profile, 1, 50_000);
//! assert_eq!(trace.name, "perlbench2");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversarial;
pub mod generator;
pub mod interval;
pub mod profile;
pub mod spec;

pub use adversarial::{compose, victim_only, AttackKind, TENANT_BOUNDARY};
pub use generator::{generate, TraceBuilder};
pub use interval::{intervals, slice};
pub use profile::{ClassMix, WorkloadProfile};
