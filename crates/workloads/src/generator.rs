//! Deterministic synthetic trace generation with exact ground truth.
//!
//! The generator lowers a [`WorkloadProfile`] into a static "program" of
//! sites with fixed PCs, registers, and memory slots, then emits iterations
//! of that program with seeded randomness for branch directions. Ground
//! truth is computed by replaying every store into a byte-granular
//! last-writer map: each load is annotated with its youngest overlapping
//! prior store (distance, Fig. 2 class, store PC and branch span), which is
//! exactly the information the simulator's LSQ and the oracle predictors
//! need.

use std::collections::HashMap;

use mascot_sim::uop::{Trace, TraceDep, Uop};
use mascot_sim::BypassClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::WorkloadProfile;

const SLOT_BASE: u64 = 0x1000_0000;
const SCRATCH_BASE: u64 = 0x2000_0000;
const STREAM_BASE: u64 = 0x3000_0000;
const CHASE_BASE: u64 = 0x4000_0000;
const PC_BASE: u64 = 0x40_0000;

/// Register map: 0..8 fixed scratch (stream/chase/scratch-data/address),
/// 8..16 store-data producers, 16..24 pair-load destinations, 24..32 chain
/// store data, 32..48 consumer chains, 48..56 chain load destinations,
/// 56..64 filler ALUs. The banks are disjoint so unrelated sites never
/// create accidental register dependencies.
const STORE_DATA_REG_BASE: u8 = 8;
const LOAD_DST_REG_BASE: u8 = 16;
const CONSUMER_REG_BASE: u8 = 32;
const SCRATCH_DATA_REG: u8 = 5;
const STREAM_DST_REG: u8 = 3;
const CHASE_REG: u8 = 4;
const ADDR_REG: u8 = 6;
const CHAIN_BASE: u64 = 0x5000_0000;
const CHAIN_DATA_REG_BASE: u8 = 24;
const CHAIN_DST_REG_BASE: u8 = 48;

#[derive(Debug)]
struct StoreRec {
    addr: u64,
    size: u8,
    pc: u64,
    branches_at: u64,
}

/// Incrementally builds a trace while tracking ground-truth dependencies.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    uops: Vec<Uop>,
    stores: Vec<StoreRec>,
    byte_writer: HashMap<u64, u32>,
    branch_count: u64,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of micro-ops emitted so far.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Emits an ALU micro-op.
    pub fn alu(&mut self, pc: u64, srcs: [Option<u8>; 2], dst: Option<u8>, latency: u8) {
        self.uops.push(Uop::alu(pc, srcs, dst, latency));
    }

    /// Emits a conditional branch.
    pub fn branch(&mut self, pc: u64, taken: bool, src: Option<u8>) {
        self.uops.push(Uop::branch(pc, taken, pc + 16, src));
        self.branch_count += 1;
    }

    /// Emits an indirect branch.
    pub fn indirect(&mut self, pc: u64, target: u64, src: Option<u8>) {
        self.uops.push(Uop::indirect_branch(pc, target, src));
        self.branch_count += 1;
    }

    /// Emits a store and records it as the last writer of its bytes.
    pub fn store(&mut self, pc: u64, addr: u64, size: u8, data_reg: u8) {
        let number = self.stores.len() as u32;
        self.uops.push(Uop::store(pc, addr, size, None, Some(data_reg)));
        self.stores.push(StoreRec {
            addr,
            size,
            pc,
            branches_at: self.branch_count,
        });
        for b in addr..addr + u64::from(size) {
            self.byte_writer.insert(b, number);
        }
    }

    /// Emits a load annotated with its ground-truth dependence.
    pub fn load(&mut self, pc: u64, addr: u64, size: u8, dst: u8, addr_reg: Option<u8>) {
        let dep = self.dep_for(addr, size);
        self.uops.push(Uop::load(pc, addr, size, addr_reg, dst, dep));
    }

    /// The youngest prior store writing any byte of `[addr, addr+size)`.
    fn dep_for(&self, addr: u64, size: u8) -> Option<TraceDep> {
        let writers: Vec<Option<u32>> = (addr..addr + u64::from(size))
            .map(|b| self.byte_writer.get(&b).copied())
            .collect();
        let youngest = writers.iter().flatten().copied().max()?;
        let s = &self.stores[youngest as usize];
        let covers_all = writers.iter().all(|w| *w == Some(youngest));
        let class = if covers_all {
            if s.addr == addr && s.size == size {
                BypassClass::DirectBypass
            } else if s.addr == addr {
                BypassClass::NoOffset
            } else {
                BypassClass::Offset
            }
        } else {
            BypassClass::MdpOnly
        };
        Some(TraceDep {
            distance: self.stores.len() as u32 - youngest,
            class,
            store_pc: s.pc,
            branches_between: (self.branch_count - s.branches_at) as u32,
        })
    }

    /// Finishes the trace.
    pub fn build(self, name: impl Into<String>) -> Trace {
        Trace::new(name, self.uops)
    }
}

/// One dependent load/store pair site (hammock or spill/fill).
#[derive(Debug, Clone, Copy)]
struct PairSite {
    index: usize,
    /// Conditional (hammock) or unconditional (spill/fill).
    conditional: bool,
    class: BypassClass,
    pc: u64,
    data_reg: u8,
    dst_reg: u8,
    consumer_reg: u8,
}

/// Conditional sites rotate across this many slots so that a not-taken
/// iteration's last writer is many iterations (and stores) old — far beyond
/// the ROB/SB window, hence a genuine *non-dependence* at runtime, matching
/// the paper's §III-A pattern.
const SLOT_ROTATION: u64 = 64;

impl PairSite {
    /// The slot this site touches at `iter`.
    fn slot(&self, iter: u64) -> u64 {
        let base = SLOT_BASE + (self.index as u64) * SLOT_ROTATION * 64;
        if self.conditional {
            base + (iter % SLOT_ROTATION) * 64
        } else {
            base
        }
    }

    /// Store and load geometry realising the site's class at `iter`.
    fn geometry(&self, iter: u64) -> (u64, u8, u64, u8) {
        let slot = self.slot(iter);
        // (store_addr, store_size, load_addr, load_size)
        match self.class {
            BypassClass::DirectBypass => (slot, 8, slot, 8),
            BypassClass::NoOffset => (slot, 8, slot, 4),
            BypassClass::Offset => (slot, 8, slot + 4, 4),
            // Load straddles the store's end: bytes 4..8 come from the
            // store, 8..12 were never written.
            BypassClass::MdpOnly => (slot, 8, slot + 4, 8),
        }
    }
}

fn sample_class(rng: &mut StdRng, mix: &[f64; 4]) -> BypassClass {
    let total: f64 = mix.iter().sum();
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in mix.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return match i {
                0 => BypassClass::DirectBypass,
                1 => BypassClass::NoOffset,
                2 => BypassClass::Offset,
                _ => BypassClass::MdpOnly,
            };
        }
    }
    BypassClass::DirectBypass
}

/// Generates a trace of at least `target_uops` micro-ops (rounded up to a
/// whole program iteration) from a profile and seed.
///
/// The same `(profile, seed, target_uops)` triple always yields an
/// identical trace.
///
/// # Panics
///
/// Panics if the profile fails [`WorkloadProfile::validate`].
///
/// # Examples
///
/// ```
/// use mascot_workloads::{generate, WorkloadProfile};
///
/// let profile = WorkloadProfile::base("demo");
/// let trace = generate(&profile, 42, 10_000);
/// assert!(trace.len() >= 10_000);
/// trace.validate().expect("ground truth is consistent");
/// ```
pub fn generate(profile: &WorkloadProfile, seed: u64, target_uops: usize) -> Trace {
    profile.validate().expect("invalid workload profile");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut b = TraceBuilder::new();

    // ---- static program construction --------------------------------
    let num_pairs = profile.hammocks + profile.spill_fills;
    let mut pair_sites = Vec::with_capacity(num_pairs);
    for i in 0..num_pairs {
        pair_sites.push(PairSite {
            index: i,
            conditional: i < profile.hammocks,
            class: sample_class(&mut rng, &profile.class_mix),
            pc: PC_BASE + (i as u64) * 0x100,
            data_reg: STORE_DATA_REG_BASE + (i % 8) as u8,
            dst_reg: LOAD_DST_REG_BASE + (i % 8) as u8,
            consumer_reg: CONSUMER_REG_BASE + (i % 16) as u8,
        });
    }
    // At least three "leader" branches with periods 2/4/8 run every
    // iteration: their outcomes encode iter mod 8 in recent history, so all
    // other patterned branches are inferable from short TAGE histories.
    let num_noise = profile.noise_branches.max(3);
    let noise_pattern: Vec<u32> = (0..num_noise).map(|i| 1 << (i % 3 + 1)).collect();
    let footprint_bytes = profile.footprint_lines * 64;
    let mut chase_addr = CHASE_BASE;
    let mut iter: u64 = 0;

    // ---- emission ----------------------------------------------------
    while b.len() < target_uops {
        // The static code copy executed this iteration (round-robin, like
        // an unrolled caller cycling through inlined copies): offsets every
        // PC, multiplying the static footprint the predictors must track.
        let ctx = (iter % profile.code_contexts as u64) * 0x1_0040;
        // (The stride is deliberately NOT a multiple of the L1I way size,
        // so code copies spread across cache sets instead of aliasing.)

        // Region offsets are chosen so no two region base lines share an
        // L1I set (they are NOT multiples of the 4 KiB way size).
        // A cheap value available for any leftover consumers.
        b.alu(ctx + PC_BASE - 0x40, [None, None], Some(SCRATCH_DATA_REG), 1);

        // Context/noise branches.
        for (n, &pattern) in noise_pattern.iter().enumerate() {
            let pc = ctx + PC_BASE - 0x0fc0 + (n as u64) * 0x20;
            let taken = if rng.random::<f64>() < profile.branch_entropy * 0.30 {
                rng.random::<f64>() < profile.noise_branch_bias
            } else {
                (iter / u64::from(pattern)).is_multiple_of(2)
            };
            b.branch(pc, taken, None);
        }

        // Indirect branches: the target is phase-stable (switching every
        // few iterations) so a last-target predictor sees realistic, not
        // pathological, miss rates.
        for n in 0..profile.indirect_branches {
            let pc = ctx + PC_BASE - 0x1e80 + (n as u64) * 0x20;
            let t = (iter / 6 + n as u64) % profile.indirect_targets as u64;
            b.indirect(pc, 0x50_0000 + t * 0x80, None);
        }

        // Dependent pair sites.
        for site in &pair_sites {
            let site_pc = ctx + site.pc;
            let (s_addr, s_size, l_addr, l_size) = site.geometry(iter);
            let store_executes = if site.conditional {
                // Mostly-patterned direction whose not-taken period encodes
                // the profile's bias, plus a small entropy flip: the
                // dependence varies *with history* (the §III-A pattern)
                // without drowning the pipeline in branch mispredicts.
                let period = (((1.0 / (1.0 - profile.hammock_bias).max(0.05)).round() as u64)
                    .max(2))
                .next_power_of_two()
                .min(8);
                let phase = (site.index as u64 * 3 + 1) % period;
                let mut taken = iter % period != phase;
                if rng.random::<f64>() < profile.branch_entropy * 0.15 {
                    taken = !taken;
                }
                // The guard is a loop-style condition: it resolves quickly
                // (value sensitivity lives in the per-load value branches).
                b.branch(site_pc, taken, None);
                taken
            } else {
                true
            };
            if store_executes {
                b.alu(
                    site_pc + 0x10,
                    [None, None],
                    Some(site.data_reg),
                    profile.store_data_latency,
                );
                b.store(site_pc + 0x14, s_addr, s_size, site.data_reg);
            }
            // Guarded filler stores: distance noise + history dilution.
            // Their data arrives as late as the pair stores', so a false
            // dependence on one costs a real stall.
            for g in 0..profile.distance_noise {
                let pc = site_pc + 0x20 + (g as u64) * 16;
                let mut taken = (iter >> g).is_multiple_of(2);
                if rng.random::<f64>() < profile.branch_entropy * 0.15 {
                    taken = !taken;
                }
                let _ = &mut taken;
                b.branch(pc, taken, None);
                if taken {
                    let scratch =
                        SCRATCH_BASE + (site.index as u64) * 1024 + (g as u64) * 64;
                    b.alu(pc + 4, [None, None], Some(SCRATCH_DATA_REG), profile.store_data_latency);
                    b.store(pc + 8, scratch, 8, SCRATCH_DATA_REG);
                }
            }
            // Address generation for the pair load: a late-arriving address
            // stalls the MDP forwarding path but not a speculative bypass.
            let addr_reg = if profile.load_addr_latency > 0 {
                b.alu(site_pc + 0x5c, [None, None], Some(ADDR_REG), profile.load_addr_latency);
                Some(ADDR_REG)
            } else {
                None
            };
            b.load(site_pc + 0x60, l_addr, l_size, site.dst_reg, addr_reg);
            // Consumer chain.
            for c in 0..profile.load_consumers {
                let src = if c == 0 { site.dst_reg } else { site.consumer_reg };
                b.alu(site_pc + 0x70 + (c as u64) * 4, [Some(src), None], Some(site.consumer_reg), 1);
            }
            // A branch on the loaded value, right after the chain: when it
            // mispredicts, fetch stalls until the load value arrives, so the
            // benchmark is genuinely sensitive to early load values (the
            // §VI-A perlbench effect). Streaming/FP profiles use a single
            // consumer and skip this.
            if profile.load_consumers >= 2 {
                let mut taken = iter % 8 != site.index as u64 % 8;
                if rng.random::<f64>() < profile.branch_entropy * 0.10 {
                    taken = !taken;
                }
                b.branch(site_pc + 0x90, taken, Some(site.consumer_reg));
            }
            // Address-coupled loads: their addresses are data-dependent on
            // the pair load's value (hash-lookup style), so an early value
            // directly accelerates later memory accesses.
            for c in 0..profile.coupled_loads {
                let pc = site_pc + 0xa0 + (c as u64) * 8;
                let span = (footprint_bytes * 8).max(1 << 20);
                let addr = STREAM_BASE
                    + 0x100_0000
                    + ((iter * 2893 + (site.index as u64) * 977 + c as u64 * 131) * 64) % span;
                b.load(pc, addr, 8, STREAM_DST_REG, Some(site.consumer_reg));
            }
        }

        // Store-chase hops: a serial dependence chain *through memory*.
        // Each hop stores a "node", immediately loads it back, and the
        // loaded value provides the next hop's address. With MDP the chain
        // is serial (store-data -> forward -> address -> ...); speculative
        // bypassing collapses it because each hop's value comes straight
        // from its store's data register.
        for h in 0..profile.store_chase {
            let pc = ctx + PC_BASE + 0xb540 + (h as u64) * 0x20;
            let data_reg = CHAIN_DATA_REG_BASE + (h % 8) as u8;
            let dst_reg = CHAIN_DST_REG_BASE + (h % 8) as u8;
            let addr = CHAIN_BASE + (h as u64) * 64;
            b.alu(pc, [None, None], Some(data_reg), 2);
            b.store(pc + 4, addr, 8, data_reg);
            // Hop 0 continues from the previous iteration's last hop: one
            // serial list walk spans the whole execution, so its latency
            // cannot be hidden by the out-of-order window.
            let addr_reg = if h == 0 {
                Some(CHAIN_DST_REG_BASE + ((profile.store_chase - 1) % 8) as u8)
            } else {
                Some(CHAIN_DST_REG_BASE + ((h - 1) % 8) as u8)
            };
            b.load(pc + 0x10, addr, 8, dst_reg, addr_reg);
        }

        // Streaming loads (independent, prefetch-friendly).
        for k in 0..profile.stream_loads {
            let pc = ctx + PC_BASE + 0x8440 + (k as u64) * 0x10;
            let addr = STREAM_BASE + ((iter * 64 + (k as u64) * footprint_bytes / 4) % footprint_bytes);
            b.load(pc, addr, 8, STREAM_DST_REG, None);
        }

        // Pointer-chase loads (serialising chain through CHASE_REG).
        for k in 0..profile.chase_loads {
            let pc = ctx + PC_BASE + 0x92c0 + (k as u64) * 0x10;
            chase_addr = CHASE_BASE + (chase_addr.wrapping_mul(25214903917).wrapping_add(11)) % (footprint_bytes.max(4096));
            chase_addr &= !7;
            b.load(pc, chase_addr, 8, CHASE_REG, Some(CHASE_REG));
        }

        // Filler ALU work.
        for k in 0..profile.alu_per_iter {
            let pc = ctx + PC_BASE + 0xa180 + (k as u64) * 4;
            let lat = if rng.random::<f64>() < profile.long_alu_frac {
                4
            } else {
                1
            };
            b.alu(pc, [None, None], Some(56 + (k % 8) as u8), lat);
        }

        iter += 1;
    }
    b.build(profile.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot_sim::uop::UopKind;

    fn base() -> WorkloadProfile {
        WorkloadProfile::base("gen-test")
    }

    #[test]
    fn generated_trace_is_internally_consistent() {
        let t = generate(&base(), 7, 20_000);
        assert!(t.len() >= 20_000);
        t.validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&base(), 99, 5_000);
        let b = generate(&base(), 99, 5_000);
        assert_eq!(a.uops, b.uops);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&base(), 1, 5_000);
        let b = generate(&base(), 2, 5_000);
        assert_ne!(a.uops, b.uops);
    }

    #[test]
    fn dependent_fraction_tracks_profile() {
        let profile = base();
        let t = generate(&profile, 3, 60_000);
        // Count loads with a *recent* dependence (distance <= 64: the ones
        // that can realistically be in flight).
        let mut dependent = 0usize;
        let mut loads = 0usize;
        for u in &t.uops {
            if let UopKind::Load { dep, .. } = &u.kind {
                loads += 1;
                if dep.is_some_and(|d| d.distance <= 64) {
                    dependent += 1;
                }
            }
        }
        let frac = dependent as f64 / loads as f64;
        let expected = profile.expected_dependent_fraction();
        assert!(
            (frac - expected).abs() < 0.12,
            "dependent fraction {frac} vs expected {expected}"
        );
    }

    #[test]
    fn class_geometry_is_honoured() {
        // An all-DirectBypass profile must annotate its pair loads as such.
        let profile = WorkloadProfile {
            class_mix: [1.0, 0.0, 0.0, 0.0],
            stream_loads: 0,
            chase_loads: 0,
            hammocks: 0,
            spill_fills: 3,
            distance_noise: 0,
            ..base()
        };
        let t = generate(&profile, 11, 10_000);
        for u in &t.uops {
            if let UopKind::Load { dep: Some(d), .. } = &u.kind {
                assert_eq!(d.class, BypassClass::DirectBypass);
            }
        }
    }

    #[test]
    fn mdp_only_class_is_partial() {
        let profile = WorkloadProfile {
            class_mix: [0.0, 0.0, 0.0, 1.0],
            stream_loads: 0,
            chase_loads: 0,
            hammocks: 0,
            spill_fills: 2,
            distance_noise: 0,
            ..base()
        };
        let t = generate(&profile, 11, 5_000);
        let mut saw = false;
        for u in &t.uops {
            if let UopKind::Load { dep: Some(d), .. } = &u.kind {
                assert_eq!(d.class, BypassClass::MdpOnly);
                saw = true;
            }
        }
        assert!(saw);
    }

    #[test]
    fn hammock_dependence_follows_branch() {
        // With a single hammock and no other stores, a short-distance
        // dependence must appear exactly when the guarding branch was taken.
        let profile = WorkloadProfile {
            hammocks: 1,
            spill_fills: 0,
            stream_loads: 1,
            chase_loads: 0,
            distance_noise: 0,
            noise_branches: 0,
            class_mix: [1.0, 0.0, 0.0, 0.0],
            ..base()
        };
        let t = generate(&profile, 5, 8_000);
        let mut last_branch_taken = None;
        for u in &t.uops {
            match u.kind {
                UopKind::Branch { taken, .. } => last_branch_taken = Some(taken),
                UopKind::Load { dep, addr, .. } if (SLOT_BASE..SCRATCH_BASE).contains(&addr) => {
                    let taken = last_branch_taken.expect("hammock load follows its branch");
                    if taken {
                        assert_eq!(
                            dep.map(|d| d.distance),
                            Some(1),
                            "taken context: immediate dependence"
                        );
                    } else {
                        // Slot rotation makes the last writer ~64 iterations
                        // old: far outside any realistic in-flight window.
                        assert!(
                            dep.is_none_or(|d| d.distance >= SLOT_ROTATION as u32 / 2),
                            "not-taken context must not have a recent dependence: {dep:?}"
                        );
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn branches_between_is_zero_for_adjacent_pairs() {
        let profile = WorkloadProfile {
            hammocks: 0,
            spill_fills: 1,
            distance_noise: 0,
            noise_branches: 0,
            stream_loads: 0,
            chase_loads: 0,
            class_mix: [1.0, 0.0, 0.0, 0.0],
            ..base()
        };
        let t = generate(&profile, 5, 2_000);
        for u in &t.uops {
            if let UopKind::Load { dep: Some(d), .. } = &u.kind {
                assert_eq!(d.branches_between, 0);
                assert_eq!(d.distance, 1);
            }
        }
    }
}
