//! SPEC CPU 2017-like benchmark profiles.
//!
//! One profile per benchmark/input evaluated in the paper, calibrated
//! *qualitatively* to the published characteristics:
//!
//! * Fig. 2's per-benchmark dependent-load fraction and class mix —
//!   *perlbench*/*lbm* around 40 % bypassable, *bwaves*/*wrf* around 5 %;
//! * §VI-A's behavioural notes — *perlbench* is highly sensitive to early
//!   load values (deep consumer chains, late store data), *lbm* has many
//!   bypasses but ample independent work, *mcf* aliases unpredictably
//!   (heavy distance noise, large footprint), *exchange2* barely touches
//!   memory.
//!
//! Absolute IPCs are properties of our synthetic substrate; the *relative*
//! structure (who aliases, how predictably, and who profits from early
//! values) is what these profiles encode.

use crate::profile::WorkloadProfile;

fn p(name: &'static str) -> WorkloadProfile {
    WorkloadProfile::base(name)
}

/// All benchmark profiles, in the order the paper's figures list them.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    vec![
        // perlbench: ~40 % bypassable loads, deep value dependence. The
        // three inputs differ in branch behaviour and alias intensity.
        WorkloadProfile {
            hammocks: 3,
            hammock_bias: 0.75,
            spill_fills: 4,
            stream_loads: 3,
            chase_loads: 0,
            class_mix: [0.7, 0.12, 0.06, 0.12],
            load_consumers: 4,
            store_data_latency: 8,
            alu_per_iter: 8,
            noise_branches: 2,
            branch_entropy: 0.25,
            footprint_lines: 1024,
            coupled_loads: 1,
            code_contexts: 3,
            load_addr_latency: 8,
            store_chase: 4,
            ..p("perlbench1")
        },
        WorkloadProfile {
            hammocks: 4,
            hammock_bias: 0.8,
            spill_fills: 4,
            stream_loads: 2,
            chase_loads: 0,
            class_mix: [0.72, 0.12, 0.06, 0.10],
            load_consumers: 5,
            store_data_latency: 10,
            alu_per_iter: 6,
            noise_branches: 2,
            branch_entropy: 0.2,
            footprint_lines: 1024,
            coupled_loads: 1,
            code_contexts: 3,
            load_addr_latency: 10,
            store_chase: 6,
            ..p("perlbench2")
        },
        // gcc: moderate aliasing with noticeable context sensitivity and
        // indirect control flow.
        WorkloadProfile {
            hammocks: 3,
            hammock_bias: 0.65,
            spill_fills: 2,
            stream_loads: 5,
            chase_loads: 1,
            distance_noise: 2,
            branch_entropy: 0.35,
            indirect_branches: 1,
            indirect_targets: 6,
            class_mix: [0.55, 0.15, 0.1, 0.2],
            footprint_lines: 4096,
            coupled_loads: 1,
            code_contexts: 6,
            load_addr_latency: 6,
            store_chase: 2,
            ..p("gcc4")
        },
        WorkloadProfile {
            hammocks: 3,
            hammock_bias: 0.6,
            spill_fills: 2,
            stream_loads: 6,
            chase_loads: 1,
            distance_noise: 2,
            branch_entropy: 0.4,
            indirect_branches: 1,
            indirect_targets: 8,
            class_mix: [0.5, 0.18, 0.1, 0.22],
            footprint_lines: 4096,
            coupled_loads: 1,
            code_contexts: 6,
            load_addr_latency: 6,
            store_chase: 2,
            ..p("gcc5")
        },
        // bwaves: streaming FP with almost no in-flight aliasing (~5 %).
        WorkloadProfile {
            hammocks: 0,
            spill_fills: 1,
            stream_loads: 14,
            chase_loads: 0,
            alu_per_iter: 18,
            long_alu_frac: 0.5,
            noise_branches: 1,
            branch_entropy: 0.05,
            class_mix: [0.6, 0.2, 0.05, 0.15],
            footprint_lines: 16384,
            load_consumers: 1,
            code_contexts: 2,
            load_addr_latency: 2,
            ..p("bwaves")
        },
        // mcf: pointer chasing over a huge footprint; aliasing exists but
        // the distances are noisy, so even SMB-confident entries misfire.
        WorkloadProfile {
            hammocks: 4,
            hammock_bias: 0.5,
            spill_fills: 1,
            stream_loads: 4,
            chase_loads: 2,
            distance_noise: 3,
            branch_entropy: 0.5,
            noise_branches: 3,
            class_mix: [0.45, 0.15, 0.1, 0.3],
            footprint_lines: 16384,
            load_consumers: 3,
            coupled_loads: 1,
            code_contexts: 4,
            load_addr_latency: 6,
            store_chase: 1,
            ..p("mcf")
        },
        WorkloadProfile {
            hammocks: 1,
            hammock_bias: 0.5,
            spill_fills: 2,
            stream_loads: 9,
            chase_loads: 0,
            alu_per_iter: 24,
            long_alu_frac: 0.6,
            class_mix: [0.5, 0.2, 0.1, 0.2],
            footprint_lines: 8192,
            load_consumers: 1,
            code_contexts: 4,
            load_addr_latency: 2,
            ..p("cactuBSSN")
        },
        WorkloadProfile {
            hammocks: 1,
            hammock_bias: 0.6,
            spill_fills: 2,
            stream_loads: 8,
            chase_loads: 0,
            alu_per_iter: 28,
            long_alu_frac: 0.5,
            branch_entropy: 0.1,
            class_mix: [0.65, 0.15, 0.05, 0.15],
            footprint_lines: 2048,
            load_consumers: 1,
            code_contexts: 4,
            load_addr_latency: 2,
            ..p("namd")
        },
        WorkloadProfile {
            hammocks: 2,
            hammock_bias: 0.6,
            spill_fills: 2,
            stream_loads: 7,
            chase_loads: 1,
            alu_per_iter: 16,
            long_alu_frac: 0.4,
            class_mix: [0.6, 0.15, 0.08, 0.17],
            footprint_lines: 8192,
            code_contexts: 4,
            load_addr_latency: 2,
            ..p("parest")
        },
        WorkloadProfile {
            hammocks: 2,
            hammock_bias: 0.7,
            spill_fills: 3,
            stream_loads: 6,
            chase_loads: 1,
            alu_per_iter: 14,
            long_alu_frac: 0.45,
            branch_entropy: 0.15,
            class_mix: [0.62, 0.15, 0.08, 0.15],
            footprint_lines: 1024,
            code_contexts: 4,
            load_addr_latency: 5,
            store_chase: 1,
            ..p("povray")
        },
        // lbm: ~40 % bypassable loads but plentiful independent FP work, so
        // early values barely move the needle (§VI-A).
        WorkloadProfile {
            hammocks: 1,
            hammock_bias: 0.6,
            spill_fills: 5,
            stream_loads: 6,
            chase_loads: 0,
            alu_per_iter: 40,
            long_alu_frac: 0.5,
            load_consumers: 1,
            store_data_latency: 2,
            branch_entropy: 0.05,
            class_mix: [0.75, 0.1, 0.05, 0.1],
            footprint_lines: 16384,
            code_contexts: 2,
            load_addr_latency: 2,
            store_chase: 2,
            ..p("lbm")
        },
        WorkloadProfile {
            hammocks: 2,
            hammock_bias: 0.6,
            spill_fills: 2,
            stream_loads: 4,
            chase_loads: 4,
            indirect_branches: 2,
            indirect_targets: 10,
            branch_entropy: 0.4,
            class_mix: [0.5, 0.15, 0.1, 0.25],
            footprint_lines: 16384,
            load_consumers: 3,
            coupled_loads: 1,
            code_contexts: 4,
            load_addr_latency: 8,
            store_chase: 2,
            ..p("omnetpp")
        },
        // wrf: streaming with ~5 % aliasing.
        WorkloadProfile {
            hammocks: 1,
            hammock_bias: 0.3,
            spill_fills: 1,
            stream_loads: 14,
            chase_loads: 0,
            alu_per_iter: 20,
            long_alu_frac: 0.5,
            branch_entropy: 0.1,
            class_mix: [0.55, 0.2, 0.05, 0.2],
            footprint_lines: 16384,
            load_consumers: 1,
            code_contexts: 2,
            load_addr_latency: 2,
            ..p("wrf")
        },
        WorkloadProfile {
            hammocks: 2,
            hammock_bias: 0.65,
            spill_fills: 2,
            stream_loads: 5,
            chase_loads: 3,
            indirect_branches: 2,
            indirect_targets: 12,
            branch_entropy: 0.35,
            class_mix: [0.55, 0.15, 0.1, 0.2],
            footprint_lines: 8192,
            coupled_loads: 1,
            code_contexts: 4,
            load_addr_latency: 8,
            store_chase: 1,
            ..p("xalancbmk")
        },
        WorkloadProfile {
            hammocks: 2,
            hammock_bias: 0.7,
            spill_fills: 3,
            stream_loads: 8,
            chase_loads: 0,
            alu_per_iter: 20,
            long_alu_frac: 0.35,
            class_mix: [0.65, 0.15, 0.05, 0.15],
            footprint_lines: 4096,
            code_contexts: 4,
            load_addr_latency: 5,
            store_chase: 1,
            ..p("x264")
        },
        WorkloadProfile {
            hammocks: 2,
            hammock_bias: 0.6,
            spill_fills: 2,
            stream_loads: 8,
            chase_loads: 1,
            alu_per_iter: 18,
            long_alu_frac: 0.4,
            class_mix: [0.6, 0.15, 0.08, 0.17],
            footprint_lines: 8192,
            code_contexts: 4,
            load_addr_latency: 2,
            ..p("blender")
        },
        // deepsjeng/leela: branchy game trees, modest memory traffic.
        WorkloadProfile {
            hammocks: 2,
            hammock_bias: 0.55,
            spill_fills: 2,
            stream_loads: 4,
            chase_loads: 1,
            noise_branches: 4,
            branch_entropy: 0.45,
            alu_per_iter: 12,
            class_mix: [0.6, 0.15, 0.1, 0.15],
            footprint_lines: 2048,
            code_contexts: 4,
            load_addr_latency: 5,
            store_chase: 1,
            ..p("deepsjeng")
        },
        WorkloadProfile {
            hammocks: 3,
            hammock_bias: 0.9,
            spill_fills: 3,
            stream_loads: 7,
            chase_loads: 0,
            alu_per_iter: 16,
            long_alu_frac: 0.3,
            branch_entropy: 0.1,
            class_mix: [0.7, 0.12, 0.06, 0.12],
            footprint_lines: 2048,
            code_contexts: 4,
            load_addr_latency: 2,
            ..p("imagick")
        },
        WorkloadProfile {
            hammocks: 2,
            hammock_bias: 0.55,
            spill_fills: 2,
            stream_loads: 5,
            chase_loads: 1,
            noise_branches: 4,
            branch_entropy: 0.5,
            alu_per_iter: 10,
            class_mix: [0.55, 0.15, 0.1, 0.2],
            footprint_lines: 4096,
            code_contexts: 4,
            load_addr_latency: 5,
            store_chase: 1,
            ..p("leela")
        },
        WorkloadProfile {
            hammocks: 1,
            hammock_bias: 0.6,
            spill_fills: 3,
            stream_loads: 6,
            chase_loads: 0,
            alu_per_iter: 22,
            long_alu_frac: 0.45,
            branch_entropy: 0.1,
            class_mix: [0.6, 0.18, 0.07, 0.15],
            footprint_lines: 2048,
            load_consumers: 1,
            code_contexts: 4,
            load_addr_latency: 2,
            ..p("nab")
        },
        // exchange2: integer, branch-dominated, barely touches memory.
        WorkloadProfile {
            hammocks: 0,
            spill_fills: 1,
            stream_loads: 6,
            chase_loads: 0,
            noise_branches: 6,
            branch_entropy: 0.15,
            alu_per_iter: 24,
            class_mix: [0.6, 0.2, 0.05, 0.15],
            footprint_lines: 256,
            load_consumers: 1,
            code_contexts: 2,
            load_addr_latency: 2,
            ..p("exchange2")
        },
        WorkloadProfile {
            hammocks: 0,
            spill_fills: 2,
            stream_loads: 12,
            chase_loads: 0,
            alu_per_iter: 20,
            long_alu_frac: 0.55,
            branch_entropy: 0.05,
            class_mix: [0.55, 0.2, 0.05, 0.2],
            footprint_lines: 16384,
            load_consumers: 1,
            code_contexts: 2,
            load_addr_latency: 2,
            ..p("fotonik3d")
        },
        WorkloadProfile {
            hammocks: 1,
            hammock_bias: 0.5,
            spill_fills: 2,
            stream_loads: 11,
            chase_loads: 0,
            alu_per_iter: 18,
            long_alu_frac: 0.5,
            branch_entropy: 0.08,
            class_mix: [0.55, 0.2, 0.06, 0.19],
            footprint_lines: 16384,
            load_consumers: 1,
            code_contexts: 2,
            load_addr_latency: 2,
            ..p("roms")
        },
        WorkloadProfile {
            hammocks: 2,
            hammock_bias: 0.55,
            spill_fills: 2,
            stream_loads: 5,
            chase_loads: 1,
            distance_noise: 2,
            branch_entropy: 0.35,
            class_mix: [0.55, 0.18, 0.07, 0.2],
            footprint_lines: 8192,
            code_contexts: 4,
            load_addr_latency: 5,
            store_chase: 1,
            ..p("xz")
        },
    ]
}

/// Looks a profile up by its benchmark name.
pub fn profile(name: &str) -> Option<WorkloadProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

/// A small subset for fast smoke runs: one high-alias, one low-alias, one
/// hard-to-predict and one branch-heavy benchmark.
pub fn quick_suite() -> Vec<WorkloadProfile> {
    ["perlbench2", "bwaves", "mcf", "exchange2"]
        .iter()
        .map(|n| profile(n).expect("quick-suite profiles exist"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_valid_and_uniquely_named() {
        let all = all_profiles();
        assert!(all.len() >= 20, "need a full suite, got {}", all.len());
        let mut names = std::collections::HashSet::new();
        for p in &all {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(names.insert(p.name), "duplicate profile {}", p.name);
        }
    }

    #[test]
    fn perlbench_and_lbm_are_alias_heavy() {
        for name in ["perlbench2", "lbm"] {
            let f = profile(name).unwrap().expected_dependent_fraction();
            assert!(f > 0.3, "{name}: {f}");
        }
    }

    #[test]
    fn bwaves_and_wrf_are_alias_light() {
        for name in ["bwaves", "wrf"] {
            let f = profile(name).unwrap().expected_dependent_fraction();
            assert!(f < 0.12, "{name}: {f}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile("mcf").is_some());
        assert!(profile("not-a-benchmark").is_none());
    }

    #[test]
    fn quick_suite_has_four() {
        assert_eq!(quick_suite().len(), 4);
    }
}
