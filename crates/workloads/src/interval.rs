//! Interval slicing over [`Trace`]s for sampled simulation.
//!
//! The Memory Access Vectors methodology (see PAPERS.md and DESIGN.md §13)
//! slices a long trace into fixed-size intervals, fingerprints each by its
//! memory-access behaviour, and simulates only one representative interval
//! per cluster. This module owns the slicing: the canonical interval
//! boundaries for a trace length, and the extraction of a standalone
//! sub-trace (warm-up prefix plus measured window) whose ground-truth
//! dependence annotations stay valid.

use std::ops::Range;

use mascot_sim::{Trace, UopKind};

/// The canonical interval boundaries for a trace of `trace_len` uops:
/// fixed-size windows of `interval_uops`, in order, with the final interval
/// keeping whatever remainder is left (it may be shorter). These boundaries
/// are shared by fingerprinting, clustering and the reference
/// `run_interval_deltas` sweep, so every layer agrees on what "interval i"
/// means.
///
/// # Panics
///
/// Panics if `interval_uops` is zero.
pub fn intervals(trace_len: usize, interval_uops: usize) -> Vec<Range<usize>> {
    assert!(interval_uops > 0, "interval size must be non-zero");
    let mut out = Vec::with_capacity(trace_len.div_ceil(interval_uops).max(1));
    let mut start = 0;
    while start < trace_len {
        let end = (start + interval_uops).min(trace_len);
        out.push(start..end);
        start = end;
    }
    out
}

/// Extracts `trace[range]` as a standalone trace, fixing up ground-truth
/// dependence annotations so the result still passes [`Trace::validate`]:
/// a load whose annotated store lies *before* the slice (its distance
/// exceeds the stores actually present ahead of it in the slice) loses the
/// annotation — exactly how a hardware LSQ would see it, since that store
/// could never be in flight when the slice executes from cold.
///
/// Used to build a representative's simulation input: the slice starts at
/// the warm-up prefix, so only warm-up-leading loads (never measured-window
/// loads, once the warm-up exceeds the predictors' 127-store window) can
/// lose their annotation.
pub fn slice(trace: &Trace, range: Range<usize>) -> Trace {
    let name = format!("{}[{}..{}]", trace.name, range.start, range.end);
    let mut stores_in_slice = 0u64;
    let uops = trace.uops[range]
        .iter()
        .map(|uop| {
            let mut uop = *uop;
            if let UopKind::Load { dep, .. } = &mut uop.kind {
                if dep.is_some_and(|d| u64::from(d.distance) > stores_in_slice) {
                    *dep = None;
                }
            }
            if uop.kind.is_store() {
                stores_in_slice += 1;
            }
            uop
        })
        .collect();
    Trace::new(name, uops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, spec};

    #[test]
    fn boundaries_cover_the_trace_exactly_once() {
        let iv = intervals(25, 10);
        assert_eq!(iv, vec![0..10, 10..20, 20..25]);
        assert_eq!(intervals(0, 10), Vec::<Range<usize>>::new());
        assert_eq!(intervals(10, 10), vec![0..10]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_size_is_rejected() {
        let _ = intervals(100, 0);
    }

    #[test]
    fn slices_validate_and_preserve_in_slice_deps() {
        let profile = spec::profile("perlbench2").expect("known profile");
        let trace = generate(&profile, 7, 20_000);
        trace.validate().expect("generator output is consistent");
        for range in intervals(trace.len(), 3_000) {
            let sub = slice(&trace, range.clone());
            assert_eq!(sub.len(), range.len());
            sub.validate()
                .unwrap_or_else(|e| panic!("slice {range:?} is inconsistent: {e}"));
        }
    }

    #[test]
    fn mid_trace_slice_drops_only_out_of_reach_deps() {
        let profile = spec::profile("mcf").expect("known profile");
        let trace = generate(&profile, 3, 10_000);
        let range = 4_000..7_000;
        let sub = slice(&trace, range.clone());
        // Deps annotated in the slice must be a subset of the original's,
        // and every dropped annotation must point before the slice start.
        let mut stores_before = 0u64;
        for (orig, sliced) in trace.uops[range].iter().zip(&sub.uops) {
            match (&orig.kind, &sliced.kind) {
                (
                    mascot_sim::UopKind::Load { dep: od, .. },
                    mascot_sim::UopKind::Load { dep: sd, .. },
                ) => match (od, sd) {
                    (Some(o), Some(s)) => assert_eq!(o, s),
                    (Some(o), None) => assert!(u64::from(o.distance) > stores_before),
                    (None, Some(_)) => panic!("slice invented a dependence"),
                    (None, None) => {}
                },
                _ => assert_eq!(orig, sliced),
            }
            if orig.kind.is_store() {
                stores_before += 1;
            }
        }
        // The slice must actually keep some dependences (the profile is
        // dependence-heavy); a slicer that dropped everything would pass
        // the subset check vacuously.
        assert!(sub.uops.iter().any(|u| matches!(
            u.kind,
            mascot_sim::UopKind::Load { dep: Some(_), .. }
        )));
    }
}
