//! Adversarial mistraining traces: an attacker tenant deliberately aliases
//! a victim tenant's predictor contexts (DESIGN.md §12).
//!
//! The baseline MASCOT hasher folds only the low ~34 bits of a PC into its
//! table indices and tags, and the fold is GF(2)-linear, so two PCs that
//! differ only at bit 34 and above collide in **every** table under
//! **every** history. The attacker here runs at `victim_pc ^ (1 << 34)`:
//! its loads, stores and branches land on exactly the entries (and exactly
//! the folded history contexts) the victim uses, while the PC ranges stay
//! disjoint so ground-truth tenant attribution is a single compare against
//! [`TENANT_BOUNDARY`].
//!
//! Three attacker profiles, one per classic mistraining shape:
//!
//! * [`AttackKind::Alias`] (`mistrain_alias`) — targeted false-bypass
//!   induction. The attacker saturates the shared entry with a
//!   distance-1 bypass pattern; the victim's load is genuinely
//!   independent, so every cross-trained prediction is a false bypass
//!   (squash) or, once the attacker's store has drained, a false
//!   dependence (needless stall).
//! * [`AttackKind::Flood`] (`mistrain_flood`) — capacity attack. The
//!   attacker cycles hundreds of distinct sites, each allocated at the
//!   dependence-allocation usefulness, evicting the victim's genuinely
//!   useful entries and inducing missed dependencies. This is also the
//!   traffic shape that exposed the merge-tie pinning bug in
//!   resharding union merges.
//! * [`AttackKind::Interleave`] (`mistrain_interleave`) — history
//!   desynchronisation. The attacker injects variable-length branch
//!   bursts between victim blocks so the victim's history-correlated
//!   hammock indexes a different context every iteration, and
//!   cross-trains those contexts with the opposite dependence phase.
//!
//! [`compose`] builds the interleaved attacker+victim trace; [`victim_only`]
//! builds the identical victim program alone. Attack success is the
//! *differential* between the two runs (see `mascot_stats::pollution`), so
//! the victim's emission is deliberately independent of the attacker's
//! randomness: attacker-side draws come from a separate RNG stream and the
//! victim side is a pure function of the iteration index.

use std::fmt;
use std::str::FromStr;

use mascot_sim::uop::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::TraceBuilder;

/// Loads with `pc < TENANT_BOUNDARY` belong to the victim; loads at or
/// above it belong to the attacker. Bit 34 is the lowest PC bit the
/// baseline table hasher ignores, which is precisely what makes the
/// attacker's placement both perfectly aliasing and perfectly attributable.
pub const TENANT_BOUNDARY: u64 = 1 << 34;

/// Victim code region (same neighbourhood as the synthetic SPEC profiles).
const V_PC: u64 = 0x40_0000;
/// Attacker code region: the victim's PCs with bit 34 set.
const A_PC: u64 = V_PC | TENANT_BOUNDARY;

/// Victim data region never written by anyone (alias attack: the victim
/// load is genuinely independent).
const V_QUIET_BASE: u64 = 0x7000_0000;
/// Victim data region for genuinely dependent pairs (flood/interleave).
const V_PAIR_BASE: u64 = 0x7100_0000;
/// Attacker data region (disjoint from every victim region, so the only
/// cross-tenant coupling is through the predictor).
const A_DATA_BASE: u64 = 0x7800_0000;

const V_DATA_REG: u8 = 8;
const V_DST_REG: u8 = 16;
const V_CONSUMER_REG: u8 = 32;
const A_DATA_REG: u8 = 9;
const A_DST_REG: u8 = 17;

/// Attacker training repetitions per victim block (alias attack). The
/// attacker wins the training tug-of-war against the victim's own
/// non-dependence allocations by rate.
const ALIAS_REPS: u64 = 6;
/// Direction schedule of the alias victim's context-rotating branch: bit
/// `iter % 64` of this constant. The rotation is what keeps the attack
/// *sustained* — with a fixed context the victim's own false-dependence
/// counter-training allocates a non-dependence entry into the top table
/// within a few iterations and (since cascades above the top table are
/// dropped) locks every shared context to `NoDependence` forever. Rotating
/// contexts means the victim's protective entries are per-context, the
/// attacker poisons each context right after the victim leaves it, and the
/// victim walks back into the poison one period later.
const ALIAS_DIRECTIONS: u64 = 0x9E37_79B9_7F4A_7C15;
/// Distinct attacker sites in the flood rotation.
const FLOOD_SITES: u64 = 512;
/// Flood sites trained per victim block.
const FLOOD_REPS: u64 = 16;
/// Victim slot rotation (interleave hammock): a not-taken iteration's last
/// writer is this many iterations old — far outside any in-flight window.
const SLOT_ROTATION: u64 = 64;

/// The attacker profiles of the mistraining suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Targeted false-bypass induction through full index/tag aliasing.
    Alias,
    /// Capacity attack: evict the victim's entries with high-usefulness
    /// dependence allocations.
    Flood,
    /// History desynchronisation plus anti-correlated context training.
    Interleave,
}

impl AttackKind {
    /// Every attacker profile, in canonical order.
    pub const ALL: [AttackKind; 3] = [AttackKind::Alias, AttackKind::Flood, AttackKind::Interleave];

    /// The profile's trace name (`mistrain_*`).
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Alias => "mistrain_alias",
            AttackKind::Flood => "mistrain_flood",
            AttackKind::Interleave => "mistrain_interleave",
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing an [`AttackKind`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAttackError(String);

impl fmt::Display for ParseAttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown attack kind {:?} (expected one of: mistrain_alias, \
             mistrain_flood, mistrain_interleave)",
            self.0
        )
    }
}

impl std::error::Error for ParseAttackError {}

impl FromStr for AttackKind {
    type Err = ParseAttackError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AttackKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| ParseAttackError(s.to_string()))
    }
}

/// Builds the interleaved attacker+victim trace for `kind`.
///
/// The same `(kind, seed, target_uops)` triple always yields an identical
/// trace, and the victim-side emission is identical to
/// [`victim_only`]'s — the attacker blocks are purely additive.
pub fn compose(kind: AttackKind, seed: u64, target_uops: usize) -> Trace {
    build(kind, seed, target_uops, true)
}

/// Builds the victim program of `kind` alone (the differential baseline).
pub fn victim_only(kind: AttackKind, seed: u64, target_uops: usize) -> Trace {
    build(kind, seed, target_uops, false)
}

fn build(kind: AttackKind, seed: u64, target_uops: usize, with_attacker: bool) -> Trace {
    // Attacker-only randomness: the victim must emit identically with and
    // without the attacker for the differential measurement to be fair.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xadd5_ea1_0f_bad ^ kind.name().len() as u64);
    let mut b = TraceBuilder::new();
    let mut iter: u64 = 0;
    while b.len() < target_uops {
        match kind {
            AttackKind::Alias => {
                // Victim first: the attacker's training loads run with *no*
                // branches between them and the victim's load, so they
                // observe bit-for-bit the folded-history context the victim
                // just predicted in — and will predict in again one
                // direction-schedule period later.
                victim_alias_block(&mut b, iter);
                if with_attacker {
                    attacker_alias_block(&mut b, iter);
                }
            }
            AttackKind::Flood => {
                if with_attacker {
                    attacker_flood_block(&mut b, iter);
                }
                victim_pair_block(&mut b, iter);
            }
            AttackKind::Interleave => {
                if with_attacker {
                    attacker_interleave_block(&mut b, iter, &mut rng);
                }
                victim_hammock_block(&mut b, iter);
            }
        }
        iter += 1;
    }
    let name = if with_attacker {
        kind.name().to_string()
    } else {
        format!("{}_victim", kind.name())
    };
    b.build(name)
}

// ---------------------------------------------------------------- victim

/// Alias-attack victim: a data-dependent branch whose direction follows
/// [`ALIAS_DIRECTIONS`] (rotating the folded-history context with period
/// 64) and a genuinely independent load. Any dependence prediction on this
/// load is attacker-induced.
fn victim_alias_block(b: &mut TraceBuilder, iter: u64) {
    let taken = (ALIAS_DIRECTIONS >> (iter % 64)) & 1 != 0;
    b.branch(V_PC, taken, None);
    // Rotate through a large never-written region so the load has no
    // last writer at all.
    let addr = V_QUIET_BASE + (iter % 4096) * 64;
    b.load(V_PC + 0x60, addr, 8, V_DST_REG, None);
    b.alu(V_PC + 0x70, [Some(V_DST_REG), None], Some(V_CONSUMER_REG), 1);
}

/// Flood-attack victim: a genuinely dependent distance-1 pair the
/// predictor should learn to bypass. Eviction of its entries shows up as
/// induced missed dependencies.
fn victim_pair_block(b: &mut TraceBuilder, iter: u64) {
    for site in 0..4u64 {
        let pc = V_PC + site * 0x100;
        let slot = V_PAIR_BASE + site * 64;
        b.alu(pc + 0x10, [None, None], Some(V_DATA_REG), 1);
        b.store(pc + 0x14, slot, 8, V_DATA_REG);
        b.load(pc + 0x60, slot, 8, V_DST_REG, None);
        b.alu(pc + 0x70, [Some(V_DST_REG), None], Some(V_CONSUMER_REG), 1);
    }
    let _ = iter;
}

/// Interleave-attack victim: a history-correlated hammock (§III-A shape).
/// Even iterations store then load (distance 1); odd iterations load a
/// slot whose last writer is `SLOT_ROTATION` iterations old, i.e. a
/// genuine runtime non-dependence.
fn victim_hammock_block(b: &mut TraceBuilder, iter: u64) {
    let taken = iter % 2 == 0;
    let slot = V_PAIR_BASE + 0x1_0000 + (iter % SLOT_ROTATION) * 64;
    b.branch(V_PC, taken, None);
    if taken {
        b.alu(V_PC + 0x10, [None, None], Some(V_DATA_REG), 1);
        b.store(V_PC + 0x14, slot, 8, V_DATA_REG);
    }
    b.load(V_PC + 0x60, slot, 8, V_DST_REG, None);
    b.alu(V_PC + 0x70, [Some(V_DST_REG), None], Some(V_CONSUMER_REG), 1);
}

// -------------------------------------------------------------- attacker

/// Alias attacker: saturate the shared entry with a distance-1 bypass
/// pattern. The block runs directly after the victim's load and contains
/// **no branches**, so every training load observes exactly the folded
/// history context (at every table length) that the victim's load just
/// predicted in; the load PC differs from the victim's only at bit 34, so
/// the trained entries are the ones the victim's next visit to this
/// context will hit. The victim's false bypass forwards from the last of
/// these stores (the only stores in the trace).
fn attacker_alias_block(b: &mut TraceBuilder, iter: u64) {
    for _ in 0..ALIAS_REPS {
        b.alu(A_PC + 0x10, [None, None], Some(A_DATA_REG), 1);
        b.store(A_PC + 0x14, A_DATA_BASE, 8, A_DATA_REG);
        b.load(A_PC + 0x60, A_DATA_BASE, 8, A_DST_REG, None);
    }
    let _ = iter;
}

/// Flood attacker: rotate through [`FLOOD_SITES`] distinct sites, each a
/// distance-1 dependent pair, so every round allocates fresh entries at
/// the dependence-allocation usefulness across the whole table.
fn attacker_flood_block(b: &mut TraceBuilder, iter: u64) {
    for j in 0..FLOOD_REPS {
        let site = (iter * FLOOD_REPS + j) % FLOOD_SITES;
        let pc = A_PC + 0x1_0000 + site * 0x40;
        let slot = A_DATA_BASE + site * 64;
        b.alu(pc + 0x10, [None, None], Some(A_DATA_REG), 1);
        b.store(pc + 0x14, slot, 8, A_DATA_REG);
        b.load(pc + 0x20, slot, 8, A_DST_REG, None);
    }
}

/// Interleave attacker: a variable-length burst of branches desynchronises
/// the victim's history, then an aliased pair trained in the *opposite*
/// phase poisons whichever context the victim lands in.
fn attacker_interleave_block(b: &mut TraceBuilder, iter: u64, rng: &mut StdRng) {
    let burst = 1 + (rng.random::<f64>() * 4.0) as u64; // 1..=4
    for k in 0..burst {
        b.branch(A_PC + 0x200 + k * 0x20, (iter + k) % 3 != 0, None);
    }
    // Anti-correlated aliased hammock: dependent exactly when the victim's
    // phase is independent.
    let taken = iter % 2 != 0;
    b.branch(A_PC, taken, None);
    let slot = A_DATA_BASE + 0x1_0000;
    if taken {
        b.alu(A_PC + 0x10, [None, None], Some(A_DATA_REG), 1);
        b.store(A_PC + 0x14, slot, 8, A_DATA_REG);
    }
    b.load(A_PC + 0x60, slot, 8, A_DST_REG, None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot_sim::uop::UopKind;

    #[test]
    fn names_parse_back() {
        for kind in AttackKind::ALL {
            assert_eq!(kind.name().parse::<AttackKind>().unwrap(), kind);
        }
        assert!("mistrain_nope".parse::<AttackKind>().is_err());
    }

    #[test]
    fn composed_traces_are_deterministic_and_consistent() {
        for kind in AttackKind::ALL {
            let a = compose(kind, 7, 10_000);
            let b = compose(kind, 7, 10_000);
            assert_eq!(a.uops, b.uops, "{kind} not deterministic");
            a.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(a.len() >= 10_000);
            assert_eq!(a.name, kind.name());
        }
    }

    #[test]
    fn victim_only_is_the_attackers_complement() {
        // Removing the attacker blocks must leave the victim's uop stream
        // untouched (same PCs, same order) — the differential measurement
        // depends on it.
        for kind in AttackKind::ALL {
            let full = compose(kind, 3, 8_000);
            let alone = victim_only(kind, 3, 8_000);
            assert_eq!(alone.name, format!("{}_victim", kind.name()));
            alone.validate().unwrap();
            let victim_in_full: Vec<_> = full
                .uops
                .iter()
                .filter(|u| u.pc < TENANT_BOUNDARY)
                .map(|u| u.pc)
                .collect();
            let victim_alone: Vec<_> = alone.uops.iter().map(|u| u.pc).collect();
            let n = victim_in_full.len().min(victim_alone.len());
            assert!(n > 500, "{kind}: too few victim uops ({n})");
            assert_eq!(victim_in_full[..n], victim_alone[..n], "{kind}");
        }
    }

    #[test]
    fn tenants_are_disjoint_and_both_present() {
        for kind in AttackKind::ALL {
            let t = compose(kind, 11, 12_000);
            let mut victim_loads = 0usize;
            let mut attacker_loads = 0usize;
            for u in &t.uops {
                if let UopKind::Load { .. } = u.kind {
                    if u.pc < TENANT_BOUNDARY {
                        victim_loads += 1;
                    } else {
                        attacker_loads += 1;
                    }
                }
            }
            assert!(victim_loads > 100, "{kind}: victim loads {victim_loads}");
            assert!(attacker_loads > 100, "{kind}: attacker loads {attacker_loads}");
        }
    }

    #[test]
    fn alias_attacker_pcs_fold_onto_victim_pcs() {
        // The whole construction rests on the attacker PC differing from
        // the victim PC only at bit 34.
        assert_eq!(A_PC ^ V_PC, 1 << 34);
        assert_eq!(A_PC & (TENANT_BOUNDARY - 1), V_PC);
    }

    #[test]
    fn alias_victim_loads_are_genuinely_independent() {
        let t = compose(AttackKind::Alias, 5, 10_000);
        for u in &t.uops {
            if let UopKind::Load { dep, .. } = u.kind {
                if u.pc < TENANT_BOUNDARY {
                    assert!(dep.is_none(), "victim load at {:#x} has a dep", u.pc);
                }
            }
        }
    }
}
