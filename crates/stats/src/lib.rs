//! Statistics utilities for the MASCOT reproduction.
//!
//! This crate hosts the small, dependency-free numerical pieces shared by the
//! predictor crates, the simulator and the benchmark harness:
//!
//! * [`SaturatingCounter`] — the bounded confidence counters used by every
//!   predictor in the paper (usefulness, bypass, branch-direction counters).
//! * [`ConfusionMatrix`] and [`F1Accumulator`] — precision / recall / F1
//!   bookkeeping used by the §IV-F tuning methodology (Figs. 13–14).
//! * [`markov`] — expected-hitting-time analysis of saturating counters,
//!   reproducing the paper's footnote 1 (a 3-bit counter at a 70/30 mix needs
//!   ≈1,625 predictions to decay to zero).
//! * [`summary`] — geometric means, MPKI and other aggregate helpers used to
//!   report the evaluation figures.
//! * [`pollution`] — cross-context pollution rates and differential attack
//!   success for the adversarial mistraining suite (DESIGN.md §12).
//! * [`projection`] — relative-error and error-bar accounting for the
//!   sampled-simulation projection (DESIGN.md §13).
//!
//! # Examples
//!
//! ```
//! use mascot_stats::SaturatingCounter;
//!
//! let mut u = SaturatingCounter::new(3, 6); // 3-bit counter, initial value 6
//! u.increment();
//! assert_eq!(u.value(), 7);
//! u.increment(); // saturates
//! assert_eq!(u.value(), 7);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod confusion;
pub mod counter;
pub mod markov;
pub mod pollution;
pub mod projection;
pub mod summary;

pub use confusion::{ConfusionMatrix, F1Accumulator};
pub use counter::SaturatingCounter;
pub use projection::ErrorBar;
