//! Markov-chain analysis of saturating counters.
//!
//! §III-A of the paper argues that relying on confidence decay to learn a
//! non-dependence is far too slow: footnote 1 states that a 3-bit counter
//! initialised to its maximum value takes an expected **1,625 predictions**
//! to reach zero when the entry is correct 70 % of the time. This module
//! reproduces that computation exactly.
//!
//! A saturating counter under a Bernoulli correct/incorrect stream is a
//! birth–death Markov chain on states `0..=max`: a correct prediction
//! (probability `p`) increments (saturating at the top), an incorrect one
//! (probability `1 - p`) decrements. The expected number of steps to first
//! hit zero has the classic closed-form recurrence implemented here.

/// Expected number of predictions for a saturating counter to first reach
/// zero.
///
/// * `bits` — counter width; the chain has states `0..=2^bits - 1`.
/// * `start` — initial counter value.
/// * `p_correct` — probability that a prediction is correct (increments).
///
/// Returns `0.0` when `start == 0`. Uses the birth–death hitting-time
/// recurrence: with `q = 1 - p`, the expected time `h_i` to step from state
/// `i` down to `i - 1` satisfies `h_top = 1/q` (increments at the top
/// saturate) and `h_i = (1 + p · h_{i+1}) / q` below the top; the answer is
/// `Σ_{i=1..=start} h_i`.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=7`, `start` exceeds the maximum value, or
/// `p_correct` is not in `[0, 1)` (with `p = 1` the counter never decays).
///
/// # Examples
///
/// ```
/// use mascot_stats::markov::expected_predictions_to_zero;
///
/// // The paper's footnote 1: 3-bit counter, initialised to max, 70 % correct.
/// let n = expected_predictions_to_zero(3, 7, 0.7);
/// assert!((n - 1625.0).abs() < 1.0);
/// ```
pub fn expected_predictions_to_zero(bits: u8, start: u8, p_correct: f64) -> f64 {
    assert!((1..=7).contains(&bits), "counter width must be in 1..=7 bits");
    let max = (1u16 << bits) - 1;
    assert!(
        u16::from(start) <= max,
        "start {start} exceeds counter max {max}"
    );
    assert!(
        (0.0..1.0).contains(&p_correct),
        "p_correct must be in [0, 1); got {p_correct}"
    );
    if start == 0 {
        return 0.0;
    }
    let p = p_correct;
    let q = 1.0 - p;
    // h[i] = expected steps to go from state i to i-1, for i in 1..=max.
    let mut h = vec![0.0f64; usize::from(max) + 1];
    h[usize::from(max)] = 1.0 / q;
    for i in (1..usize::from(max)).rev() {
        h[i] = (1.0 + p * h[i + 1]) / q;
    }
    h[1..=usize::from(start)].iter().sum()
}

/// Expected number of predictions for the counter to first *saturate*
/// (reach its maximum) from `start`, the mirror-image question: how quickly
/// can an entry gain enough confidence to be trusted for SMB.
///
/// # Panics
///
/// Panics under the same conditions as [`expected_predictions_to_zero`],
/// except that here `p_correct` must be in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use mascot_stats::markov::expected_predictions_to_saturate;
///
/// // A 2-bit bypass counter allocated at 1 with 95 % bypassable outcomes.
/// let n = expected_predictions_to_saturate(2, 1, 0.95);
/// assert!(n > 2.0 && n < 3.0);
/// ```
pub fn expected_predictions_to_saturate(bits: u8, start: u8, p_correct: f64) -> f64 {
    assert!((1..=7).contains(&bits), "counter width must be in 1..=7 bits");
    let max = (1u16 << bits) - 1;
    assert!(
        u16::from(start) <= max,
        "start {start} exceeds counter max {max}"
    );
    assert!(
        p_correct > 0.0 && p_correct <= 1.0,
        "p_correct must be in (0, 1]; got {p_correct}"
    );
    if u16::from(start) == max {
        return 0.0;
    }
    let p = p_correct;
    let q = 1.0 - p;
    // g[i] = expected steps to go from state i to i+1, for i in 0..max.
    // At state 0 a decrement saturates, so g[0] = 1/p; above,
    // g[i] = (1 + q * g[i-1]) / p.
    let mut g = vec![0.0f64; usize::from(max)];
    g[0] = 1.0 / p;
    for i in 1..usize::from(max) {
        g[i] = (1.0 + q * g[i - 1]) / p;
    }
    g[usize::from(start)..].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The footnote-1 claim, checked tightly: 1,625 expected predictions.
    #[test]
    fn footnote_one_value() {
        let n = expected_predictions_to_zero(3, 7, 0.7);
        assert!((n - 1625.0).abs() < 1.0, "got {n}");
    }

    #[test]
    fn zero_start_needs_zero_steps() {
        assert_eq!(expected_predictions_to_zero(3, 0, 0.7), 0.0);
    }

    #[test]
    fn always_wrong_decays_linearly() {
        // p = 0 means every prediction decrements: exactly `start` steps.
        let n = expected_predictions_to_zero(3, 5, 0.0);
        assert!((n - 5.0).abs() < 1e-12);
    }

    #[test]
    fn decay_time_grows_with_accuracy() {
        let lo = expected_predictions_to_zero(3, 7, 0.5);
        let hi = expected_predictions_to_zero(3, 7, 0.7);
        assert!(hi > lo);
    }

    #[test]
    fn decay_time_grows_with_width() {
        let narrow = expected_predictions_to_zero(2, 3, 0.7);
        let wide = expected_predictions_to_zero(4, 15, 0.7);
        assert!(wide > narrow);
    }

    #[test]
    fn saturate_from_max_is_zero() {
        assert_eq!(expected_predictions_to_saturate(2, 3, 0.9), 0.0);
    }

    #[test]
    fn always_right_saturates_linearly() {
        // p = 1 means every prediction increments: max - start steps.
        let n = expected_predictions_to_saturate(3, 2, 1.0);
        assert!((n - 5.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        // Cheap deterministic LCG so the test has no external dependencies.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let p = 0.6;
        let trials = 20_000;
        let mut total_steps = 0u64;
        for _ in 0..trials {
            let mut v: i32 = 7;
            loop {
                total_steps += 1;
                if next() < p {
                    v = (v + 1).min(7);
                } else {
                    v -= 1;
                    if v == 0 {
                        break;
                    }
                }
            }
        }
        let empirical = total_steps as f64 / trials as f64;
        let analytic = expected_predictions_to_zero(3, 7, p);
        let rel = (empirical - analytic).abs() / analytic;
        assert!(rel < 0.05, "empirical {empirical} vs analytic {analytic}");
    }

    #[test]
    #[should_panic(expected = "p_correct")]
    fn decay_with_p_one_panics() {
        let _ = expected_predictions_to_zero(3, 7, 1.0);
    }
}
