//! Projection error accounting for sampled simulation (DESIGN.md §13).
//!
//! Cluster-and-project replaces a full-trace simulation with a
//! cluster-weighted sum over representative intervals; this module hosts
//! the *error side* of that bargain: signed relative error of a projected
//! metric against an occasional full reference run, and an accumulator
//! that turns a handful of such comparisons into an honest error bar
//! (mean/worst absolute error over n references).

/// Signed relative error of `projected` against `reference`:
/// `(projected - reference) / |reference|`. A zero reference with a
/// nonzero projection reports infinity (the projection invented signal);
/// two zeros agree exactly.
pub fn relative_error(projected: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if projected == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (projected - reference) / reference.abs()
    }
}

/// An error bar over a set of projected-vs-reference comparisons: each
/// [`record`](ErrorBar::record)ed sample is one metric projected by the
/// sampled pipeline and re-measured by a full reference run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ErrorBar {
    /// Number of reference comparisons recorded.
    pub samples: u64,
    /// Σ |relative error| over the samples.
    sum_abs: f64,
    /// Worst |relative error| seen.
    max_abs: f64,
}

impl ErrorBar {
    /// An empty error bar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one projected-vs-reference comparison.
    pub fn record(&mut self, projected: f64, reference: f64) {
        let err = relative_error(projected, reference).abs();
        self.samples += 1;
        self.sum_abs += err;
        self.max_abs = self.max_abs.max(err);
    }

    /// Mean absolute relative error, or 0 with no samples.
    pub fn mean_abs(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_abs / self.samples as f64
        }
    }

    /// Worst absolute relative error seen.
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// True when every recorded comparison stayed within `bound`
    /// (absolute relative error). Vacuously true with no samples — callers
    /// gating on this should also require `samples > 0`.
    pub fn within(&self, bound: f64) -> bool {
        self.max_abs <= bound
    }

    /// Renders as `±x.x% (worst ±y.y%, n refs)`.
    pub fn render(&self) -> String {
        format!(
            "±{:.2}% (worst ±{:.2}%, {} refs)",
            self.mean_abs() * 100.0,
            self.max_abs * 100.0,
            self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_signs_and_zeros() {
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.9, 1.0) + 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.5, 0.0), f64::INFINITY);
        // Negative references normalise by magnitude.
        assert!((relative_error(-0.9, -1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_bar_tracks_mean_and_worst() {
        let mut bar = ErrorBar::new();
        bar.record(1.02, 1.0); // +2%
        bar.record(0.96, 1.0); // -4%
        assert_eq!(bar.samples, 2);
        assert!((bar.mean_abs() - 0.03).abs() < 1e-12);
        assert!((bar.max_abs() - 0.04).abs() < 1e-12);
        assert!(bar.within(0.05));
        assert!(!bar.within(0.03));
        assert!(bar.render().contains("2 refs"));
    }

    #[test]
    fn empty_error_bar_is_vacuously_within() {
        let bar = ErrorBar::new();
        assert_eq!(bar.mean_abs(), 0.0);
        assert!(bar.within(0.0));
    }
}
