//! Cross-context pollution metrics for adversarial mistraining analysis
//! (DESIGN.md §12).
//!
//! A mistraining attack is measured *differentially*: the victim program
//! runs once alone and once interleaved with the attacker, and the attack's
//! effect is the increase in the victim's misprediction rate between the
//! two runs. These helpers keep that arithmetic in one place so the
//! simulator's per-tenant counters, the benchmark harness and the CI gate
//! all agree on the definitions:
//!
//! * [`rate`] — events per committed load (0 when the tenant had no loads).
//! * [`induced`] — the attacker-attributable share of a rate: the
//!   under-attack rate minus the victim-alone baseline, clamped at zero
//!   (the attacker cannot be credited for *improving* the victim).
//! * [`reduction_factor`] — how many times smaller a defense makes the
//!   induced rate; the `≥ 10×` security gate compares this.

/// Events per committed load; `0.0` when there were no loads.
pub fn rate(events: u64, loads: u64) -> f64 {
    if loads == 0 {
        0.0
    } else {
        events as f64 / loads as f64
    }
}

/// The attacker-induced share of a victim rate: `under_attack - alone`,
/// clamped at zero. Both inputs are rates from [`rate`] (or any other
/// per-load fraction) measured over the *same victim program*.
pub fn induced(alone: f64, under_attack: f64) -> f64 {
    (under_attack - alone).max(0.0)
}

/// How many times smaller `defended` is than `baseline` (both induced
/// rates). Returns `f64::INFINITY` when the defense eliminates the attack
/// entirely (`defended == 0`) and `0.0` when there was no baseline attack
/// to reduce.
pub fn reduction_factor(baseline: f64, defended: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else if defended <= 0.0 {
        f64::INFINITY
    } else {
        baseline / defended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_handles_zero_loads() {
        assert_eq!(rate(5, 0), 0.0);
        assert_eq!(rate(5, 10), 0.5);
    }

    #[test]
    fn induced_clamps_at_zero() {
        assert!((induced(0.01, 0.21) - 0.2).abs() < 1e-12);
        assert_eq!(induced(0.30, 0.10), 0.0);
    }

    #[test]
    fn reduction_factor_edges() {
        assert_eq!(reduction_factor(0.2, 0.01), 20.0);
        assert_eq!(reduction_factor(0.2, 0.0), f64::INFINITY);
        assert_eq!(reduction_factor(0.0, 0.1), 0.0);
    }
}
