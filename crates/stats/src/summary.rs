//! Aggregate reporting helpers: geometric means, MPKI, normalisation.
//!
//! The paper reports every IPC figure as a per-benchmark ratio against a
//! perfect-MDP baseline, summarised by geometric mean (§VI-A), and predictor
//! accuracy as mispredictions per kilo-instruction (MPKI).

/// Geometric mean of a sequence of positive values.
///
/// Returns `None` for an empty input or if any value is non-positive (a
/// non-positive IPC ratio indicates a broken run and should not be silently
/// folded into a summary).
///
/// # Examples
///
/// ```
/// use mascot_stats::summary::geometric_mean;
///
/// let g = geometric_mean([1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert!(geometric_mean([]).is_none());
/// ```
pub fn geometric_mean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// Arithmetic mean; `None` for an empty input.
///
/// # Examples
///
/// ```
/// use mascot_stats::summary::mean;
///
/// assert_eq!(mean([2.0, 4.0]), Some(3.0));
/// ```
pub fn mean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Mispredictions per kilo-instruction.
///
/// # Examples
///
/// ```
/// use mascot_stats::summary::mpki;
///
/// assert!((mpki(50, 100_000) - 0.5).abs() < 1e-12);
/// ```
pub fn mpki(mispredictions: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        mispredictions as f64 * 1000.0 / instructions as f64
    }
}

/// Normalises `value` against `baseline` (e.g. IPC vs perfect MDP).
///
/// Returns `None` when the baseline is non-positive.
///
/// # Examples
///
/// ```
/// use mascot_stats::summary::normalize;
///
/// assert_eq!(normalize(1.02, 1.0), Some(1.02));
/// assert_eq!(normalize(1.0, 0.0), None);
/// ```
pub fn normalize(value: f64, baseline: f64) -> Option<f64> {
    if baseline <= 0.0 {
        None
    } else {
        Some(value / baseline)
    }
}

/// Percentage change of `value` relative to `baseline`, in percent.
///
/// # Examples
///
/// ```
/// use mascot_stats::summary::percent_change;
///
/// assert!((percent_change(1.019, 1.0).unwrap() - 1.9).abs() < 1e-9);
/// ```
pub fn percent_change(value: f64, baseline: f64) -> Option<f64> {
    normalize(value, baseline).map(|r| (r - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values_is_value() {
        let g = geometric_mean(std::iter::repeat_n(3.5, 10)).unwrap();
        assert!((g - 3.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        assert!(geometric_mean([1.0, 0.0]).is_none());
        assert!(geometric_mean([1.0, -2.0]).is_none());
    }

    #[test]
    fn geomean_below_arithmetic_mean() {
        let values = [1.0, 2.0, 8.0];
        let g = geometric_mean(values).unwrap();
        let a = mean(values).unwrap();
        assert!(g < a);
    }

    #[test]
    fn mean_empty_is_none() {
        assert!(mean([]).is_none());
    }

    #[test]
    fn mpki_zero_instructions() {
        assert_eq!(mpki(100, 0), 0.0);
    }

    #[test]
    fn percent_change_roundtrip() {
        let p = percent_change(2.0, 1.0).unwrap();
        assert!((p - 100.0).abs() < 1e-12);
        assert!(percent_change(1.0, 0.0).is_none());
    }
}
