//! Bounded saturating counters.
//!
//! Every predictor in the paper is built from small saturating counters: the
//! 3-bit usefulness and 2-bit bypass counters of a MASCOT entry (Fig. 6), the
//! 4-bit usefulness counter of PHAST, the 7-bit confidence counter of NoSQ
//! and the direction counters of the TAGE branch predictor.

use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// An unsigned saturating counter with a compile-time-unknown bit width.
///
/// The counter holds values in `0..=max()` where `max() == 2^bits - 1`.
/// Increments and decrements saturate instead of wrapping.
///
/// # Examples
///
/// ```
/// use mascot_stats::SaturatingCounter;
///
/// let mut c = SaturatingCounter::new(2, 0);
/// assert_eq!(c.max(), 3);
/// c.increment();
/// c.increment();
/// c.increment();
/// c.increment(); // saturates at 3
/// assert!(c.is_saturated());
/// c.reset();
/// assert_eq!(c.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates a counter with the given bit width and initial value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7, or if `initial` exceeds the
    /// maximum representable value.
    pub fn new(bits: u8, initial: u8) -> Self {
        assert!(bits > 0 && bits <= 7, "counter width must be in 1..=7 bits");
        let max = (1u8 << bits) - 1;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        Self { value: initial, max }
    }

    /// Current counter value.
    #[inline]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Largest representable value (`2^bits - 1`).
    #[inline]
    pub fn max(&self) -> u8 {
        self.max
    }

    /// True when the counter is at its maximum value.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.value == self.max
    }

    /// True when the counter is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// Increments, saturating at the maximum.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Resets the counter to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Sets the counter to an explicit value, clamping to the valid range.
    #[inline]
    pub fn set(&mut self, value: u8) {
        self.value = value.min(self.max);
    }

    /// Appends the counter to a snapshot payload (value, then max).
    pub fn snap_encode(&self, w: &mut SnapWriter) {
        w.u8(self.value);
        w.u8(self.max);
    }

    /// Decodes a counter from a snapshot payload, fail-closed: the stored
    /// maximum must be of the `2^bits - 1` form for a supported width and
    /// the value must not exceed it, so a corrupt byte can never produce a
    /// counter the constructor would have rejected.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] or [`SnapError::Corrupt`].
    pub fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let value = r.u8("counter value")?;
        let max = r.u8("counter max")?;
        let bits = max.count_ones() as u8;
        if bits == 0 || bits > 7 || max != (1u8 << bits) - 1 {
            return Err(SnapError::Corrupt("counter max is not 2^bits - 1"));
        }
        if value > max {
            return Err(SnapError::Corrupt("counter value exceeds max"));
        }
        Ok(Self { value, max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_respects_bits_and_initial() {
        let c = SaturatingCounter::new(3, 6);
        assert_eq!(c.value(), 6);
        assert_eq!(c.max(), 7);
        assert!(!c.is_saturated());
        assert!(!c.is_zero());
    }

    #[test]
    fn increment_saturates() {
        let mut c = SaturatingCounter::new(2, 3);
        c.increment();
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
    }

    #[test]
    fn decrement_saturates_at_zero() {
        let mut c = SaturatingCounter::new(2, 0);
        c.decrement();
        assert_eq!(c.value(), 0);
        assert!(c.is_zero());
    }

    #[test]
    fn set_clamps() {
        let mut c = SaturatingCounter::new(2, 0);
        c.set(17);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = SaturatingCounter::new(7, 100);
        c.reset();
        assert!(c.is_zero());
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_bits_rejected() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn oversized_initial_rejected() {
        let _ = SaturatingCounter::new(2, 4);
    }

    #[test]
    fn snap_roundtrip_and_fail_closed() {
        let c = SaturatingCounter::new(3, 6);
        let mut w = SnapWriter::new();
        c.snap_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(SaturatingCounter::snap_decode(&mut r).unwrap(), c);
        r.finish().unwrap();
        // value > max
        let mut r = SnapReader::new(&[5, 3]);
        assert!(SaturatingCounter::snap_decode(&mut r).is_err());
        // max not of 2^bits - 1 form
        let mut r = SnapReader::new(&[1, 5]);
        assert!(SaturatingCounter::snap_decode(&mut r).is_err());
        // max = 0 (zero-width counter)
        let mut r = SnapReader::new(&[0, 0]);
        assert!(SaturatingCounter::snap_decode(&mut r).is_err());
        // truncated
        let mut r = SnapReader::new(&[1]);
        assert!(SaturatingCounter::snap_decode(&mut r).is_err());
    }

    #[test]
    fn full_up_down_walk() {
        let mut c = SaturatingCounter::new(3, 0);
        for expected in 1..=7u8 {
            c.increment();
            assert_eq!(c.value(), expected);
        }
        for expected in (0..7u8).rev() {
            c.decrement();
            assert_eq!(c.value(), expected);
        }
    }
}
