//! Bounded saturating counters.
//!
//! Every predictor in the paper is built from small saturating counters: the
//! 3-bit usefulness and 2-bit bypass counters of a MASCOT entry (Fig. 6), the
//! 4-bit usefulness counter of PHAST, the 7-bit confidence counter of NoSQ
//! and the direction counters of the TAGE branch predictor.

use serde::{Deserialize, Serialize};

/// An unsigned saturating counter with a compile-time-unknown bit width.
///
/// The counter holds values in `0..=max()` where `max() == 2^bits - 1`.
/// Increments and decrements saturate instead of wrapping.
///
/// # Examples
///
/// ```
/// use mascot_stats::SaturatingCounter;
///
/// let mut c = SaturatingCounter::new(2, 0);
/// assert_eq!(c.max(), 3);
/// c.increment();
/// c.increment();
/// c.increment();
/// c.increment(); // saturates at 3
/// assert!(c.is_saturated());
/// c.reset();
/// assert_eq!(c.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates a counter with the given bit width and initial value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7, or if `initial` exceeds the
    /// maximum representable value.
    pub fn new(bits: u8, initial: u8) -> Self {
        assert!(bits > 0 && bits <= 7, "counter width must be in 1..=7 bits");
        let max = (1u8 << bits) - 1;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        Self { value: initial, max }
    }

    /// Current counter value.
    #[inline]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Largest representable value (`2^bits - 1`).
    #[inline]
    pub fn max(&self) -> u8 {
        self.max
    }

    /// True when the counter is at its maximum value.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.value == self.max
    }

    /// True when the counter is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// Increments, saturating at the maximum.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Resets the counter to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Sets the counter to an explicit value, clamping to the valid range.
    #[inline]
    pub fn set(&mut self, value: u8) {
        self.value = value.min(self.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_respects_bits_and_initial() {
        let c = SaturatingCounter::new(3, 6);
        assert_eq!(c.value(), 6);
        assert_eq!(c.max(), 7);
        assert!(!c.is_saturated());
        assert!(!c.is_zero());
    }

    #[test]
    fn increment_saturates() {
        let mut c = SaturatingCounter::new(2, 3);
        c.increment();
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
    }

    #[test]
    fn decrement_saturates_at_zero() {
        let mut c = SaturatingCounter::new(2, 0);
        c.decrement();
        assert_eq!(c.value(), 0);
        assert!(c.is_zero());
    }

    #[test]
    fn set_clamps() {
        let mut c = SaturatingCounter::new(2, 0);
        c.set(17);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = SaturatingCounter::new(7, 100);
        c.reset();
        assert!(c.is_zero());
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_bits_rejected() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn oversized_initial_rejected() {
        let _ = SaturatingCounter::new(2, 4);
    }

    #[test]
    fn full_up_down_walk() {
        let mut c = SaturatingCounter::new(3, 0);
        for expected in 1..=7u8 {
            c.increment();
            assert_eq!(c.value(), expected);
        }
        for expected in (0..7u8).rev() {
            c.decrement();
            assert_eq!(c.value(), expected);
        }
    }
}
