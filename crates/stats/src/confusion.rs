//! Confusion matrices and F1 accounting.
//!
//! The paper's §IV-F tuning methodology periodically computes, for every
//! entry in every MASCOT table, the F1 score of the predictions that entry
//! provided, then ranks entries by score (Fig. 14). [`F1Accumulator`] is the
//! per-entry bookkeeping object; [`ConfusionMatrix`] is the general-purpose
//! matrix also used for predictor-level accuracy reporting (Fig. 8).

use serde::{Deserialize, Serialize};

/// A binary confusion matrix with true/false positive/negative counts.
///
/// For memory-dependence prediction the convention throughout this
/// workspace is:
///
/// * **positive** — "this load depends on an in-flight prior store";
/// * **negative** — "this load is independent".
///
/// A *false positive* is therefore a **false dependence** (load stalled for
/// nothing) and a *false negative* is a **missed dependence** (load issued
/// early and squashed).
///
/// # Examples
///
/// ```
/// use mascot_stats::ConfusionMatrix;
///
/// let mut m = ConfusionMatrix::new();
/// m.record(true, true);   // predicted dependent, was dependent
/// m.record(true, false);  // false dependence
/// m.record(false, false); // correctly independent
/// assert_eq!(m.false_positives(), 1);
/// assert!((m.precision() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    tp: u64,
    fp: u64,
    tn: u64,
    fn_: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction/outcome pair.
    #[inline]
    pub fn record(&mut self, predicted_positive: bool, actually_positive: bool) {
        match (predicted_positive, actually_positive) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Count of true positives.
    pub fn true_positives(&self) -> u64 {
        self.tp
    }

    /// Count of false positives (false dependencies for MDP).
    pub fn false_positives(&self) -> u64 {
        self.fp
    }

    /// Count of true negatives.
    pub fn true_negatives(&self) -> u64 {
        self.tn
    }

    /// Count of false negatives (missed dependencies for MDP).
    pub fn false_negatives(&self) -> u64 {
        self.fn_
    }

    /// Total number of recorded events.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Total number of mispredictions (`FP + FN`).
    pub fn errors(&self) -> u64 {
        self.fp + self.fn_
    }

    /// Precision `TP / (TP + FP)`; 0 when no positive predictions were made.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `TP / (TP + FN)`; 0 when no positives were observed.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Accuracy `(TP + TN) / total`; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// The F1 score (harmonic mean of precision and recall).
    ///
    /// Returns 0 when either precision or recall is undefined or zero, which
    /// matches the paper's treatment of never-useful entries.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Clears all counts.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Periodic F1 accounting for one predictor entry (§IV-F).
///
/// The accumulator records a confusion matrix for the current period. At the
/// end of each period the caller invokes [`F1Accumulator::end_period`], which
/// snapshots the period's F1 score into a running average and resets the
/// matrix, exactly as the tuning methodology describes ("the values are
/// recorded and the F1 scores are reset. The recording from each period is
/// averaged together").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct F1Accumulator {
    current: ConfusionMatrix,
    f1_sum: f64,
    periods: u64,
}

impl F1Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction/outcome pair in the current period.
    #[inline]
    pub fn record(&mut self, predicted_positive: bool, actually_positive: bool) {
        self.current.record(predicted_positive, actually_positive);
    }

    /// The live confusion matrix for the current (unfinished) period.
    pub fn current(&self) -> &ConfusionMatrix {
        &self.current
    }

    /// Ends the current period: snapshots its F1 into the running average
    /// and resets the period matrix.
    pub fn end_period(&mut self) {
        self.f1_sum += self.current.f1();
        self.periods += 1;
        self.current.clear();
    }

    /// Number of completed periods.
    pub fn periods(&self) -> u64 {
        self.periods
    }

    /// Average F1 score across all completed periods (0 if none completed).
    pub fn average_f1(&self) -> f64 {
        if self.periods == 0 {
            0.0
        } else {
            self.f1_sum / self.periods as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_is_all_zero() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.total(), 0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn perfect_predictor_has_f1_one() {
        let mut m = ConfusionMatrix::new();
        for _ in 0..10 {
            m.record(true, true);
            m.record(false, false);
        }
        assert_eq!(m.errors(), 0);
        assert!((m.f1() - 1.0).abs() < 1e-12);
        assert!((m.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_matches_manual_computation() {
        let mut m = ConfusionMatrix::new();
        // TP=6, FP=2, FN=3, TN=9.
        for _ in 0..6 {
            m.record(true, true);
        }
        for _ in 0..2 {
            m.record(true, false);
        }
        for _ in 0..3 {
            m.record(false, true);
        }
        for _ in 0..9 {
            m.record(false, false);
        }
        let p = 6.0 / 8.0;
        let r = 6.0 / 9.0;
        let expected = 2.0 * p * r / (p + r);
        assert!((m.f1() - expected).abs() < 1e-12);
        assert_eq!(m.errors(), 5);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new();
        a.record(true, true);
        let mut b = ConfusionMatrix::new();
        b.record(false, true);
        b.record(true, false);
        a.merge(&b);
        assert_eq!(a.true_positives(), 1);
        assert_eq!(a.false_negatives(), 1);
        assert_eq!(a.false_positives(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn accumulator_averages_over_periods() {
        let mut acc = F1Accumulator::new();
        // Period 1: perfect (F1 = 1).
        acc.record(true, true);
        acc.record(false, false);
        acc.end_period();
        // Period 2: useless (F1 = 0).
        acc.record(false, true);
        acc.end_period();
        assert_eq!(acc.periods(), 2);
        assert!((acc.average_f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accumulator_resets_matrix_between_periods() {
        let mut acc = F1Accumulator::new();
        acc.record(true, true);
        acc.end_period();
        assert_eq!(acc.current().total(), 0);
    }
}
