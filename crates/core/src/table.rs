//! Set-associative tagged prediction tables, stored struct-of-arrays.
//!
//! MASCOT's tables are 4-way associative "to tolerate some conflicts between
//! entries with the same index" (§IV-B). The same structure backs PHAST and
//! NoSQ in the baselines crate, so the container is generic over the payload
//! type; replacement *policy* stays with each predictor.
//!
//! # Layout
//!
//! Tags and payloads live in two parallel flat vectors indexed by
//! `slot_id = set * assoc + way`. A probe therefore scans a small contiguous
//! run of `u64` tags — same-typed memory the compiler can compare with wide
//! loads — and touches the payload array only on a hit. The previous
//! array-of-`Option<Entry>` layout interleaved tag, counters and the `Option`
//! discriminant, so every tag compare dragged the whole entry through the
//! cache and defeated autovectorization.
//!
//! An invalid (never-allocated) way is encoded by the sentinel tag
//! [`INVALID_TAG`]. Real tags are partial-width (≤ 22 bits everywhere in this
//! workspace), so the sentinel is unreachable by construction.

use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// Tag value marking an invalid (empty) way.
///
/// Safe as a sentinel because every producer masks tags to well under 64
/// bits (`TableHasher` masks to `tag_bits`; NoSQ's widest tag is 22 bits).
pub const INVALID_TAG: u64 = u64::MAX;

/// A set-associative table of tagged payloads in struct-of-arrays layout.
///
/// # Examples
///
/// ```
/// use mascot::table::AssocTable;
///
/// let mut t: AssocTable<u32> = AssocTable::new(16, 4, 0);
/// assert!(t.find(3, 0x7).is_none());
/// t.try_insert(3, 0x7, 9, |_| false).unwrap();
/// assert_eq!(*t.find(3, 0x7).unwrap().1, 9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssocTable<P> {
    sets: usize,
    assoc: usize,
    /// One tag per slot; [`INVALID_TAG`] marks an empty way.
    tags: Vec<u64>,
    /// One payload per slot; meaningful only where the tag is valid.
    data: Vec<P>,
}

impl<P: Clone> AssocTable<P> {
    /// Creates an empty table with `sets` sets of `assoc` ways. `fill` seeds
    /// the payload array (its value is never observed while a way is
    /// invalid; pass any cheaply-cloned instance).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `assoc` is zero.
    pub fn new(sets: usize, assoc: usize, fill: P) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc > 0, "associativity must be non-zero");
        Self {
            sets,
            assoc,
            tags: vec![INVALID_TAG; sets * assoc],
            data: vec![fill; sets * assoc],
        }
    }
}

impl<P> AssocTable<P> {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways per set.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Total slot count (`sets * assoc`).
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    /// `log2(sets)`, the number of index bits this table consumes.
    pub fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Flat slot number for `(index, way)`, usable as a key into parallel
    /// side arrays (e.g. the tuning accumulators).
    #[inline]
    pub fn slot_id(&self, index: u64, way: usize) -> usize {
        debug_assert!((index as usize) < self.sets && way < self.assoc);
        index as usize * self.assoc + way
    }

    #[inline]
    fn set_base(&self, index: u64) -> usize {
        (index as usize & (self.sets - 1)) * self.assoc
    }

    /// The way in set `index` holding `tag`, if any. Touches only the
    /// contiguous tag lane — the cheapest possible probe.
    #[inline]
    pub fn way_of(&self, index: u64, tag: u64) -> Option<usize> {
        let base = self.set_base(index);
        self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == tag)
    }

    /// Finds the payload with `tag` in set `index`.
    #[inline]
    pub fn find(&self, index: u64, tag: u64) -> Option<(usize, &P)> {
        let way = self.way_of(index, tag)?;
        Some((way, &self.data[self.set_base(index) + way]))
    }

    /// Mutable variant of [`Self::find`].
    #[inline]
    pub fn find_mut(&mut self, index: u64, tag: u64) -> Option<(usize, &mut P)> {
        let way = self.way_of(index, tag)?;
        let base = self.set_base(index);
        Some((way, &mut self.data[base + way]))
    }

    /// True when way `way` of set `index` holds a live entry.
    #[inline]
    pub fn is_valid(&self, index: u64, way: usize) -> bool {
        self.tags[self.set_base(index) + way] != INVALID_TAG
    }

    /// The tags of one set's ways ([`INVALID_TAG`] where empty).
    #[inline]
    pub fn set_tags(&self, index: u64) -> &[u64] {
        let base = self.set_base(index);
        &self.tags[base..base + self.assoc]
    }

    /// The payload of `(index, way)`, valid or not.
    #[inline]
    pub fn payload(&self, index: u64, way: usize) -> &P {
        &self.data[self.set_base(index) + way]
    }

    /// Mutable payload of `(index, way)`, valid or not.
    #[inline]
    pub fn payload_mut(&mut self, index: u64, way: usize) -> &mut P {
        let base = self.set_base(index);
        &mut self.data[base + way]
    }

    /// Writes `(tag, payload)` into way `way` of set `index`, claiming the
    /// slot whether or not it was valid.
    #[inline]
    pub fn insert_at(&mut self, index: u64, way: usize, tag: u64, payload: P) {
        debug_assert_ne!(tag, INVALID_TAG, "real tags never equal the sentinel");
        let base = self.set_base(index);
        self.tags[base + way] = tag;
        self.data[base + way] = payload;
    }

    /// Invalidates way `way` of set `index` (payload left in place, unread).
    #[inline]
    pub fn invalidate(&mut self, index: u64, way: usize) {
        let base = self.set_base(index);
        self.tags[base + way] = INVALID_TAG;
    }

    /// Inserts `(tag, payload)` into set `index`, preferring an invalid way,
    /// then the first way whose payload `replaceable` accepts. Returns the
    /// way used, or `None` (entry dropped) if the set is full of
    /// irreplaceable entries.
    pub fn try_insert<F>(&mut self, index: u64, tag: u64, payload: P, replaceable: F) -> Option<usize>
    where
        F: Fn(&P) -> bool,
    {
        let base = self.set_base(index);
        let victim = self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == INVALID_TAG)
            .or_else(|| {
                (0..self.assoc).find(|&way| {
                    self.tags[base + way] != INVALID_TAG && replaceable(&self.data[base + way])
                })
            })?;
        self.tags[base + victim] = tag;
        self.data[base + victim] = payload;
        Some(victim)
    }

    /// Calls `f(way, &mut payload)` for every *valid* way of set `index`.
    /// The workhorse of decay / LRU-aging sweeps.
    #[inline]
    pub fn for_each_valid_mut<F>(&mut self, index: u64, mut f: F)
    where
        F: FnMut(usize, &mut P),
    {
        let base = self.set_base(index);
        for way in 0..self.assoc {
            if self.tags[base + way] != INVALID_TAG {
                f(way, &mut self.data[base + way]);
            }
        }
    }

    /// Calls `f(set_index, way, &mut payload)` for every valid slot in the
    /// table (whole-table decay sweeps).
    pub fn for_each_valid_slot_mut<F>(&mut self, mut f: F)
    where
        F: FnMut(u64, usize, &mut P),
    {
        for slot in 0..self.tags.len() {
            if self.tags[slot] != INVALID_TAG {
                f((slot / self.assoc) as u64, slot % self.assoc, &mut self.data[slot]);
            }
        }
    }

    /// Iterates all occupied slots as `(slot_id, &payload)`.
    pub fn iter_occupied(&self) -> impl Iterator<Item = (usize, &P)> {
        self.tags
            .iter()
            .zip(self.data.iter())
            .enumerate()
            .filter_map(|(id, (&t, p))| (t != INVALID_TAG).then_some((id, p)))
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }

    /// Clears every slot (payloads stay allocated but unreachable).
    pub fn clear(&mut self) {
        self.tags.fill(INVALID_TAG);
    }

    /// Appends the table to a snapshot payload: shape, then one tag per
    /// slot with the payload (encoded by `enc`) present only for valid
    /// ways. Payload layouts stay private to the type that owns them.
    pub fn snap_encode_with<F>(&self, w: &mut SnapWriter, mut enc: F)
    where
        F: FnMut(&P, &mut SnapWriter),
    {
        w.u32(self.sets as u32);
        w.u32(self.assoc as u32);
        for slot in 0..self.tags.len() {
            w.u64(self.tags[slot]);
            if self.tags[slot] != INVALID_TAG {
                enc(&self.data[slot], w);
            }
        }
    }
}

impl<P: Clone> AssocTable<P> {
    /// Decodes a table encoded by [`Self::snap_encode_with`], fail-closed:
    /// the stored shape must equal the shape the caller's configuration
    /// dictates (`sets`, `assoc`), every stored tag must pass `valid_tag`,
    /// and `dec` must accept every valid way's payload. On any mismatch the
    /// error propagates and no table is produced.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] on a shape/tag mismatch, plus whatever `dec`
    /// or the reader return.
    pub fn snap_decode_with<F, V>(
        r: &mut SnapReader<'_>,
        sets: usize,
        assoc: usize,
        fill: P,
        valid_tag: V,
        mut dec: F,
    ) -> Result<Self, SnapError>
    where
        F: FnMut(&mut SnapReader<'_>) -> Result<P, SnapError>,
        V: Fn(u64) -> bool,
    {
        let stored_sets = r.u32("table set count")? as usize;
        let stored_assoc = r.u32("table associativity")? as usize;
        if stored_sets != sets || stored_assoc != assoc {
            return Err(SnapError::Corrupt("table shape does not match config"));
        }
        let mut table = Self::new(sets, assoc, fill);
        for slot in 0..sets * assoc {
            let tag = r.u64("slot tag")?;
            if tag == INVALID_TAG {
                continue;
            }
            if !valid_tag(tag) {
                return Err(SnapError::Corrupt("slot tag out of range"));
            }
            table.tags[slot] = tag;
            table.data[slot] = dec(r)?;
        }
        Ok(table)
    }

    /// Union-merges `other`'s valid entries into this table (the N→M
    /// resharding path; see DESIGN.md §10). An incoming entry lands in the
    /// set its stored index dictates — both tables were indexed by the same
    /// hash over the same broadcast history, so coordinates are comparable.
    /// On a tag collision the incumbent is replaced only when
    /// `prefer_new(incoming, incumbent)`; a full set drops the incoming
    /// entry unless some way satisfies `prefer_new`. Returns the number of
    /// entries written.
    ///
    /// # Errors
    ///
    /// Fails when the shapes differ — merging across geometries would
    /// scramble the index space.
    pub fn merge_from_with<F>(&mut self, other: &Self, prefer_new: F) -> Result<u64, SnapError>
    where
        F: Fn(&P, &P) -> bool,
    {
        self.merge_from_resolve(other, |incoming, incumbent| prefer_new(incoming, incumbent))
    }

    /// [`Self::merge_from_with`] with a *mutating* conflict resolver: on a
    /// tag collision (or a full set), `resolve(incoming, incumbent)` decides
    /// whether the incoming entry replaces the incumbent, and may mutate the
    /// losing incumbent in place (e.g. decay its usefulness so a tie does
    /// not pin it forever — see DESIGN.md §12 on flooding attacks against
    /// ties-keep-the-incumbent merges).
    ///
    /// # Errors
    ///
    /// Fails when the shapes differ — merging across geometries would
    /// scramble the index space.
    pub fn merge_from_resolve<F>(&mut self, other: &Self, mut resolve: F) -> Result<u64, SnapError>
    where
        F: FnMut(&P, &mut P) -> bool,
    {
        if self.sets != other.sets || self.assoc != other.assoc {
            return Err(SnapError::Corrupt("cannot merge tables of different shapes"));
        }
        let mut written = 0u64;
        for slot in 0..other.tags.len() {
            let tag = other.tags[slot];
            if tag == INVALID_TAG {
                continue;
            }
            let index = (slot / self.assoc) as u64;
            let incoming = &other.data[slot];
            match self.find_mut(index, tag) {
                Some((_, incumbent)) => {
                    if resolve(incoming, incumbent) {
                        *incumbent = incoming.clone();
                        written += 1;
                    }
                }
                None => {
                    // Probe the set's ways in order, mirroring try_insert's
                    // preference for an empty way; a full set takes the
                    // first way the resolver surrenders.
                    let base = self.set_base(index);
                    let mut victim = self.tags[base..base + self.assoc]
                        .iter()
                        .position(|&t| t == INVALID_TAG);
                    if victim.is_none() {
                        victim = (0..self.assoc)
                            .find(|&way| resolve(incoming, &mut self.data[base + way]));
                    }
                    if let Some(way) = victim {
                        self.tags[base + way] = tag;
                        self.data[base + way] = incoming.clone();
                        written += 1;
                    }
                }
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct E {
        v: u32,
        evictable: bool,
    }

    fn e(v: u32) -> E {
        E {
            v,
            evictable: false,
        }
    }

    fn table(sets: usize, assoc: usize) -> AssocTable<E> {
        AssocTable::new(sets, assoc, e(0))
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut t = table(8, 4);
        assert_eq!(t.try_insert(5, 0xaa, e(1), |_| false), Some(0));
        let (way, found) = t.find(5, 0xaa).unwrap();
        assert_eq!(way, 0);
        assert_eq!(found.v, 1);
        assert!(t.find(5, 0xbb).is_none());
        assert!(t.find(4, 0xaa).is_none());
    }

    #[test]
    fn fills_ways_then_respects_replaceability() {
        let mut t = table(2, 4);
        for i in 0..4u64 {
            assert!(t.try_insert(0, i, e(i as u32), |_| false).is_some());
        }
        // Set full, nothing replaceable.
        assert_eq!(t.try_insert(0, 9, e(9), |_| false), None);
        assert_eq!(t.occupancy(), 4);
        // Now allow replacing the payload inserted under tag 2.
        let way = t.try_insert(0, 9, e(9), |x| x.v == 2).unwrap();
        assert_eq!(way, 2);
        assert!(t.find(0, 2).is_none());
        assert_eq!(t.find(0, 9).unwrap().1.v, 9);
    }

    #[test]
    fn index_wraps_by_mask() {
        let mut t = table(4, 2);
        t.try_insert(1, 7, e(7), |_| false).unwrap();
        // Index 5 aliases to set 1 for a 4-set table.
        assert!(t.find(5, 7).is_some());
    }

    #[test]
    fn find_mut_allows_in_place_update() {
        let mut t = table(4, 2);
        t.try_insert(2, 3, e(10), |_| false).unwrap();
        t.find_mut(2, 3).unwrap().1.v = 99;
        assert_eq!(t.find(2, 3).unwrap().1.v, 99);
    }

    #[test]
    fn slot_ids_are_unique_and_dense() {
        let t = table(4, 4);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..4u64 {
            for way in 0..4usize {
                assert!(seen.insert(t.slot_id(idx, way)));
            }
        }
        assert_eq!(seen.len(), t.capacity());
        assert!(seen.iter().all(|&id| id < t.capacity()));
    }

    #[test]
    fn clear_empties_table() {
        let mut t = table(4, 2);
        t.try_insert(0, 1, e(1), |_| false);
        t.clear();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn index_bits_matches_sets() {
        let t = table(128, 4);
        assert_eq!(t.index_bits(), 7);
    }

    #[test]
    fn insert_at_and_invalidate_manage_single_ways() {
        let mut t = table(4, 2);
        t.insert_at(1, 1, 0x5, e(42));
        assert!(t.is_valid(1, 1));
        assert!(!t.is_valid(1, 0));
        assert_eq!(t.find(1, 0x5), Some((1, &e(42))));
        t.invalidate(1, 1);
        assert!(t.find(1, 0x5).is_none());
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn valid_way_sweeps_skip_empty_slots() {
        let mut t = table(2, 4);
        t.insert_at(0, 1, 0x1, e(1));
        t.insert_at(0, 3, 0x3, e(3));
        let mut seen = Vec::new();
        t.for_each_valid_mut(0, |way, p| seen.push((way, p.v)));
        assert_eq!(seen, vec![(1, 1), (3, 3)]);
        let mut slots = Vec::new();
        t.for_each_valid_slot_mut(|set, way, p| slots.push((set, way, p.v)));
        assert_eq!(slots, vec![(0, 1, 1), (0, 3, 3)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = table(3, 4);
    }

    fn snap_roundtrip(t: &AssocTable<E>) -> AssocTable<E> {
        let mut w = SnapWriter::new();
        t.snap_encode_with(&mut w, |p, w| {
            w.u32(p.v);
            w.u8(u8::from(p.evictable));
        });
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let out = AssocTable::snap_decode_with(
            &mut r,
            t.sets(),
            t.assoc(),
            e(0),
            |_| true,
            |r| {
                Ok(E {
                    v: r.u32("v")?,
                    evictable: r.u8("evictable")? != 0,
                })
            },
        )
        .unwrap();
        r.finish().unwrap();
        out
    }

    #[test]
    fn snap_roundtrip_preserves_every_valid_slot() {
        let mut t = table(8, 4);
        t.insert_at(0, 1, 0x11, e(1));
        t.insert_at(3, 0, 0x22, e(2));
        t.insert_at(7, 3, 0x33, e(3));
        let back = snap_roundtrip(&t);
        assert_eq!(back.occupancy(), 3);
        for (idx, tag, v) in [(0u64, 0x11u64, 1u32), (3, 0x22, 2), (7, 0x33, 3)] {
            assert_eq!(back.find(idx, tag).unwrap().1.v, v);
        }
        // Empty ways stay empty (fill payload, invalid tag).
        assert!(!back.is_valid(0, 0));
    }

    #[test]
    fn snap_decode_rejects_shape_and_tag_mismatches() {
        let mut t = table(8, 4);
        t.insert_at(0, 0, 0x11, e(1));
        let mut w = SnapWriter::new();
        t.snap_encode_with(&mut w, |p, w| {
            w.u32(p.v);
            w.u8(0);
        });
        let bytes = w.into_bytes();
        // Wrong expected shape.
        let mut r = SnapReader::new(&bytes);
        assert!(AssocTable::snap_decode_with(&mut r, 4, 4, e(0), |_| true, |r| {
            Ok(e(r.u32("v")?))
        })
        .is_err());
        // Tag validator rejects.
        let mut r = SnapReader::new(&bytes);
        assert!(AssocTable::snap_decode_with(&mut r, 8, 4, e(0), |t| t < 0x10, |r| {
            let v = r.u32("v")?;
            r.u8("evictable")?;
            Ok(e(v))
        })
        .is_err());
    }

    #[test]
    fn merge_resolve_can_mutate_losing_incumbents() {
        let mut a = table(4, 2);
        let mut b = table(4, 2);
        a.insert_at(0, 0, 0x1, e(10));
        b.insert_at(0, 1, 0x1, e(10)); // tie on value: incumbent keeps the slot
        let written = a
            .merge_from_resolve(&b, |new, old| {
                if new.v > old.v {
                    true
                } else {
                    old.v -= 1; // losing incumbent pays a decay tick
                    false
                }
            })
            .unwrap();
        assert_eq!(written, 0);
        assert_eq!(a.find(0, 0x1).unwrap().1.v, 9, "tie decays the incumbent");
        // A full set consults the resolver per way and may mutate refusals.
        let mut c = table(1, 2);
        c.insert_at(0, 0, 0x2, e(5));
        c.insert_at(0, 1, 0x3, e(5));
        let mut d = table(1, 2);
        d.insert_at(0, 0, 0x4, e(5));
        c.merge_from_resolve(&d, |new, old| {
            if new.v > old.v {
                true
            } else {
                old.v -= 1;
                false
            }
        })
        .unwrap();
        assert_eq!(c.find(0, 0x2).unwrap().1.v, 4);
        assert_eq!(c.find(0, 0x3).unwrap().1.v, 4);
        assert!(c.find(0, 0x4).is_none(), "tied incoming entry is dropped");
    }

    #[test]
    fn merge_unions_and_prefers_by_policy() {
        let mut a = table(4, 2);
        let mut b = table(4, 2);
        a.insert_at(0, 0, 0x1, e(10));
        b.insert_at(1, 0, 0x2, e(20)); // lands in an empty set of a
        b.insert_at(0, 1, 0x1, e(99)); // same (set, tag) as a's entry
        let written = a.merge_from_with(&b, |new, old| new.v > old.v).unwrap();
        assert_eq!(written, 2);
        assert_eq!(a.find(0, 0x1).unwrap().1.v, 99, "higher value wins");
        assert_eq!(a.find(1, 0x2).unwrap().1.v, 20);
        // Merging the other way: a's (0, 0x1) holds 99, so b's 99 vs ... b
        // gains a's now-better entry; shapes must match.
        let tiny = table(2, 2);
        assert!(a.merge_from_with(&tiny, |_, _| false).is_err());
    }
}
