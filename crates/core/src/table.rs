//! Set-associative tagged prediction tables.
//!
//! MASCOT's tables are 4-way associative "to tolerate some conflicts between
//! entries with the same index" (§IV-B). The same structure backs PHAST and
//! NoSQ in the baselines crate, so the container is generic over the entry
//! type; replacement *policy* stays with each predictor.

use serde::{Deserialize, Serialize};

/// An entry that can be matched by tag within a set.
pub trait TaggedEntry {
    /// The entry's partial tag.
    fn tag(&self) -> u64;
}

/// A set-associative table of optional tagged entries.
///
/// Slots are `Option<E>`: `None` is an invalid (never-allocated) way.
///
/// # Examples
///
/// ```
/// use mascot::table::{AssocTable, TaggedEntry};
///
/// #[derive(Debug, Clone)]
/// struct E { tag: u64, payload: u32 }
/// impl TaggedEntry for E { fn tag(&self) -> u64 { self.tag } }
///
/// let mut t: AssocTable<E> = AssocTable::new(16, 4);
/// assert!(t.find(3, 0x7).is_none());
/// t.try_insert(3, E { tag: 0x7, payload: 9 }, |_| false).unwrap();
/// assert_eq!(t.find(3, 0x7).unwrap().1.payload, 9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssocTable<E> {
    sets: usize,
    assoc: usize,
    slots: Vec<Option<E>>,
}

impl<E: TaggedEntry> AssocTable<E> {
    /// Creates an empty table with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `assoc` is zero.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc > 0, "associativity must be non-zero");
        Self {
            sets,
            assoc,
            slots: (0..sets * assoc).map(|_| None).collect(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways per set.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Total slot count (`sets * assoc`).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// `log2(sets)`, the number of index bits this table consumes.
    pub fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Flat slot number for `(index, way)`, usable as a key into parallel
    /// side arrays (e.g. the tuning accumulators).
    #[inline]
    pub fn slot_id(&self, index: u64, way: usize) -> usize {
        debug_assert!((index as usize) < self.sets && way < self.assoc);
        index as usize * self.assoc + way
    }

    #[inline]
    fn set_range(&self, index: u64) -> std::ops::Range<usize> {
        let base = (index as usize & (self.sets - 1)) * self.assoc;
        base..base + self.assoc
    }

    /// Finds the entry with `tag` in set `index`.
    #[inline]
    pub fn find(&self, index: u64, tag: u64) -> Option<(usize, &E)> {
        let range = self.set_range(index);
        self.slots[range]
            .iter()
            .enumerate()
            .find_map(|(way, slot)| match slot {
                Some(e) if e.tag() == tag => Some((way, e)),
                _ => None,
            })
    }

    /// Mutable variant of [`Self::find`].
    #[inline]
    pub fn find_mut(&mut self, index: u64, tag: u64) -> Option<(usize, &mut E)> {
        let range = self.set_range(index);
        self.slots[range]
            .iter_mut()
            .enumerate()
            .find_map(|(way, slot)| match slot {
                Some(e) if e.tag() == tag => Some((way, e)),
                _ => None,
            })
    }

    /// Immutable view of one set's ways.
    pub fn set(&self, index: u64) -> &[Option<E>] {
        &self.slots[self.set_range(index)]
    }

    /// Mutable view of one set's ways (for custom replacement policies).
    pub fn set_mut(&mut self, index: u64) -> &mut [Option<E>] {
        let range = self.set_range(index);
        &mut self.slots[range]
    }

    /// Inserts `entry` into set `index`, preferring an invalid way, then the
    /// first way for which `replaceable` returns true. Returns the way used,
    /// or `None` (entry dropped) if the set is full of irreplaceable entries.
    pub fn try_insert<F>(&mut self, index: u64, entry: E, replaceable: F) -> Option<usize>
    where
        F: Fn(&E) -> bool,
    {
        let set = self.set_mut(index);
        if let Some(way) = set.iter().position(Option::is_none) {
            set[way] = Some(entry);
            return Some(way);
        }
        if let Some(way) = set
            .iter()
            .position(|slot| slot.as_ref().map(&replaceable).unwrap_or(false))
        {
            set[way] = Some(entry);
            return Some(way);
        }
        None
    }

    /// Iterates all occupied slots as `(slot_id, &entry)`.
    pub fn iter_occupied(&self) -> impl Iterator<Item = (usize, &E)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| slot.as_ref().map(|e| (id, e)))
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Clears every slot.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct E {
        tag: u64,
        v: u32,
        locked: bool,
    }

    impl TaggedEntry for E {
        fn tag(&self) -> u64 {
            self.tag
        }
    }

    fn e(tag: u64, v: u32) -> E {
        E {
            tag,
            v,
            locked: false,
        }
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut t: AssocTable<E> = AssocTable::new(8, 4);
        assert_eq!(t.try_insert(5, e(0xaa, 1), |_| false), Some(0));
        let (way, found) = t.find(5, 0xaa).unwrap();
        assert_eq!(way, 0);
        assert_eq!(found.v, 1);
        assert!(t.find(5, 0xbb).is_none());
        assert!(t.find(4, 0xaa).is_none());
    }

    #[test]
    fn fills_ways_then_respects_replaceability() {
        let mut t: AssocTable<E> = AssocTable::new(2, 4);
        for i in 0..4 {
            assert!(t.try_insert(0, e(i, i as u32), |_| false).is_some());
        }
        // Set full, nothing replaceable.
        assert_eq!(t.try_insert(0, e(9, 9), |_| false), None);
        assert_eq!(t.occupancy(), 4);
        // Now allow replacing entries with tag 2.
        let way = t.try_insert(0, e(9, 9), |x| x.tag == 2).unwrap();
        assert_eq!(way, 2);
        assert!(t.find(0, 2).is_none());
        assert_eq!(t.find(0, 9).unwrap().1.v, 9);
    }

    #[test]
    fn index_wraps_by_mask() {
        let mut t: AssocTable<E> = AssocTable::new(4, 2);
        t.try_insert(1, e(7, 7), |_| false).unwrap();
        // Index 5 aliases to set 1 for a 4-set table.
        assert!(t.find(5, 7).is_some());
    }

    #[test]
    fn find_mut_allows_in_place_update() {
        let mut t: AssocTable<E> = AssocTable::new(4, 2);
        t.try_insert(2, e(3, 10), |_| false).unwrap();
        t.find_mut(2, 3).unwrap().1.v = 99;
        assert_eq!(t.find(2, 3).unwrap().1.v, 99);
    }

    #[test]
    fn slot_ids_are_unique_and_dense() {
        let t: AssocTable<E> = AssocTable::new(4, 4);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..4u64 {
            for way in 0..4usize {
                assert!(seen.insert(t.slot_id(idx, way)));
            }
        }
        assert_eq!(seen.len(), t.capacity());
        assert!(seen.iter().all(|&id| id < t.capacity()));
    }

    #[test]
    fn clear_empties_table() {
        let mut t: AssocTable<E> = AssocTable::new(4, 2);
        t.try_insert(0, e(1, 1), |_| false);
        t.clear();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn index_bits_matches_sets() {
        let t: AssocTable<E> = AssocTable::new(128, 4);
        assert_eq!(t.index_bits(), 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _: AssocTable<E> = AssocTable::new(3, 4);
    }
}
