//! Global branch / path history and TAGE-style folded registers.
//!
//! MASCOT indexes each table with a hash of the load PC and an increasing
//! window of global branch history plus path history (§IV-B, Fig. 3).
//! Conditional branches contribute one taken/not-taken bit; indirect
//! branches contribute their target folded to 5 bits.
//!
//! [`FoldedHistory`] maintains the classic circular-shift-register folding:
//! the folded value is a pure function of the *contents* of the history
//! window (each event's contribution is rotated by its age), so identical
//! contexts always hash to identical indices regardless of when they occur.
//! Incremental updates are O(1); after a pipeline squash the register is
//! recomputed from the architectural event log in O(window) — or, when the
//! squash popped only a few events, unwound push-by-push in O(popped) via
//! [`rewind_hashers`].

use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Control-flow class of a history event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Direction-predicted branch: contributes its taken bit.
    Conditional,
    /// Indirect branch/call/return: contributes its target folded to 5 bits.
    Indirect,
}

/// One committed-path branch, as recorded in global history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchEvent {
    /// PC of the branch instruction.
    pub pc: u64,
    /// Conditional or indirect.
    pub kind: BranchKind,
    /// Direction (always `true` for indirect/unconditional transfers).
    pub taken: bool,
    /// Branch target.
    pub target: u64,
}

/// Width in bits of one event's history contribution.
pub const CHUNK_BITS: u32 = 5;

impl BranchEvent {
    /// The event's direction-history contribution: 1 bit for conditional
    /// branches, a 5-bit fold of the target for indirect branches (§IV-B).
    #[inline]
    pub fn chunk(&self) -> u64 {
        match self.kind {
            BranchKind::Conditional => u64::from(self.taken),
            BranchKind::Indirect => {
                let t = self.target >> 2;
                (t ^ (t >> 5) ^ (t >> 10) ^ (t >> 15)) & 0x1f
            }
        }
    }

    /// The event's path-history contribution: low PC bits.
    #[inline]
    pub fn path_chunk(&self) -> u64 {
        (self.pc >> 2) & 0x1f
    }
}

/// A bounded log of the most recent branch events, most recent last.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalHistory {
    events: VecDeque<BranchEvent>,
    capacity: usize,
    total: u64,
}

impl GlobalHistory {
    /// Creates a history log retaining the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be non-zero");
        Self {
            events: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Appends an event, evicting the oldest if at capacity.
    pub fn push(&mut self, event: BranchEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.total += 1;
    }

    /// The event `age` positions back (0 = most recent), if retained.
    #[inline]
    pub fn event_at_age(&self, age: usize) -> Option<&BranchEvent> {
        let len = self.events.len();
        if age < len {
            self.events.get(len - 1 - age)
        } else {
            None
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed (not capped by capacity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Replaces the log contents with `events` (oldest first), used when
    /// restoring the architectural path after a squash.
    pub fn replace(&mut self, events: &[BranchEvent]) {
        self.events.clear();
        let skip = events.len().saturating_sub(self.capacity);
        self.events.extend(events[skip..].iter().copied());
        self.total = events.len() as u64;
    }

    /// Iterates retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &BranchEvent> {
        self.events.iter()
    }

    /// Iterates retained events, newest first (age order). Recompute loops
    /// use this instead of one bounds-checked [`Self::event_at_age`] per age.
    #[inline]
    pub fn iter_newest_first(&self) -> impl Iterator<Item = &BranchEvent> {
        self.events.iter().rev()
    }

    /// The retention capacity this log was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends the log to a snapshot payload: capacity, lifetime total and
    /// every retained event, oldest first.
    pub fn snap_encode(&self, w: &mut SnapWriter) {
        w.u64(self.capacity as u64);
        w.u64(self.total);
        w.u32(self.events.len() as u32);
        for ev in &self.events {
            w.u64(ev.pc);
            w.u8(match ev.kind {
                BranchKind::Conditional => 0,
                BranchKind::Indirect => 1,
            });
            w.u8(u8::from(ev.taken));
            w.u64(ev.target);
        }
    }

    /// Decodes a log encoded by [`Self::snap_encode`], fail-closed. Unlike
    /// [`Self::replace`] (which resets `total` to the replacement length
    /// for squash recovery), this restores the lifetime push count exactly,
    /// so a restored predictor is bit-identical to the one snapshotted.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation or any internally inconsistent field
    /// (zero capacity, more events than capacity, total below the retained
    /// count, unknown branch kind).
    pub fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let capacity = r.u64("history capacity")? as usize;
        if capacity == 0 || capacity > (1 << 24) {
            return Err(SnapError::Corrupt("history capacity out of range"));
        }
        let total = r.u64("history total")?;
        let len = r.u32("history length")? as usize;
        if len > capacity {
            return Err(SnapError::Corrupt("history longer than its capacity"));
        }
        if total < len as u64 {
            return Err(SnapError::Corrupt("history total below retained count"));
        }
        let mut events = VecDeque::with_capacity(capacity);
        for _ in 0..len {
            let pc = r.u64("event pc")?;
            let kind = match r.u8("event kind")? {
                0 => BranchKind::Conditional,
                1 => BranchKind::Indirect,
                _ => return Err(SnapError::Corrupt("unknown branch kind")),
            };
            let taken = match r.u8("event taken")? {
                0 => false,
                1 => true,
                _ => return Err(SnapError::Corrupt("taken flag out of range")),
            };
            let target = r.u64("event target")?;
            events.push_back(BranchEvent {
                pc,
                kind,
                taken,
                target,
            });
        }
        Ok(Self {
            events,
            capacity,
            total,
        })
    }

    /// Pops and returns the newest event (squash-undo support; see
    /// [`rewind_hashers`]).
    pub fn pop_newest(&mut self) -> Option<BranchEvent> {
        let ev = self.events.pop_back();
        if ev.is_some() {
            self.total -= 1;
        }
        ev
    }

    /// Detects whether replacing this log with `events` amounts to undoing
    /// the newest `k <= max_pop` pushes, and if so returns that `k`.
    ///
    /// "Amounts to" is judged to fold precision: after popping `k` events,
    /// the newest `max_window` retained events (every age any fold over
    /// this log can see) must be identical to the replacement's, and every
    /// window must agree on whether it is full. The caller may then invert
    /// the last `k` [`FoldedHistory::push`]es per fold instead of
    /// recomputing each fold from scratch. Returns `None` for any other
    /// shape of replacement.
    pub fn undoable_suffix(
        &self,
        events: &[BranchEvent],
        max_window: u32,
        max_pop: usize,
    ) -> Option<usize> {
        let new_len = events.len().min(self.capacity);
        let len = self.events.len();
        if new_len == 0 {
            // Rewind to nothing: undoable only if every retained event is
            // still present back to the first push (no ring eviction), so
            // each inverted push sees the window fill it saw going forward.
            return (self.total == len as u64 && len <= max_pop).then_some(len);
        }
        let maxw = max_window as usize;
        let newest = events[events.len() - 1];
        for k in 0..=max_pop.min(len) {
            let keep = len - k;
            if keep == 0 {
                break;
            }
            // Window-fill agreement: either the logs match in length
            // exactly, or both are deep enough that every window is full
            // either way (the replacement may restore events this ring
            // evicted — those sit below any fold's reach).
            if keep != new_len && (keep < maxw || new_len < maxw) {
                continue;
            }
            if self.events[keep - 1] != newest {
                continue;
            }
            let depth = maxw.min(keep).min(new_len);
            if (1..depth).all(|age| self.events[keep - 1 - age] == events[events.len() - 1 - age])
            {
                return Some(k);
            }
        }
        None
    }
}

/// Deepest squash the fold-undo fast path will unwind; anything deeper
/// falls back to the full recompute. Each undone event costs four fold
/// inversions per hasher, while the recompute folds every window from
/// scratch, so the break-even sits well above this bound.
const MAX_UNDO: usize = 16;

/// Rewinds a history log and the table hashers folded over it to the
/// architectural path `recent` (oldest first), as after a pipeline squash.
///
/// Fast path: most squash windows contain few branches (none at all for
/// many memory-order-violation squashes, exactly one for a branch
/// redirect, which stalls the frontend the moment it dispatches). Folding
/// is invertible, so those cases undo one push per popped event per fold —
/// O(popped × tables) — instead of refolding every window — O(tables ×
/// window). Replacements that pop more than [`MAX_UNDO`] events, or that
/// do not match a bounded undo exactly, fall back to the full recompute.
pub fn rewind_hashers(
    history: &mut GlobalHistory,
    hashers: &mut [TableHasher],
    recent: &[BranchEvent],
) {
    let max_window = hashers
        .iter()
        .map(TableHasher::history_len)
        .max()
        .unwrap_or(0);
    match undo_depth(history, max_window, recent) {
        Some(k) => {
            for _ in 0..k {
                let ev = history.pop_newest().expect("undo depth is within the log");
                for hasher in hashers.iter_mut() {
                    hasher.unbranch(history, &ev);
                }
            }
            history.replace(recent);
        }
        None => {
            history.replace(recent);
            for hasher in hashers.iter_mut() {
                hasher.recompute(history);
            }
        }
    }
}

/// The undo depth for [`rewind_hashers`], if the fast path applies.
///
/// On top of [`GlobalHistory::undoable_suffix`], requires `max_window +
/// k <= capacity`: while unwinding, each window-edge lookup must still be
/// retained even though up to `k` newer slots have already been popped.
fn undo_depth(history: &GlobalHistory, max_window: u32, recent: &[BranchEvent]) -> Option<usize> {
    let k = history.undoable_suffix(recent, max_window, MAX_UNDO)?;
    (max_window as usize + k <= history.capacity()).then_some(k)
}

/// A folded view of the last `window` history events, `bits` wide.
///
/// The folded value is `XOR over events e of rotl(chunk(e), age(e) % bits)`,
/// a pure function of the window contents. `window == 0` always folds to 0
/// (the zero-history table is indexed by PC alone).
///
/// Rotation amounts are kept pre-reduced (`window % bits` cached, ages
/// tracked with wrapping counters) so the fold never executes a hardware
/// divide: these registers advance on every branch for every table, and the
/// `%` in the naive formulation dominated the history-maintenance profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "FoldedWire", into = "FoldedWire")]
pub struct FoldedHistory {
    bits: u32,
    window: u32,
    reg: u64,
    /// Cached `window % bits`: the rotation applied to outgoing chunks.
    window_rot: u32,
}

/// Serialized image of [`FoldedHistory`]; the cached rotation constant is
/// derived, so only the defining fields cross (de)serialization.
#[derive(Serialize, Deserialize)]
struct FoldedWire {
    bits: u32,
    window: u32,
    reg: u64,
}

impl From<FoldedWire> for FoldedHistory {
    fn from(w: FoldedWire) -> Self {
        Self {
            bits: w.bits,
            window: w.window,
            reg: w.reg,
            window_rot: if w.bits == 0 { 0 } else { w.window % w.bits },
        }
    }
}

impl From<FoldedHistory> for FoldedWire {
    fn from(f: FoldedHistory) -> Self {
        Self {
            bits: f.bits,
            window: f.window,
            reg: f.reg,
        }
    }
}

impl FoldedHistory {
    /// Creates an empty folded register.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 63.
    pub fn new(bits: u32, window: u32) -> Self {
        assert!(bits > 0 && bits < 64, "fold width must be in 1..=63 bits");
        Self {
            bits,
            window,
            reg: 0,
            window_rot: window % bits,
        }
    }

    /// The current folded value (`bits` wide).
    #[inline]
    pub fn value(&self) -> u64 {
        self.reg
    }

    /// The window length in events.
    pub fn window(&self) -> u32 {
        self.window
    }

    #[inline]
    fn mask(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Rotate-left within `bits`; `r` must already be reduced mod `bits`.
    #[inline]
    fn rotl(&self, x: u64, r: u32) -> u64 {
        debug_assert!(r < self.bits, "rotation must be pre-reduced");
        let x = x & self.mask();
        if r == 0 {
            x
        } else {
            ((x << r) | (x >> (self.bits - r))) & self.mask()
        }
    }

    /// Folds an up-to-`CHUNK_BITS`-bit chunk into the register width.
    #[inline]
    fn squash_chunk(&self, chunk: u64) -> u64 {
        if self.bits >= CHUNK_BITS {
            chunk & self.mask()
        } else {
            ((chunk >> self.bits) ^ chunk) & self.mask()
        }
    }

    /// Incrementally advances the fold by one event.
    ///
    /// `incoming` is the chunk of the newly inserted event; `outgoing` is
    /// the chunk of the event falling out of the window (i.e. the event that
    /// was at age `window - 1` before this push), or `None` while the window
    /// is still filling.
    #[inline]
    pub fn push(&mut self, incoming: u64, outgoing: Option<u64>) {
        if self.window == 0 {
            return;
        }
        self.reg = self.rotl(self.reg, u32::from(self.bits > 1));
        self.reg ^= self.squash_chunk(incoming);
        if let Some(out) = outgoing {
            let fold = self.squash_chunk(out);
            self.reg ^= self.rotl(fold, self.window_rot);
        }
    }

    /// Exactly inverts one [`Self::push`]: `incoming` is the chunk that
    /// push inserted (the event being popped), `outgoing` the chunk it aged
    /// out at the time — which, after the pop, is the event back at age
    /// `window - 1`, or `None` if the window was not yet full.
    #[inline]
    pub fn unpush(&mut self, incoming: u64, outgoing: Option<u64>) {
        if self.window == 0 {
            return;
        }
        let mut reg = self.reg ^ self.squash_chunk(incoming);
        if let Some(out) = outgoing {
            reg ^= self.rotl(self.squash_chunk(out), self.window_rot);
        }
        // Inverse of push's leading rotl-by-one.
        self.reg = if self.bits > 1 {
            ((reg >> 1) | (reg << (self.bits - 1))) & self.mask()
        } else {
            reg & self.mask()
        };
    }

    /// Clears the register ahead of an accumulate-style recompute.
    #[inline]
    fn reset(&mut self) {
        self.reg = 0;
    }

    /// Folds one event in during a recompute; `rot` must equal
    /// `age % bits` for the event's age.
    #[inline]
    fn accumulate(&mut self, chunk: u64, rot: u32) {
        self.reg ^= self.rotl(self.squash_chunk(chunk), rot);
    }

    /// Rebuilds the fold from scratch against a history log (used after a
    /// squash rewinds the speculative path).
    pub fn recompute<F>(&mut self, history: &GlobalHistory, chunk_of: F)
    where
        F: Fn(&BranchEvent) -> u64,
    {
        self.reg = 0;
        if self.window == 0 {
            return;
        }
        let n = (self.window as usize).min(history.len());
        let mut rot = 0u32;
        for ev in history.iter_newest_first().take(n) {
            self.accumulate(chunk_of(ev), rot);
            rot += 1;
            if rot == self.bits {
                rot = 0;
            }
        }
    }
}

/// Per-table hash state: direction-history, path-history and tag folds.
///
/// Produces the set index and tag for one tagged table given a load PC, per
/// §IV-B ("the index and tag are computed by folding the load PC and
/// increasing lengths of the global branch and path history").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableHasher {
    history_len: u32,
    index_bits: u32,
    tag_bits: u32,
    index_fold: FoldedHistory,
    tag_fold_a: FoldedHistory,
    tag_fold_b: FoldedHistory,
    path_fold: FoldedHistory,
}

/// Number of path-history events folded into the index (16-bit path history
/// as in PHAST/IDist, at 1 event per branch).
pub const PATH_WINDOW: u32 = 16;

impl TableHasher {
    /// Creates a hasher for a table with `1 << index_bits` sets, tags of
    /// `tag_bits` bits, indexed with `history_len` branches of context.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` or `tag_bits` is zero or 64 or larger.
    pub fn new(history_len: u32, index_bits: u32, tag_bits: u32) -> Self {
        let tag_b = if tag_bits > 1 { tag_bits - 1 } else { tag_bits };
        // A single-set (index_bits == 0) table still needs non-zero-width
        // fold registers; its index mask zeroes the result regardless.
        let fold_bits = index_bits.max(1);
        Self {
            history_len,
            index_bits,
            tag_bits,
            index_fold: FoldedHistory::new(fold_bits, history_len),
            tag_fold_a: FoldedHistory::new(tag_bits, history_len),
            tag_fold_b: FoldedHistory::new(tag_b, history_len),
            path_fold: FoldedHistory::new(fold_bits, history_len.min(PATH_WINDOW)),
        }
    }

    /// The table's history length in branches.
    pub fn history_len(&self) -> u32 {
        self.history_len
    }

    /// Advances all folds by one branch. Must be called with the history log
    /// state *before* the event is pushed into it (so outgoing events can be
    /// located), in the same order for every hasher sharing the log.
    pub fn on_branch(&mut self, history_before_push: &GlobalHistory, event: &BranchEvent) {
        let outgoing = |window: u32| -> Option<&BranchEvent> {
            if window == 0 {
                return None;
            }
            history_before_push.event_at_age(window as usize - 1)
        };
        // One log lookup shared by the three direction folds (they age out
        // the same event); the path fold may use a shorter window.
        let out_dir = outgoing(self.history_len).map(BranchEvent::chunk);
        let path_window = self.history_len.min(PATH_WINDOW);
        let out_path = outgoing(path_window).map(BranchEvent::path_chunk);
        let dir_chunk = event.chunk();
        self.index_fold.push(dir_chunk, out_dir);
        self.tag_fold_a.push(dir_chunk, out_dir);
        self.tag_fold_b.push(dir_chunk, out_dir);
        self.path_fold.push(event.path_chunk(), out_path);
    }

    /// Exactly inverts one [`Self::on_branch`] for `event`, the newest
    /// event at the time, against the history log with that event already
    /// popped (so outgoing chunks can be located at their window edges).
    pub fn unbranch(&mut self, history_after_pop: &GlobalHistory, event: &BranchEvent) {
        let outgoing = |window: u32| -> Option<&BranchEvent> {
            if window == 0 {
                return None;
            }
            history_after_pop.event_at_age(window as usize - 1)
        };
        let out_dir = outgoing(self.history_len).map(BranchEvent::chunk);
        let path_window = self.history_len.min(PATH_WINDOW);
        let out_path = outgoing(path_window).map(BranchEvent::path_chunk);
        let dir_chunk = event.chunk();
        self.index_fold.unpush(dir_chunk, out_dir);
        self.tag_fold_a.unpush(dir_chunk, out_dir);
        self.tag_fold_b.unpush(dir_chunk, out_dir);
        self.path_fold.unpush(event.path_chunk(), out_path);
    }

    /// Rebuilds all folds from the (already rewound) history log.
    ///
    /// Fused: one pass over the events feeds all four folds, so each event
    /// is located and chunked once instead of once per fold. Equivalent to
    /// recomputing each fold independently (the fold is a pure function of
    /// the window contents), which `hasher_recompute_matches_incremental`
    /// pins.
    pub fn recompute(&mut self, history: &GlobalHistory) {
        self.index_fold.reset();
        self.tag_fold_a.reset();
        self.tag_fold_b.reset();
        self.path_fold.reset();
        let dir_n = (self.history_len as usize).min(history.len());
        let path_n = (self.history_len.min(PATH_WINDOW) as usize).min(history.len());
        // The path fold shares the index fold's width (see `new`), so one
        // wrap counter serves both.
        debug_assert_eq!(self.path_fold.bits, self.index_fold.bits);
        let (bi, ba, bb) = (
            self.index_fold.bits,
            self.tag_fold_a.bits,
            self.tag_fold_b.bits,
        );
        let (mut ri, mut ra, mut rb) = (0u32, 0u32, 0u32);
        for (age, ev) in history.iter_newest_first().take(dir_n).enumerate() {
            let chunk = ev.chunk();
            self.index_fold.accumulate(chunk, ri);
            self.tag_fold_a.accumulate(chunk, ra);
            self.tag_fold_b.accumulate(chunk, rb);
            if age < path_n {
                self.path_fold.accumulate(ev.path_chunk(), ri);
            }
            ri += 1;
            if ri == bi {
                ri = 0;
            }
            ra += 1;
            if ra == ba {
                ra = 0;
            }
            rb += 1;
            if rb == bb {
                rb = 0;
            }
        }
    }

    /// The set index for `pc` under the current history.
    #[inline]
    pub fn index(&self, pc: u64) -> u64 {
        let pc = pc >> 2;
        let mask = (1u64 << self.index_bits) - 1;
        (pc ^ (pc >> self.index_bits)
            ^ (pc >> (2 * self.index_bits))
            ^ self.index_fold.value()
            ^ self.path_fold.value())
            & mask
    }

    /// The tag for `pc` under the current history.
    #[inline]
    pub fn tag(&self, pc: u64) -> u64 {
        let pc = pc >> 2;
        let mask = (1u64 << self.tag_bits) - 1;
        (pc ^ (pc >> self.tag_bits) ^ self.tag_fold_a.value() ^ (self.tag_fold_b.value() << 1))
            & mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(pc: u64, taken: bool) -> BranchEvent {
        BranchEvent {
            pc,
            kind: BranchKind::Conditional,
            taken,
            target: pc + 8,
        }
    }

    fn indirect(pc: u64, target: u64) -> BranchEvent {
        BranchEvent {
            pc,
            kind: BranchKind::Indirect,
            taken: true,
            target,
        }
    }

    #[test]
    fn chunk_encodings() {
        assert_eq!(cond(0x100, true).chunk(), 1);
        assert_eq!(cond(0x100, false).chunk(), 0);
        let i = indirect(0x200, 0xdead_beef);
        assert!(i.chunk() <= 0x1f);
    }

    #[test]
    fn history_ring_eviction_and_ages() {
        let mut h = GlobalHistory::new(4);
        for i in 0..6u64 {
            h.push(cond(i * 4, i % 2 == 0));
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.total(), 6);
        // Most recent is pc = 20 (i = 5).
        assert_eq!(h.event_at_age(0).unwrap().pc, 20);
        assert_eq!(h.event_at_age(3).unwrap().pc, 8);
        assert!(h.event_at_age(4).is_none());
    }

    #[test]
    fn replace_restores_contents() {
        let mut h = GlobalHistory::new(8);
        h.push(cond(0, true));
        h.push(cond(4, false));
        let snapshot: Vec<_> = h.iter().copied().collect();
        h.push(cond(8, true));
        h.replace(&snapshot);
        assert_eq!(h.len(), 2);
        assert_eq!(h.event_at_age(0).unwrap().pc, 4);
    }

    /// Unlike `replace` (which renumbers `total` for squash recovery), the
    /// snapshot codec must restore the log *exactly*, lifetime total and
    /// capacity included.
    #[test]
    fn snap_roundtrip_is_exact() {
        let mut h = GlobalHistory::new(4);
        for i in 0..6u64 {
            h.push(if i % 2 == 0 {
                cond(i * 4, true)
            } else {
                indirect(i * 4, 0x1000 + i)
            });
        }
        let mut w = SnapWriter::new();
        h.snap_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = GlobalHistory::snap_decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.capacity(), h.capacity());
        assert_eq!(back.total(), 6, "lifetime total survives, unlike replace()");
        assert_eq!(back.len(), h.len());
        assert!(back.iter().zip(h.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn snap_decode_is_fail_closed() {
        let mut h = GlobalHistory::new(4);
        h.push(cond(0, true));
        let mut w = SnapWriter::new();
        h.snap_encode(&mut w);
        let good = w.into_bytes();
        // Truncations fail.
        for cut in 0..good.len() {
            let mut r = SnapReader::new(&good[..cut]);
            assert!(GlobalHistory::snap_decode(&mut r).is_err(), "cut {cut}");
        }
        // len > capacity fails: capacity 1, claimed length 2.
        let mut w = SnapWriter::new();
        w.u64(1);
        w.u64(2);
        w.u32(2);
        for _ in 0..2 {
            w.u64(0);
            w.u8(0);
            w.u8(0);
            w.u64(0);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(GlobalHistory::snap_decode(&mut r).is_err());
        // Unknown branch kind fails.
        let mut w = SnapWriter::new();
        w.u64(4);
        w.u64(1);
        w.u32(1);
        w.u64(0);
        w.u8(9); // bad kind
        w.u8(0);
        w.u64(0);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(GlobalHistory::snap_decode(&mut r).is_err());
    }

    /// Incremental folding must agree exactly with recompute-from-scratch:
    /// this is the invariant that makes squash-rewind sound.
    #[test]
    fn incremental_fold_matches_recompute() {
        let window = 7u32;
        let mut hist = GlobalHistory::new(64);
        let mut inc = FoldedHistory::new(9, window);
        let events: Vec<BranchEvent> = (0..40u64)
            .map(|i| {
                if i % 5 == 0 {
                    indirect(i * 4, 0x1000 + i * 52)
                } else {
                    cond(i * 4, (i * 7) % 3 == 0)
                }
            })
            .collect();
        for ev in &events {
            let outgoing = if window > 0 {
                hist.event_at_age(window as usize - 1).map(BranchEvent::chunk)
            } else {
                None
            };
            inc.push(ev.chunk(), outgoing);
            hist.push(*ev);
            let mut scratch = FoldedHistory::new(9, window);
            scratch.recompute(&hist, BranchEvent::chunk);
            assert_eq!(inc.value(), scratch.value(), "diverged at pc {}", ev.pc);
        }
    }

    /// The fold must be a pure function of the window contents: the same
    /// window reached at different points in time folds identically.
    #[test]
    fn fold_depends_only_on_window_contents() {
        let pattern: Vec<BranchEvent> = (0..4u64).map(|i| cond(i * 4, i % 2 == 0)).collect();
        let fold_after = |warmup: usize| -> u64 {
            let mut hist = GlobalHistory::new(64);
            // Arbitrary warmup traffic that will have fully exited the window.
            for i in 0..warmup as u64 {
                hist.push(cond(0x900 + i * 4, i % 3 == 0));
            }
            for ev in &pattern {
                hist.push(*ev);
            }
            let mut f = FoldedHistory::new(8, 4);
            f.recompute(&hist, BranchEvent::chunk);
            f.value()
        };
        assert_eq!(fold_after(0), fold_after(13));
        assert_eq!(fold_after(13), fold_after(29));
    }

    #[test]
    fn zero_window_folds_to_zero() {
        let mut f = FoldedHistory::new(8, 0);
        f.push(1, None);
        assert_eq!(f.value(), 0);
        let mut hist = GlobalHistory::new(8);
        hist.push(cond(0, true));
        f.recompute(&hist, BranchEvent::chunk);
        assert_eq!(f.value(), 0);
    }

    #[test]
    fn different_histories_usually_hash_differently() {
        let mut a = GlobalHistory::new(64);
        let mut b = GlobalHistory::new(64);
        for i in 0..8u64 {
            a.push(cond(i * 4, true));
            b.push(cond(i * 4, i != 3)); // one direction differs
        }
        let mut fa = FoldedHistory::new(8, 8);
        let mut fb = FoldedHistory::new(8, 8);
        fa.recompute(&a, BranchEvent::chunk);
        fb.recompute(&b, BranchEvent::chunk);
        assert_ne!(fa.value(), fb.value());
    }

    /// `unpush` must be the exact inverse of `push` at every step of a
    /// mixed event stream.
    #[test]
    fn unpush_inverts_push() {
        let window = 6u32;
        let mut hist = GlobalHistory::new(64);
        let mut fold = FoldedHistory::new(9, window);
        for i in 0..50u64 {
            let ev = if i % 4 == 0 {
                indirect(i * 4, 0x2000 + i * 36)
            } else {
                cond(i * 4, (i * 3) % 5 < 2)
            };
            let outgoing = hist
                .event_at_age(window as usize - 1)
                .map(BranchEvent::chunk);
            let before = fold.value();
            fold.push(ev.chunk(), outgoing);
            // Invert against the same pre-push log state.
            let mut undone = fold.clone();
            undone.unpush(ev.chunk(), outgoing);
            assert_eq!(undone.value(), before, "unpush failed at step {i}");
            hist.push(ev);
        }
    }

    /// The squash fast path (undo one push) must land every hasher on the
    /// same state as a replace + full recompute, through window fill,
    /// saturation and ring eviction.
    #[test]
    fn rewind_one_event_matches_recompute() {
        let mk = || {
            vec![
                TableHasher::new(0, 7, 16),
                TableHasher::new(4, 7, 15),
                TableHasher::new(12, 6, 14),
                TableHasher::new(24, 7, 16),
            ]
        };
        let mut hist = GlobalHistory::new(48);
        let mut hashers = mk();
        let mut log: Vec<BranchEvent> = Vec::new();
        for i in 0..120u64 {
            let ev = if i % 6 == 0 {
                indirect(i * 4, 0x3000 + i * 20)
            } else {
                cond(i * 4, (i * 11) % 7 < 3)
            };
            for h in &mut hashers {
                h.on_branch(&hist, &ev);
            }
            hist.push(ev);
            log.push(ev);
            // Squash: rewind to the log minus the event just pushed.
            let recent = &log[..log.len() - 1];
            let mut fast_hist = hist.clone();
            let mut fast = hashers.clone();
            rewind_hashers(&mut fast_hist, &mut fast, recent);
            assert_eq!(
                hist.undoable_suffix(recent, 24, MAX_UNDO),
                Some(1),
                "single-pop rewind must take the fast path at step {i}"
            );
            let mut slow_hist = hist.clone();
            slow_hist.replace(recent);
            let mut slow = mk();
            for h in &mut slow {
                h.recompute(&slow_hist);
            }
            for (t, (f, s)) in fast.iter().zip(&slow).enumerate() {
                for pc in [0x40_0000u64, 0x1234_5678] {
                    assert_eq!(f.index(pc), s.index(pc), "index, table {t}, step {i}");
                    assert_eq!(f.tag(pc), s.tag(pc), "tag, table {t}, step {i}");
                }
            }
            assert_eq!(fast_hist.len(), slow_hist.len(), "step {i}");
        }
    }

    /// Multi-event rewinds up to [`MAX_UNDO`] deep must take the fast path
    /// and land on the recompute's state; deeper ones must decline it —
    /// and both must agree with a from-scratch rebuild.
    #[test]
    fn rewind_any_depth_matches_recompute() {
        let mut hist = GlobalHistory::new(64);
        let mut hashers = vec![TableHasher::new(8, 7, 16), TableHasher::new(16, 7, 14)];
        let mut log: Vec<BranchEvent> = Vec::new();
        for i in 0..48u64 {
            let ev = if i % 6 == 0 {
                indirect(i * 4, 0x5000 + i * 28)
            } else {
                cond(i * 4, (i * 5) % 3 == 0)
            };
            for h in &mut hashers {
                h.on_branch(&hist, &ev);
            }
            hist.push(ev);
            log.push(ev);
        }
        for pop in [0usize, 3, MAX_UNDO, MAX_UNDO + 4] {
            let recent = &log[..log.len() - pop];
            let expect = (pop <= MAX_UNDO).then_some(pop);
            assert_eq!(
                hist.undoable_suffix(recent, 16, MAX_UNDO),
                expect,
                "undo depth, pop {pop}"
            );
            let mut fast_hist = hist.clone();
            let mut fast = hashers.clone();
            rewind_hashers(&mut fast_hist, &mut fast, recent);
            let mut scratch_hist = GlobalHistory::new(64);
            scratch_hist.replace(recent);
            for (t, &(hist_len, idx_bits, tag_bits)) in
                [(8u32, 7u32, 16u32), (16, 7, 14)].iter().enumerate()
            {
                let mut scratch = TableHasher::new(hist_len, idx_bits, tag_bits);
                scratch.recompute(&scratch_hist);
                assert_eq!(fast[t].index(0xabcd0), scratch.index(0xabcd0), "pop {pop}");
                assert_eq!(fast[t].tag(0xabcd0), scratch.tag(0xabcd0), "pop {pop}");
            }
        }
    }

    /// Replacing with a longer log than capacity keeps only the newest
    /// events.
    #[test]
    fn replace_truncates_to_capacity() {
        let mut h = GlobalHistory::new(4);
        let events: Vec<BranchEvent> = (0..10u64).map(|i| cond(i * 4, true)).collect();
        h.replace(&events);
        assert_eq!(h.len(), 4);
        assert_eq!(h.event_at_age(0).unwrap().pc, 36);
        assert_eq!(h.event_at_age(3).unwrap().pc, 24);
    }

    #[test]
    fn hasher_zero_history_is_pc_only() {
        let mut hist = GlobalHistory::new(64);
        let mut h = TableHasher::new(0, 7, 16);
        let idx0 = h.index(0x4000);
        let tag0 = h.tag(0x4000);
        let ev = cond(0x10, true);
        h.on_branch(&hist, &ev);
        hist.push(ev);
        assert_eq!(h.index(0x4000), idx0, "zero-history index must ignore branches");
        assert_eq!(h.tag(0x4000), tag0);
    }

    #[test]
    fn hasher_index_within_range() {
        let mut hist = GlobalHistory::new(256);
        let mut h = TableHasher::new(16, 7, 16);
        for i in 0..100u64 {
            let ev = cond(i * 4, i % 3 == 0);
            h.on_branch(&hist, &ev);
            hist.push(ev);
            assert!(h.index(0x1234_5678) < 128);
            assert!(h.tag(0x1234_5678) < (1 << 16));
        }
    }

    #[test]
    fn hasher_recompute_matches_incremental() {
        let mut hist = GlobalHistory::new(256);
        let mut inc = TableHasher::new(12, 7, 14);
        for i in 0..60u64 {
            let ev = if i % 7 == 0 {
                indirect(i * 4, 0x8000 + i * 24)
            } else {
                cond(i * 4, (i % 5) < 2)
            };
            inc.on_branch(&hist, &ev);
            hist.push(ev);
        }
        let mut scratch = TableHasher::new(12, 7, 14);
        scratch.recompute(&hist);
        assert_eq!(inc.index(0xabcd0), scratch.index(0xabcd0));
        assert_eq!(inc.tag(0xabcd0), scratch.tag(0xabcd0));
    }

    #[test]
    fn history_affects_index_for_nonzero_tables() {
        let mut hist = GlobalHistory::new(64);
        let mut h = TableHasher::new(2, 7, 16);
        let i0 = h.index(0x4000);
        // Push two taken branches: window [T, T].
        for pc in [0x10u64, 0x20] {
            let ev = cond(pc, true);
            h.on_branch(&hist, &ev);
            hist.push(ev);
        }
        let i1 = h.index(0x4000);
        assert_ne!(i0, i1, "two taken branches must perturb a 2-history index");
    }

    /// Indices spread across sets: a varied PC stream must touch most sets
    /// of a 128-set table (hash quality, not correctness).
    #[test]
    fn index_hash_spreads_across_sets() {
        let h = TableHasher::new(0, 7, 16);
        let mut seen = std::collections::HashSet::new();
        for i in 0..512u64 {
            seen.insert(h.index(0x40_0000 + i * 4));
        }
        assert!(seen.len() > 100, "only {} of 128 sets touched", seen.len());
    }

    /// Path history contributes: two histories with identical directions
    /// but different branch PCs must (usually) produce different indices.
    #[test]
    fn path_history_affects_index() {
        let build = |pc_base: u64| {
            let mut hist = GlobalHistory::new(64);
            let mut h = TableHasher::new(8, 7, 16);
            for i in 0..8u64 {
                let ev = cond(pc_base + i * 4, true); // same directions
                h.on_branch(&hist, &ev);
                hist.push(ev);
            }
            h.index(0x40_0000)
        };
        // Different branch addresses (differing in the low PC bits the path
        // chunk captures), same outcome sequence.
        assert_ne!(build(0x100), build(0x2a8));
    }

    /// Indirect-branch targets perturb the direction history (5-bit folded
    /// target chunks, §IV-B).
    #[test]
    fn indirect_targets_perturb_history() {
        let build = |target: u64| {
            let mut hist = GlobalHistory::new(64);
            let mut h = TableHasher::new(4, 7, 16);
            let ev = indirect(0x500, target);
            h.on_branch(&hist, &ev);
            hist.push(ev);
            h.index(0x40_0000)
        };
        // Two targets whose 5-bit folds differ.
        assert_ne!(build(0x1000), build(0x1004));
    }

    /// A (de)serialization round-trip must reconstruct the cached rotation
    /// state exactly (it is derived, not serialized — see [`FoldedWire`]).
    #[test]
    fn folded_history_wire_round_trip() {
        let mut f = FoldedHistory::new(9, 7);
        let mut hist = GlobalHistory::new(64);
        for i in 0..20u64 {
            let ev = cond(i * 4, i % 3 == 0);
            let outgoing = hist.event_at_age(6).map(BranchEvent::chunk);
            f.push(ev.chunk(), outgoing);
            hist.push(ev);
        }
        let back = FoldedHistory::from(FoldedWire::from(f.clone()));
        assert_eq!(back, f);
    }
}
