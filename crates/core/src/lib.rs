//! # MASCOT — Memory-dependence And Short-Circuit Optimising TAGE
//!
//! A faithful reproduction of the predictor proposed in *"MASCOT: Predicting
//! Memory Dependencies and Opportunities for Speculative Memory Bypassing"*
//! (HPCA 2025). MASCOT is a TAGE-like predictor that unifies
//! **memory-dependence prediction (MDP)** and **speculative memory bypassing
//! (SMB)** in a single 14 KiB structure by learning *context-dependent
//! non-dependencies* alongside load–store dependencies.
//!
//! ## Quick start
//!
//! ```
//! use mascot::{Mascot, MascotConfig, MemDepPredictor, MemDepPrediction};
//! use mascot::{BypassClass, LoadOutcome, ObservedDependence, StoreDistance};
//!
//! let mut predictor = Mascot::new(MascotConfig::default())?;
//!
//! // A load at PC 0x401000 turns out to depend on the store 2 back.
//! let pc = 0x40_1000;
//! let (prediction, meta) = predictor.predict(pc, 0, None);
//! assert_eq!(prediction, MemDepPrediction::NoDependence); // cold
//!
//! let outcome = LoadOutcome::dependent(ObservedDependence {
//!     distance: StoreDistance::new(2).expect("in range"),
//!     class: BypassClass::DirectBypass,
//!     store_pc: 0x40_0ff0,
//!     branches_between: 1,
//! });
//! predictor.train(pc, meta, prediction, &outcome);
//!
//! // The dependence is learned after a single mispredict.
//! let (next, _) = predictor.predict(pc, 0, None);
//! assert!(next.is_dependence());
//! # Ok::<(), mascot::ConfigError>(())
//! ```
//!
//! ## Crate layout
//!
//! * [`predictor::Mascot`] — the predictor itself, including the §IV-C
//!   try-again allocation policy and §IV-D non-dependence tracking.
//! * [`mdp_only::MascotMdpOnly`] — the MDP-only variant of Fig. 9.
//! * [`config::MascotConfig`] — geometry presets: the default 14 KiB
//!   configuration, MASCOT-OPT and the Fig. 15 tag-reduction sweep.
//! * [`history`] — global branch/path history and TAGE folded registers.
//! * [`table`] — the generic 4-way associative tagged table in
//!   struct-of-arrays layout (shared with the baseline predictors).
//! * [`tuning`] — §IV-F per-slot F1 instrumentation (Figs. 13–14).
//! * [`prediction`] — the [`MemDepPredictor`] trait and shared vocabulary
//!   types used by the simulator and every baseline predictor.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod entry;
pub mod history;
pub mod mdp_only;
pub mod prediction;
pub mod predictor;
pub mod table;
pub mod tuning;

pub use config::{ConfigError, MascotConfig};
pub use entry::MascotEntry;
pub use history::{
    rewind_hashers, BranchEvent, BranchKind, FoldedHistory, GlobalHistory, TableHasher,
};
pub use mdp_only::MascotMdpOnly;
pub use prediction::{
    BypassClass, GroundTruth, LoadOutcome, MemDepPrediction, MemDepPredictor,
    ObservedDependence, PredictReq, StoreDistance, TrainReq,
};
pub use predictor::{Mascot, MascotMeta, MascotStats};
pub use tuning::TuningState;
