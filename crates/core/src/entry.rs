//! The MASCOT table entry payload (Fig. 6).
//!
//! Each entry is 28 bits in the default configuration: a 16-bit tag, a 7-bit
//! store distance (0 encodes a *non-dependence*), a 3-bit usefulness counter
//! (MDP confidence; doubles as the eviction guard) and a 2-bit bypass
//! counter (SMB confidence). The tag lives in the table's struct-of-arrays
//! tag lane; this type carries the remaining (payload) fields.

use crate::prediction::StoreDistance;
use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use mascot_stats::SaturatingCounter;
use serde::{Deserialize, Serialize};

/// One MASCOT predictor entry payload (everything but the tag).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MascotEntry {
    /// 0 = non-dependence; otherwise the store distance (1..=127).
    distance: u8,
    usefulness: SaturatingCounter,
    bypass: SaturatingCounter,
}

impl MascotEntry {
    /// Creates a *dependent* entry predicting `distance`, with the given
    /// initial counters (§IV-C allocates with usefulness 6; §IV-E sets the
    /// bypass counter to 1 for bypassable conflicts, else 0).
    pub fn dependent(
        distance: StoreDistance,
        usefulness_bits: u8,
        initial_usefulness: u8,
        bypass_bits: u8,
        initial_bypass: u8,
    ) -> Self {
        Self {
            distance: distance.get(),
            usefulness: SaturatingCounter::new(usefulness_bits, initial_usefulness),
            bypass: SaturatingCounter::new(bypass_bits, initial_bypass),
        }
    }

    /// Creates a *non-dependence* entry (distance 0, §IV-D), allocated with
    /// usefulness 2 in the paper's configuration.
    pub fn non_dependent(usefulness_bits: u8, initial_usefulness: u8, bypass_bits: u8) -> Self {
        Self {
            distance: 0,
            usefulness: SaturatingCounter::new(usefulness_bits, initial_usefulness),
            bypass: SaturatingCounter::new(bypass_bits, 0),
        }
    }

    /// The predicted store distance, or `None` for a non-dependence entry.
    #[inline]
    pub fn distance(&self) -> Option<StoreDistance> {
        StoreDistance::new(u32::from(self.distance))
    }

    /// True when this entry encodes a non-dependence.
    #[inline]
    pub fn is_non_dependence(&self) -> bool {
        self.distance == 0
    }

    /// The usefulness (MDP confidence) counter.
    pub fn usefulness(&self) -> &SaturatingCounter {
        &self.usefulness
    }

    /// The bypass (SMB confidence) counter.
    pub fn bypass(&self) -> &SaturatingCounter {
        &self.bypass
    }

    /// SMB is predicted only when both counters are saturated (§IV-B).
    #[inline]
    pub fn predicts_bypass(&self) -> bool {
        self.distance != 0 && self.usefulness.is_saturated() && self.bypass.is_saturated()
    }

    /// Only entries with zero usefulness may be evicted (§IV-B).
    #[inline]
    pub fn is_evictable(&self) -> bool {
        self.usefulness.is_zero()
    }

    /// Increments MDP confidence (correct dependence prediction).
    pub fn reward_dependence(&mut self) {
        self.usefulness.increment();
    }

    /// Decrements MDP confidence (incorrect dependence prediction).
    pub fn punish_dependence(&mut self) {
        self.usefulness.decrement();
    }

    /// Decrements usefulness (allocation-pressure decay, §IV-C).
    pub fn decay(&mut self) {
        self.usefulness.decrement();
    }

    /// Increments SMB confidence (outcome was a bypass opportunity).
    pub fn reward_bypass(&mut self) {
        self.bypass.increment();
    }

    /// Resets SMB confidence (outcome was not a bypass opportunity).
    pub fn punish_bypass(&mut self) {
        self.bypass.reset();
    }

    /// Appends the entry to a snapshot payload.
    pub fn snap_encode(&self, w: &mut SnapWriter) {
        w.u8(self.distance);
        self.usefulness.snap_encode(w);
        self.bypass.snap_encode(w);
    }

    /// Decodes an entry from a snapshot payload, fail-closed: the distance
    /// must fit the 7-bit field and both counters must decode as valid
    /// saturating counters.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation or any out-of-range field.
    pub fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let distance = r.u8("entry distance")?;
        if distance > 127 {
            return Err(SnapError::Corrupt("entry distance exceeds 7 bits"));
        }
        Ok(Self {
            distance,
            usefulness: SaturatingCounter::snap_decode(r)?,
            bypass: SaturatingCounter::snap_decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(d: u32) -> StoreDistance {
        StoreDistance::new(d).unwrap()
    }

    #[test]
    fn dependent_entry_roundtrip() {
        let e = MascotEntry::dependent(dist(5), 3, 6, 2, 1);
        assert_eq!(e.distance().unwrap().get(), 5);
        assert!(!e.is_non_dependence());
        assert_eq!(e.usefulness().value(), 6);
        assert_eq!(e.bypass().value(), 1);
        assert!(!e.is_evictable());
    }

    #[test]
    fn non_dependent_entry_has_zero_distance() {
        let e = MascotEntry::non_dependent(3, 2, 2);
        assert!(e.is_non_dependence());
        assert_eq!(e.distance(), None);
        assert_eq!(e.usefulness().value(), 2);
        assert!(!e.predicts_bypass());
    }

    #[test]
    fn bypass_requires_both_counters_saturated() {
        let mut e = MascotEntry::dependent(dist(1), 3, 7, 2, 2);
        assert!(!e.predicts_bypass(), "bypass counter at 2 of 3 must not bypass");
        e.reward_bypass();
        assert!(e.predicts_bypass());
        e.punish_dependence(); // usefulness drops below saturation
        assert!(!e.predicts_bypass());
    }

    #[test]
    fn non_dependence_never_bypasses_even_saturated() {
        let mut e = MascotEntry::non_dependent(3, 2, 2);
        for _ in 0..10 {
            e.reward_dependence();
            e.reward_bypass();
        }
        assert!(!e.predicts_bypass());
    }

    #[test]
    fn evictable_only_at_zero_usefulness() {
        let mut e = MascotEntry::dependent(dist(2), 3, 1, 2, 0);
        assert!(!e.is_evictable());
        e.decay();
        assert!(e.is_evictable());
    }

    #[test]
    fn punish_bypass_resets_to_zero() {
        let mut e = MascotEntry::dependent(dist(2), 3, 7, 2, 3);
        e.punish_bypass();
        assert_eq!(e.bypass().value(), 0);
    }
}
