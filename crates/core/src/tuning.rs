//! §IV-F tuning instrumentation: per-slot F1 accounting.
//!
//! When enabled, every prediction provided by a table slot is scored against
//! its outcome. Periodically (the paper uses 1 M cycles) the caller ends a
//! period: each slot's F1 for the period is folded into a running average
//! and reset. Ranking the averaged scores within each table (Fig. 14) shows
//! which tables are over- or under-provisioned and drives the MASCOT-OPT
//! sizing (§VI-D).

use mascot_stats::F1Accumulator;
use serde::{Deserialize, Serialize};

/// Per-slot F1 bookkeeping for all tables of a predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningState {
    tables: Vec<Vec<F1Accumulator>>,
}

impl TuningState {
    /// Creates accounting for tables with the given slot capacities.
    pub fn new(capacities: impl IntoIterator<Item = usize>) -> Self {
        Self {
            tables: capacities
                .into_iter()
                .map(|c| vec![F1Accumulator::new(); c])
                .collect(),
        }
    }

    /// Number of instrumented tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Records one prediction/outcome pair against a providing slot.
    ///
    /// # Panics
    ///
    /// Panics if `table` or `slot` is out of range.
    #[inline]
    pub fn record(&mut self, table: usize, slot: usize, predicted_dep: bool, actual_dep: bool) {
        self.tables[table][slot].record(predicted_dep, actual_dep);
    }

    /// Ends the current period for every slot (§IV-F: snapshot F1 scores,
    /// then reset).
    pub fn end_period(&mut self) {
        for table in &mut self.tables {
            for acc in table {
                acc.end_period();
            }
        }
    }

    /// Average F1 per slot for one table, unsorted (slot order).
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn slot_f1(&self, table: usize) -> Vec<f64> {
        self.tables[table].iter().map(F1Accumulator::average_f1).collect()
    }

    /// Average F1 per slot for one table, ranked best-first (the Fig. 14
    /// curves).
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn ranked_f1(&self, table: usize) -> Vec<f64> {
        let mut scores = self.slot_f1(table);
        scores.sort_by(|a, b| b.partial_cmp(a).expect("F1 scores are finite"));
        scores
    }

    /// Ranked F1 curves for every table.
    pub fn ranked_f1_all(&self) -> Vec<Vec<f64>> {
        (0..self.num_tables()).map(|t| self.ranked_f1(t)).collect()
    }

    /// Fraction of slots in `table` whose average F1 is at least
    /// `threshold` — a quick utilisation measure ("tables 5–8 could be
    /// reduced in size since their entries do not have high F1 scores").
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn useful_fraction(&self, table: usize, threshold: f64) -> f64 {
        let scores = self.slot_f1(table);
        if scores.is_empty() {
            return 0.0;
        }
        scores.iter().filter(|&&s| s >= threshold).count() as f64 / scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_ranks() {
        let mut t = TuningState::new([4usize, 2]);
        assert_eq!(t.num_tables(), 2);
        // Slot 0 of table 0: perfect. Slot 1: useless.
        t.record(0, 0, true, true);
        t.record(0, 1, true, false);
        t.end_period();
        let ranked = t.ranked_f1(0);
        assert_eq!(ranked.len(), 4);
        assert!((ranked[0] - 1.0).abs() < 1e-12);
        assert_eq!(ranked[1], 0.0);
        assert!(ranked.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn useful_fraction_counts_threshold() {
        let mut t = TuningState::new([4usize]);
        t.record(0, 0, true, true);
        t.record(0, 1, true, true);
        t.end_period();
        assert!((t.useful_fraction(0, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(t.useful_fraction(0, 1.1), 0.0);
    }

    #[test]
    fn periods_average() {
        let mut t = TuningState::new([1usize]);
        t.record(0, 0, true, true); // F1 = 1 this period
        t.end_period();
        t.record(0, 0, true, false); // F1 = 0 this period
        t.end_period();
        assert!((t.slot_f1(0)[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ranked_all_covers_every_table() {
        let t = TuningState::new([3usize, 5, 7]);
        let all = t.ranked_f1_all();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].len(), 7);
    }
}
