//! MASCOT configuration: table geometry, counter widths and presets.
//!
//! The default configuration is the paper's 14 KiB predictor (§IV-B): eight
//! 4-way tables of 512 entries with history lengths [0, 2, 4, 8, 16, 32, 64,
//! 128] and 28-bit entries. [`MascotConfig::opt`] is MASCOT-OPT (§VI-D) and
//! [`MascotConfig::opt_with_tag_reduction`] reproduces the Fig. 15 tag-size
//! sweep down to the 10.1 KiB point.

use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// Errors produced when validating a [`MascotConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The per-table vectors have mismatched lengths or are empty.
    ShapeMismatch(String),
    /// A table's entry count is not a positive multiple of the associativity
    /// yielding a power-of-two set count.
    BadTableSize(usize),
    /// A counter or field width is out of its supported range.
    BadWidth(String),
    /// History lengths must start at 0 and strictly increase.
    BadHistory(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ShapeMismatch(s) => write!(f, "configuration shape mismatch: {s}"),
            ConfigError::BadTableSize(i) => write!(f, "table {i} size is invalid"),
            ConfigError::BadWidth(s) => write!(f, "invalid field width: {s}"),
            ConfigError::BadHistory(s) => write!(f, "invalid history lengths: {s}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full geometry and policy parameters for a MASCOT predictor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MascotConfig {
    /// Global-history length (in branches) used by each table, shortest
    /// first; the first entry must be 0 (the PC-indexed table).
    pub history_lengths: Vec<u32>,
    /// Total entries per table (sets × associativity).
    pub table_entries: Vec<u32>,
    /// Tag width per table, in bits.
    pub tag_bits: Vec<u8>,
    /// Ways per set (the paper uses 4).
    pub associativity: u32,
    /// Distance field width (7 bits: 0 = non-dependence, 1..=127 = distance).
    pub distance_bits: u8,
    /// Usefulness (MDP confidence) counter width (3 bits).
    pub usefulness_bits: u8,
    /// Bypass (SMB confidence) counter width (2 bits).
    pub bypass_bits: u8,
    /// Initial usefulness for newly allocated *dependent* entries (6).
    pub dep_alloc_usefulness: u8,
    /// Initial usefulness for newly allocated *non-dependent* entries (2).
    pub nondep_alloc_usefulness: u8,
    /// Whether to collect per-slot F1 tuning statistics (§IV-F). Off by
    /// default; enabled for the Figs. 13–14 experiments.
    pub tuning: bool,
    /// §IV-E extension: support bypassing *offset* loads (fully contained
    /// in the store at a non-zero offset) by incorporating a shifting
    /// field. The paper's default microarchitecture bypasses only
    /// same-address pairs.
    pub offset_bypass: bool,
    /// §IV-C: decrement every usefulness counter after this many updates
    /// (the periodic decay common to TAGE-like predictors). The paper
    /// found no meaningful performance change from it and leaves it off;
    /// `Some(n)` enables it for the ablation study.
    pub periodic_decay: Option<u32>,
}

impl Default for MascotConfig {
    fn default() -> Self {
        Self::default_14kib()
    }
}

impl MascotConfig {
    /// The paper's default 14 KiB configuration (§IV-B, Table II).
    pub fn default_14kib() -> Self {
        Self {
            history_lengths: vec![0, 2, 4, 8, 16, 32, 64, 128],
            table_entries: vec![512; 8],
            tag_bits: vec![16; 8],
            associativity: 4,
            distance_bits: 7,
            usefulness_bits: 3,
            bypass_bits: 2,
            dep_alloc_usefulness: 6,
            nondep_alloc_usefulness: 2,
            tuning: false,
            offset_bypass: false,
            periodic_decay: None,
        }
    }

    /// MASCOT-OPT (§VI-D): table sizes [1024, 512, 512, 512, 256, 256, 256,
    /// 128] and tag sizes [15, 16, 16, 16, 17, 17, 17, 18], a 16 % size
    /// reduction at an IPC cost of ~0.09 %.
    pub fn opt() -> Self {
        Self {
            table_entries: vec![1024, 512, 512, 512, 256, 256, 256, 128],
            tag_bits: vec![15, 16, 16, 16, 17, 17, 17, 18],
            ..Self::default_14kib()
        }
    }

    /// MASCOT-OPT with every tag shortened by `bits` (the Fig. 15 sweep;
    /// `bits = 4` is the paper's 10.1 KiB design point).
    ///
    /// # Panics
    ///
    /// Panics if the reduction would leave any tag shorter than 6 bits.
    pub fn opt_with_tag_reduction(bits: u8) -> Self {
        let mut cfg = Self::opt();
        for t in &mut cfg.tag_bits {
            assert!(*t >= bits + 6, "tag reduction of {bits} bits leaves tags too short");
            *t -= bits;
        }
        cfg
    }

    /// Enables tuning statistics collection (builder style).
    pub fn with_tuning(mut self) -> Self {
        self.tuning = true;
        self
    }

    /// Enables the §IV-E offset-bypass extension (builder style).
    pub fn with_offset_bypass(mut self) -> Self {
        self.offset_bypass = true;
        self
    }

    /// Enables periodic usefulness decay every `updates` updates (§IV-C
    /// ablation; builder style).
    ///
    /// # Panics
    ///
    /// Panics if `updates` is zero.
    pub fn with_periodic_decay(mut self, updates: u32) -> Self {
        assert!(updates > 0, "decay period must be non-zero");
        self.periodic_decay = Some(updates);
        self
    }

    /// Number of tagged tables.
    pub fn num_tables(&self) -> usize {
        self.history_lengths.len()
    }

    /// Bits per entry in table `i` (tag + distance + usefulness + bypass).
    pub fn entry_bits(&self, table: usize) -> u64 {
        u64::from(self.tag_bits[table])
            + u64::from(self.distance_bits)
            + u64::from(self.usefulness_bits)
            + u64::from(self.bypass_bits)
    }

    /// Total storage across all tables, in bits (Table II accounting:
    /// entries only, no logic).
    pub fn storage_bits(&self) -> u64 {
        (0..self.num_tables())
            .map(|i| u64::from(self.table_entries[i]) * self.entry_bits(i))
            .sum()
    }

    /// Total storage in KiB.
    pub fn storage_kib(&self) -> f64 {
        self.storage_bits() as f64 / 8192.0
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint:
    /// mismatched per-table vector lengths, non-power-of-two set counts,
    /// out-of-range widths, or non-increasing history lengths.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let n = self.history_lengths.len();
        if n == 0 {
            return Err(ConfigError::ShapeMismatch("no tables configured".into()));
        }
        if self.table_entries.len() != n || self.tag_bits.len() != n {
            return Err(ConfigError::ShapeMismatch(format!(
                "{} history lengths, {} table sizes, {} tag widths",
                n,
                self.table_entries.len(),
                self.tag_bits.len()
            )));
        }
        if self.associativity == 0 {
            return Err(ConfigError::BadWidth("associativity must be non-zero".into()));
        }
        for (i, &entries) in self.table_entries.iter().enumerate() {
            if entries == 0 || entries % self.associativity != 0 {
                return Err(ConfigError::BadTableSize(i));
            }
            let sets = entries / self.associativity;
            if !sets.is_power_of_two() {
                return Err(ConfigError::BadTableSize(i));
            }
        }
        for (i, &t) in self.tag_bits.iter().enumerate() {
            if t == 0 || t > 30 {
                return Err(ConfigError::BadWidth(format!("tag width of table {i}")));
            }
        }
        if self.distance_bits == 0 || self.distance_bits > 7 {
            return Err(ConfigError::BadWidth("distance field".into()));
        }
        if !(1..=7).contains(&self.usefulness_bits) || !(1..=7).contains(&self.bypass_bits) {
            return Err(ConfigError::BadWidth("confidence counters".into()));
        }
        let u_max = (1u8 << self.usefulness_bits) - 1;
        if self.dep_alloc_usefulness > u_max || self.nondep_alloc_usefulness > u_max {
            return Err(ConfigError::BadWidth("allocation usefulness".into()));
        }
        if self.history_lengths[0] != 0 {
            return Err(ConfigError::BadHistory(
                "first table must use zero history".into(),
            ));
        }
        if !self.history_lengths.windows(2).all(|w| w[0] < w[1]) {
            return Err(ConfigError::BadHistory(
                "history lengths must strictly increase".into(),
            ));
        }
        Ok(())
    }

    /// Sets per table (entries / associativity).
    pub fn sets(&self, table: usize) -> usize {
        (self.table_entries[table] / self.associativity) as usize
    }

    /// Appends the full configuration to a snapshot payload, making the
    /// predictor state self-describing: restore rebuilds the geometry from
    /// the snapshot and rejects payloads whose tables do not match it.
    pub fn snap_encode(&self, w: &mut SnapWriter) {
        w.u32(self.history_lengths.len() as u32);
        for &h in &self.history_lengths {
            w.u32(h);
        }
        for &e in &self.table_entries {
            w.u32(e);
        }
        for &t in &self.tag_bits {
            w.u8(t);
        }
        w.u32(self.associativity);
        w.u8(self.distance_bits);
        w.u8(self.usefulness_bits);
        w.u8(self.bypass_bits);
        w.u8(self.dep_alloc_usefulness);
        w.u8(self.nondep_alloc_usefulness);
        w.bool(self.tuning);
        w.bool(self.offset_bypass);
        match self.periodic_decay {
            Some(p) => {
                w.bool(true);
                w.u32(p);
            }
            None => w.bool(false),
        }
    }

    /// Decodes a configuration from a snapshot payload, fail-closed: the
    /// decoded configuration must pass [`MascotConfig::validate`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation, a hostile table count, or a decoded
    /// configuration that fails validation.
    pub fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.u32("config table count")? as usize;
        if n == 0 || n > 64 {
            return Err(SnapError::Corrupt("config table count out of range"));
        }
        let mut history_lengths = Vec::with_capacity(n);
        for _ in 0..n {
            history_lengths.push(r.u32("config history length")?);
        }
        let mut table_entries = Vec::with_capacity(n);
        for _ in 0..n {
            table_entries.push(r.u32("config table entries")?);
        }
        let mut tag_bits = Vec::with_capacity(n);
        for _ in 0..n {
            tag_bits.push(r.u8("config tag width")?);
        }
        let cfg = Self {
            history_lengths,
            table_entries,
            tag_bits,
            associativity: r.u32("config associativity")?,
            distance_bits: r.u8("config distance width")?,
            usefulness_bits: r.u8("config usefulness width")?,
            bypass_bits: r.u8("config bypass width")?,
            dep_alloc_usefulness: r.u8("config dependent allocation usefulness")?,
            nondep_alloc_usefulness: r.u8("config non-dependent allocation usefulness")?,
            tuning: r.bool("config tuning flag")?,
            offset_bypass: r.bool("config offset-bypass flag")?,
            periodic_decay: if r.bool("config periodic-decay flag")? {
                let p = r.u32("config decay period")?;
                if p == 0 {
                    return Err(SnapError::Corrupt("config decay period is zero"));
                }
                Some(p)
            } else {
                None
            },
        };
        cfg.validate()
            .map_err(|_| SnapError::Corrupt("snapshot configuration fails validation"))?;
        Ok(cfg)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // mutating a default config is the clearest test setup
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_14kib() {
        let cfg = MascotConfig::default();
        cfg.validate().unwrap();
        // 8 tables × 512 entries × 28 bits = 114,688 bits = 14 KiB exactly.
        assert_eq!(cfg.storage_bits(), 114_688);
        assert!((cfg.storage_kib() - 14.0).abs() < 1e-9);
    }

    /// §VI-D: MASCOT-OPT is a 16 % size reduction (≈11.8 KiB).
    #[test]
    fn opt_size_matches_paper() {
        let cfg = MascotConfig::opt();
        cfg.validate().unwrap();
        let kib = cfg.storage_kib();
        assert!((kib - 11.81).abs() < 0.05, "got {kib} KiB");
        let reduction = 1.0 - cfg.storage_bits() as f64 / MascotConfig::default().storage_bits() as f64;
        assert!((reduction - 0.16).abs() < 0.01, "got {reduction}");
    }

    /// Fig. 15: OPT with 4-bit tag reduction is the 10.1 KiB design point
    /// (27.7 % smaller than the 14 KiB default).
    #[test]
    fn opt_minus_4_tags_is_10_1_kib() {
        let cfg = MascotConfig::opt_with_tag_reduction(4);
        cfg.validate().unwrap();
        let kib = cfg.storage_kib();
        assert!((kib - 10.125).abs() < 0.05, "got {kib} KiB");
        let saving = 1.0 - cfg.storage_bits() as f64 / MascotConfig::default().storage_bits() as f64;
        assert!((saving - 0.277).abs() < 0.01, "got {saving}");
    }

    #[test]
    fn validation_catches_shape_mismatch() {
        let mut cfg = MascotConfig::default();
        cfg.tag_bits.pop();
        assert!(matches!(cfg.validate(), Err(ConfigError::ShapeMismatch(_))));
    }

    #[test]
    fn validation_catches_bad_table_size() {
        let mut cfg = MascotConfig::default();
        cfg.table_entries[3] = 100; // 25 sets: not a power of two
        assert!(matches!(cfg.validate(), Err(ConfigError::BadTableSize(3))));
    }

    #[test]
    fn validation_catches_nonzero_first_history() {
        let mut cfg = MascotConfig::default();
        cfg.history_lengths[0] = 1;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadHistory(_))));
    }

    #[test]
    fn validation_catches_non_increasing_history() {
        let mut cfg = MascotConfig::default();
        cfg.history_lengths[4] = 8; // duplicate of table 3
        assert!(matches!(cfg.validate(), Err(ConfigError::BadHistory(_))));
    }

    #[test]
    fn validation_catches_alloc_usefulness_overflow() {
        let mut cfg = MascotConfig::default();
        cfg.dep_alloc_usefulness = 8; // 3-bit counter maxes at 7
        assert!(matches!(cfg.validate(), Err(ConfigError::BadWidth(_))));
    }

    #[test]
    fn entry_bits_default_is_28() {
        let cfg = MascotConfig::default();
        for t in 0..cfg.num_tables() {
            assert_eq!(cfg.entry_bits(t), 28);
        }
    }

    #[test]
    fn snap_roundtrip_all_presets() {
        use mascot_snapshot::{SnapReader, SnapWriter};
        for cfg in [
            MascotConfig::default(),
            MascotConfig::opt(),
            MascotConfig::opt_with_tag_reduction(4),
            MascotConfig::default().with_tuning().with_offset_bypass(),
            MascotConfig::default().with_periodic_decay(512),
        ] {
            let mut w = SnapWriter::new();
            cfg.snap_encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            assert_eq!(MascotConfig::snap_decode(&mut r).unwrap(), cfg);
            r.finish().unwrap();
        }
    }

    #[test]
    fn snap_decode_rejects_invalid_configs() {
        use mascot_snapshot::{SnapReader, SnapWriter};
        let mut bad = MascotConfig::default();
        bad.table_entries[0] = 100; // 25 sets: not a power of two
        let mut w = SnapWriter::new();
        bad.snap_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(MascotConfig::snap_decode(&mut r).is_err());
        // Truncations fail.
        let mut w = SnapWriter::new();
        MascotConfig::default().snap_encode(&mut w);
        let good = w.into_bytes();
        for cut in 0..good.len() {
            let mut r = SnapReader::new(&good[..cut]);
            assert!(MascotConfig::snap_decode(&mut r).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn config_error_display_is_nonempty() {
        let err = ConfigError::BadTableSize(2);
        assert!(!err.to_string().is_empty());
    }
}
