//! The MASCOT predictor (§IV).
//!
//! MASCOT looks up all tables in parallel with indices/tags hashed from the
//! load PC and geometrically increasing windows of global branch + path
//! history; the longest-history hit provides the prediction, and a miss in
//! every table falls back to the base prediction of *non-dependence*.
//!
//! Its distinguishing feature (§IV-D) is that on a **false dependence** it
//! allocates an explicit *non-dependence entry* (distance 0) in the next
//! longer-history table, so conditional non-dependencies are learned as
//! first-class context patterns instead of waiting ~1,625 predictions for a
//! confidence counter to decay (§III-A).

use mascot_snapshot::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

use crate::config::MascotConfig;
use crate::entry::MascotEntry;
use crate::history::{rewind_hashers, BranchEvent, GlobalHistory, TableHasher};
use crate::prediction::{
    GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction, PredictReq, StoreDistance,
};
use crate::table::AssocTable;
use crate::tuning::TuningState;

/// Upper bound on the number of tagged tables supported by the fixed-size
/// prediction metadata.
pub const MAX_TABLES: usize = 16;

/// One table's lookup coordinates, captured at prediction time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableLookup {
    /// Set index within the table.
    pub index: u32,
    /// Partial tag.
    pub tag: u32,
}

/// Per-prediction metadata carried in the load's ROB entry and handed back
/// at commit, so training uses exactly the speculative-history hashes the
/// prediction used (as the hardware would).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MascotMeta {
    lookups: [TableLookup; MAX_TABLES],
    num_tables: u8,
    /// Providing table, or `None` for the base (all-miss) prediction.
    provider: Option<u8>,
    /// Way of the providing entry at prediction time.
    provider_way: u8,
}

impl MascotMeta {
    /// The providing table index, or `None` if the base predictor provided.
    pub fn provider(&self) -> Option<usize> {
        self.provider.map(usize::from)
    }

    /// The lookup coordinates captured for `table`.
    pub fn lookup(&self, table: usize) -> TableLookup {
        debug_assert!(table < usize::from(self.num_tables));
        self.lookups[table]
    }
}

/// Aggregate counters exposed for the Figs. 8, 10 and 13 analyses.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MascotStats {
    /// Predictions provided by each tagged table (Fig. 13).
    pub table_predictions: Vec<u64>,
    /// Predictions provided by the base (all-miss) predictor (Fig. 13).
    pub base_predictions: u64,
    /// Successful allocations of dependent entries.
    pub dep_allocations: u64,
    /// Successful allocations of non-dependence entries.
    pub nondep_allocations: u64,
    /// Tables that refused an allocation (all ways useful), triggering the
    /// try-again policy's usefulness decrement.
    pub allocation_failures: u64,
    /// Allocations abandoned entirely (every table from the target up
    /// refused).
    pub allocations_dropped: u64,
}

/// What kind of entry an allocation should create.
#[derive(Debug, Clone, Copy)]
enum EntryProto {
    Dependent {
        distance: StoreDistance,
        bypassable: bool,
    },
    NonDependent,
}

/// The MASCOT predictor.
///
/// # Examples
///
/// ```
/// use mascot::{Mascot, MascotConfig, MemDepPredictor, MemDepPrediction};
///
/// let mut p = Mascot::new(MascotConfig::default()).expect("valid config");
/// let (pred, _meta) = p.predict(0x400_100, 0, None);
/// assert_eq!(pred, MemDepPrediction::NoDependence); // cold predictor
/// assert!((p.storage_kib() - 14.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mascot {
    cfg: MascotConfig,
    tables: Vec<AssocTable<MascotEntry>>,
    hashers: Vec<TableHasher>,
    history: GlobalHistory,
    tuning: Option<TuningState>,
    stats: MascotStats,
    /// True for MASCOT proper; false for the Fig. 11 ablation, which on a
    /// false dependence only decays the provider.
    allocate_non_dependencies: bool,
    /// Updates since the last periodic decay (when enabled).
    updates_since_decay: u32,
    /// Scratch for the table-major batched probe (not part of the
    /// architectural state).
    #[serde(skip, default)]
    batch_scratch: Vec<BatchSlot>,
}

/// Per-request scratch state for [`Mascot::predict_batch_into`].
#[derive(Debug, Clone)]
struct BatchSlot {
    meta: MascotMeta,
    prediction: MemDepPrediction,
    resolved: bool,
}

impl Mascot {
    /// Builds a predictor from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`crate::config::ConfigError`] if the
    /// configuration is inconsistent, or a shape error if it exceeds
    /// [`MAX_TABLES`] tables.
    pub fn new(cfg: MascotConfig) -> Result<Self, crate::config::ConfigError> {
        cfg.validate()?;
        if cfg.num_tables() > MAX_TABLES {
            return Err(crate::config::ConfigError::ShapeMismatch(format!(
                "at most {MAX_TABLES} tables supported, got {}",
                cfg.num_tables()
            )));
        }
        // The fill payload seeds the SoA data lane; it is never read while
        // a way's tag is invalid.
        let fill = MascotEntry::non_dependent(cfg.usefulness_bits, 0, cfg.bypass_bits);
        let tables: Vec<_> = (0..cfg.num_tables())
            .map(|i| AssocTable::new(cfg.sets(i), cfg.associativity as usize, fill.clone()))
            .collect();
        let hashers: Vec<_> = (0..cfg.num_tables())
            .map(|i| {
                TableHasher::new(
                    cfg.history_lengths[i],
                    tables[i].index_bits(),
                    u32::from(cfg.tag_bits[i]),
                )
            })
            .collect();
        let max_hist = *cfg.history_lengths.last().expect("validated non-empty") as usize;
        let tuning = cfg
            .tuning
            .then(|| TuningState::new(tables.iter().map(AssocTable::capacity)));
        let stats = MascotStats {
            table_predictions: vec![0; cfg.num_tables()],
            ..MascotStats::default()
        };
        Ok(Self {
            cfg,
            tables,
            hashers,
            history: GlobalHistory::new((max_hist * 2).max(64)),
            tuning,
            stats,
            allocate_non_dependencies: true,
            updates_since_decay: 0,
            batch_scratch: Vec::new(),
        })
    }

    /// Builds the Fig. 11 ablation: structurally identical to MASCOT but it
    /// never allocates non-dependence entries — on a false dependence it
    /// only decays the provider's confidence, like prior TAGE-based MDP/SMB
    /// predictors.
    ///
    /// # Errors
    ///
    /// Same as [`Mascot::new`].
    pub fn without_non_dependence_allocation(
        cfg: MascotConfig,
    ) -> Result<Self, crate::config::ConfigError> {
        let mut p = Self::new(cfg)?;
        p.allocate_non_dependencies = false;
        Ok(p)
    }

    /// The active configuration.
    pub fn config(&self) -> &MascotConfig {
        &self.cfg
    }

    /// Aggregate prediction/allocation counters.
    pub fn stats(&self) -> &MascotStats {
        &self.stats
    }

    /// Whether non-dependence entries are allocated (false for the Fig. 11
    /// ablation).
    pub fn allocates_non_dependencies(&self) -> bool {
        self.allocate_non_dependencies
    }

    /// The tuning state (per-slot F1 accounting), if enabled in the config.
    pub fn tuning(&self) -> Option<&TuningState> {
        self.tuning.as_ref()
    }

    /// Occupancy of each table (diagnostics).
    pub fn occupancy(&self) -> Vec<usize> {
        self.tables.iter().map(AssocTable::occupancy).collect()
    }

    fn compute_lookups(&self, pc: u64) -> ([TableLookup; MAX_TABLES], u8) {
        let mut lookups = [TableLookup::default(); MAX_TABLES];
        for (i, hasher) in self.hashers.iter().enumerate() {
            lookups[i] = TableLookup {
                index: hasher.index(pc) as u32,
                tag: hasher.tag(pc) as u32,
            };
        }
        (lookups, self.hashers.len() as u8)
    }

    /// Interprets a providing entry as a three-way prediction (Fig. 5 left).
    fn entry_prediction(entry: &MascotEntry) -> MemDepPrediction {
        match entry.distance() {
            None => MemDepPrediction::NoDependence,
            Some(distance) => {
                if entry.predicts_bypass() {
                    MemDepPrediction::Bypass { distance }
                } else {
                    MemDepPrediction::Dependence { distance }
                }
            }
        }
    }

    /// Runs `f` on the providing entry if it still resides where the
    /// prediction found it (it may have been evicted in the interim).
    fn with_provider_entry(&mut self, meta: &MascotMeta, f: impl FnOnce(&mut MascotEntry)) {
        if let Some(p) = meta.provider() {
            let lk = meta.lookup(p);
            if let Some((_, e)) = self.tables[p].find_mut(u64::from(lk.index), u64::from(lk.tag)) {
                f(e);
            }
        }
    }

    /// Whether a conflict of this class is a bypass opportunity on the
    /// configured datapath (§IV-E).
    fn class_bypassable(&self, class: crate::prediction::BypassClass) -> bool {
        class.is_bypassable()
            || (self.cfg.offset_bypass && class == crate::prediction::BypassClass::Offset)
    }

    fn periodic_decay(&mut self) {
        let Some(period) = self.cfg.periodic_decay else {
            return;
        };
        self.updates_since_decay += 1;
        if self.updates_since_decay < period {
            return;
        }
        self.updates_since_decay = 0;
        for table in &mut self.tables {
            table.for_each_valid_slot_mut(|_, _, e| e.decay());
        }
    }

    fn build_entry(&self, proto: EntryProto) -> MascotEntry {
        match proto {
            EntryProto::Dependent {
                distance,
                bypassable,
            } => MascotEntry::dependent(
                distance,
                self.cfg.usefulness_bits,
                self.cfg.dep_alloc_usefulness,
                self.cfg.bypass_bits,
                u8::from(bypassable),
            ),
            EntryProto::NonDependent => MascotEntry::non_dependent(
                self.cfg.usefulness_bits,
                self.cfg.nondep_alloc_usefulness,
                self.cfg.bypass_bits,
            ),
        }
    }

    /// Allocates a new entry using the try-again policy (§IV-C): starting at
    /// `start_table`, attempt each longer-history table in turn; a table
    /// refuses when all its ways are useful, in which case all of its ways
    /// in the indexed set are decayed and the next table is tried.
    fn allocate(&mut self, meta: &MascotMeta, start_table: usize, proto: EntryProto) {
        for t in start_table..self.tables.len() {
            let lk = meta.lookup(t);
            let entry = self.build_entry(proto);
            match self.tables[t].try_insert(
                u64::from(lk.index),
                u64::from(lk.tag),
                entry,
                MascotEntry::is_evictable,
            ) {
                Some(_way) => {
                    match proto {
                        EntryProto::Dependent { .. } => self.stats.dep_allocations += 1,
                        EntryProto::NonDependent => self.stats.nondep_allocations += 1,
                    }
                    return;
                }
                None => {
                    self.stats.allocation_failures += 1;
                    self.tables[t].for_each_valid_mut(u64::from(lk.index), |_, e| e.decay());
                }
            }
        }
        self.stats.allocations_dropped += 1;
    }

    /// Total valid entries across all tables (the snapshot/restore
    /// "restored entries" accounting unit).
    pub fn entry_count(&self) -> u64 {
        self.tables.iter().map(|t| t.occupancy() as u64).sum()
    }

    /// Serializes the full architectural state: configuration, tables,
    /// global history, decay phase and aggregate stats.
    ///
    /// The table hashers are *not* serialized — they are a pure function of
    /// (config, history) and are recomputed on decode, which both shrinks
    /// the payload and makes "hashers match history" true by construction.
    /// The tuning state and batch scratch are instrumentation/scratch, not
    /// architectural state, and are likewise rebuilt fresh.
    pub fn snap_encode(&self, w: &mut SnapWriter) {
        self.cfg.snap_encode(w);
        w.bool(self.allocate_non_dependencies);
        w.u32(self.updates_since_decay);
        self.history.snap_encode(w);
        w.u32(self.stats.table_predictions.len() as u32);
        for &c in &self.stats.table_predictions {
            w.u64(c);
        }
        w.u64(self.stats.base_predictions);
        w.u64(self.stats.dep_allocations);
        w.u64(self.stats.nondep_allocations);
        w.u64(self.stats.allocation_failures);
        w.u64(self.stats.allocations_dropped);
        for table in &self.tables {
            table.snap_encode_with(w, |e, w| e.snap_encode(w));
        }
    }

    /// Decodes a predictor from a snapshot payload, fail-closed: the
    /// embedded configuration must validate, every table must match the
    /// geometry that configuration implies, every tag must fit its table's
    /// tag width, and the decay phase must be consistent with the decay
    /// period. Hashers are recomputed from the restored history.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation or any out-of-range or inconsistent
    /// field; no partially restored predictor is ever produced.
    pub fn snap_decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cfg = MascotConfig::snap_decode(r)?;
        let mut p = Self::new(cfg)
            .map_err(|_| SnapError::Corrupt("snapshot configuration rejected by the predictor"))?;
        p.allocate_non_dependencies = r.bool("non-dependence allocation flag")?;
        let updates = r.u32("decay phase")?;
        match p.cfg.periodic_decay {
            Some(period) if updates >= period => {
                return Err(SnapError::Corrupt("decay phase exceeds its period"));
            }
            None if updates != 0 => {
                return Err(SnapError::Corrupt("decay phase without periodic decay"));
            }
            _ => p.updates_since_decay = updates,
        }
        let history = GlobalHistory::snap_decode(r)?;
        if history.capacity() != p.history.capacity() {
            return Err(SnapError::Corrupt("history capacity does not match config"));
        }
        p.history = history;
        for hasher in &mut p.hashers {
            hasher.recompute(&p.history);
        }
        let nt = r.u32("stats table count")? as usize;
        if nt != p.tables.len() {
            return Err(SnapError::Corrupt("stats table count does not match config"));
        }
        let mut table_predictions = Vec::with_capacity(nt);
        for _ in 0..nt {
            table_predictions.push(r.u64("table prediction counter")?);
        }
        p.stats = MascotStats {
            table_predictions,
            base_predictions: r.u64("base prediction counter")?,
            dep_allocations: r.u64("dependent allocation counter")?,
            nondep_allocations: r.u64("non-dependence allocation counter")?,
            allocation_failures: r.u64("allocation failure counter")?,
            allocations_dropped: r.u64("dropped allocation counter")?,
        };
        let fill = MascotEntry::non_dependent(p.cfg.usefulness_bits, 0, p.cfg.bypass_bits);
        for i in 0..p.tables.len() {
            let tag_limit = 1u64 << p.cfg.tag_bits[i];
            p.tables[i] = AssocTable::snap_decode_with(
                r,
                p.cfg.sets(i),
                p.cfg.associativity as usize,
                fill.clone(),
                |t| t < tag_limit,
                MascotEntry::snap_decode,
            )?;
        }
        Ok(p)
    }

    /// Folds another predictor's tables into this one — the warm-resharding
    /// merge. Both predictors must share a configuration and ablation mode.
    ///
    /// For every valid entry of `other`, the entry is unioned into the same
    /// (table, set) of `self`; on a tag collision or a full set the entry
    /// with the higher usefulness (MDP confidence) wins. A tie keeps the
    /// incumbent but *decays* it one usefulness step: a pure
    /// ties-keep-the-incumbent rule let a flooding tenant's equal-usefulness
    /// entries survive every resharding union merge indefinitely (they were
    /// never preferred *over*, so they were never aged *out*); with the
    /// decay tiebreak a tied entry loses ground each round and becomes
    /// evictable. Aggregate stats are summed; the global history keeps
    /// `self`'s copy (shards see an identical broadcast branch stream, so
    /// the histories agree whenever the shards come from one serve run).
    ///
    /// Returns the number of entries written from `other` into `self`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] when the configurations or ablation modes
    /// differ.
    pub fn merge_from(&mut self, other: &Self) -> Result<u64, SnapError> {
        if self.cfg != other.cfg || self.allocate_non_dependencies != other.allocate_non_dependencies
        {
            return Err(SnapError::Corrupt(
                "cannot merge predictors with different configurations",
            ));
        }
        let mut written = 0;
        for (mine, theirs) in self.tables.iter_mut().zip(&other.tables) {
            written += mine.merge_from_resolve(theirs, |incoming, incumbent| {
                let inc = incoming.usefulness().value();
                let cur = incumbent.usefulness().value();
                if inc == cur {
                    incumbent.decay();
                }
                inc > cur
            })?;
        }
        for (mine, theirs) in self
            .stats
            .table_predictions
            .iter_mut()
            .zip(&other.stats.table_predictions)
        {
            *mine += *theirs;
        }
        self.stats.base_predictions += other.stats.base_predictions;
        self.stats.dep_allocations += other.stats.dep_allocations;
        self.stats.nondep_allocations += other.stats.nondep_allocations;
        self.stats.allocation_failures += other.stats.allocation_failures;
        self.stats.allocations_dropped += other.stats.allocations_dropped;
        Ok(written)
    }

    /// Table-major batched probe: computes every request's lookups up front,
    /// then sweeps each table once — longest history first — across all
    /// still-unresolved requests, so a batch makes one pass over each tag
    /// lane instead of N dependent random walks.
    ///
    /// Behaviourally identical to calling [`MemDepPredictor::predict`] per
    /// request in order: `predict` never writes the tables (only the
    /// commutative stats counters), so probe order cannot change any
    /// prediction, and results are emitted to `sink` in request order.
    pub fn predict_batch_into(
        &mut self,
        reqs: &[PredictReq],
        mut sink: impl FnMut(MemDepPrediction, MascotMeta),
    ) {
        let mut slots = std::mem::take(&mut self.batch_scratch);
        slots.clear();
        for req in reqs {
            let (lookups, num_tables) = self.compute_lookups(req.pc);
            slots.push(BatchSlot {
                meta: MascotMeta {
                    lookups,
                    num_tables,
                    provider: None,
                    provider_way: 0,
                },
                prediction: MemDepPrediction::NoDependence,
                resolved: false,
            });
        }
        for t in (0..self.tables.len()).rev() {
            let table = &self.tables[t];
            let mut hits = 0u64;
            for slot in slots.iter_mut().filter(|s| !s.resolved) {
                let lk = slot.meta.lookups[t];
                if let Some((way, entry)) = table.find(u64::from(lk.index), u64::from(lk.tag)) {
                    slot.meta.provider = Some(t as u8);
                    slot.meta.provider_way = way as u8;
                    slot.prediction = Self::entry_prediction(entry);
                    slot.resolved = true;
                    hits += 1;
                }
            }
            self.stats.table_predictions[t] += hits;
        }
        for slot in &slots {
            if !slot.resolved {
                self.stats.base_predictions += 1;
            }
            sink(slot.prediction, slot.meta);
        }
        self.batch_scratch = slots;
    }
}

impl MemDepPredictor for Mascot {
    type Meta = MascotMeta;

    fn name(&self) -> &'static str {
        if self.allocate_non_dependencies {
            "mascot"
        } else {
            "tage-no-nd"
        }
    }

    fn predict(
        &mut self,
        pc: u64,
        _store_seq: u64,
        _oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, MascotMeta) {
        let (lookups, num_tables) = self.compute_lookups(pc);
        let mut provider = None;
        let mut provider_way = 0u8;
        let mut prediction = MemDepPrediction::NoDependence;
        for t in (0..self.tables.len()).rev() {
            let lk = lookups[t];
            if let Some((way, entry)) = self.tables[t].find(u64::from(lk.index), u64::from(lk.tag))
            {
                provider = Some(t as u8);
                provider_way = way as u8;
                prediction = Self::entry_prediction(entry);
                self.stats.table_predictions[t] += 1;
                break;
            }
        }
        if provider.is_none() {
            self.stats.base_predictions += 1;
        }
        (
            prediction,
            MascotMeta {
                lookups,
                num_tables,
                provider,
                provider_way,
            },
        )
    }

    fn predict_batch(
        &mut self,
        reqs: &[PredictReq],
        out: &mut Vec<(MemDepPrediction, Self::Meta)>,
    ) {
        out.clear();
        out.reserve(reqs.len());
        self.predict_batch_into(reqs, |p, m| out.push((p, m)));
    }

    fn train(
        &mut self,
        _pc: u64,
        meta: MascotMeta,
        predicted: MemDepPrediction,
        outcome: &LoadOutcome,
    ) {
        self.periodic_decay();
        // Tuning: attribute this outcome to the providing slot (§IV-F).
        if let Some(tuning) = &mut self.tuning {
            if let Some(p) = meta.provider() {
                let lk = meta.lookup(p);
                let slot = self.tables[p].slot_id(u64::from(lk.index), usize::from(meta.provider_way));
                tuning.record(p, slot, predicted.is_dependence(), outcome.is_dependent());
            }
        }

        match predicted {
            MemDepPrediction::NoDependence => match outcome.dependence {
                None => {
                    // Correct non-dependence: reinforce a providing
                    // non-dependence entry so it survives eviction pressure.
                    self.with_provider_entry(&meta, |e| {
                        if e.is_non_dependence() {
                            e.reward_dependence();
                        }
                    });
                }
                Some(dep) => {
                    // Missed dependence: punish a providing non-dependence
                    // entry and allocate the true dependence with longer
                    // context (base provider allocates into N0, §IV-C).
                    self.with_provider_entry(&meta, MascotEntry::punish_dependence);
                    let start = meta.provider().map_or(0, |p| p + 1);
                    self.allocate(
                        &meta,
                        start,
                        EntryProto::Dependent {
                            distance: dep.distance,
                            bypassable: self.class_bypassable(dep.class),
                        },
                    );
                }
            },
            MemDepPrediction::Dependence { distance } | MemDepPrediction::Bypass { distance } => {
                match outcome.dependence {
                    Some(dep) if dep.distance == distance => {
                        // Correct MDP; bypass confidence tracks whether the
                        // conflict was a bypass opportunity (§IV-E).
                        let bypassable = self.class_bypassable(dep.class);
                        self.with_provider_entry(&meta, |e| {
                            e.reward_dependence();
                            if bypassable {
                                e.reward_bypass();
                            } else {
                                e.punish_bypass();
                            }
                        });
                    }
                    Some(dep) => {
                        // Conflict with a different store: punish and
                        // allocate the corrected distance in the next table.
                        self.with_provider_entry(&meta, |e| {
                            e.punish_dependence();
                            e.punish_bypass();
                        });
                        let start = meta.provider().map_or(0, |p| p + 1);
                        self.allocate(
                            &meta,
                            start,
                            EntryProto::Dependent {
                                distance: dep.distance,
                                bypassable: self.class_bypassable(dep.class),
                            },
                        );
                    }
                    None => {
                        // False dependence: THE key case (§IV-D). Punish the
                        // provider, and (MASCOT only) allocate an explicit
                        // non-dependence entry with longer context.
                        self.with_provider_entry(&meta, |e| {
                            e.punish_dependence();
                            e.punish_bypass();
                        });
                        if self.allocate_non_dependencies {
                            let start = meta.provider().map_or(0, |p| p + 1);
                            self.allocate(&meta, start, EntryProto::NonDependent);
                        }
                    }
                }
            }
        }
    }

    fn on_branch(&mut self, event: &BranchEvent) {
        for hasher in &mut self.hashers {
            hasher.on_branch(&self.history, event);
        }
        self.history.push(*event);
    }

    fn rewind_history(&mut self, recent: &[BranchEvent]) {
        rewind_hashers(&mut self.history, &mut self.hashers, recent);
    }

    fn bypass_supports_offset(&self) -> bool {
        self.cfg.offset_bypass
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }

    fn end_tuning_period(&mut self) {
        if let Some(t) = &mut self.tuning {
            t.end_period();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::{BypassClass, ObservedDependence};

    fn dep(distance: u32, class: BypassClass) -> ObservedDependence {
        ObservedDependence {
            distance: StoreDistance::new(distance).unwrap(),
            class,
            store_pc: 0x900,
            branches_between: 0,
        }
    }

    fn small_cfg() -> MascotConfig {
        MascotConfig {
            history_lengths: vec![0, 2, 4, 8],
            table_entries: vec![64; 4],
            tag_bits: vec![12; 4],
            ..MascotConfig::default()
        }
    }

    fn predictor() -> Mascot {
        Mascot::new(small_cfg()).unwrap()
    }

    const PC: u64 = 0x40_1000;

    /// Trains one (prediction, outcome) round at `pc` and returns the
    /// *next* prediction.
    fn step(p: &mut Mascot, pc: u64, outcome: LoadOutcome) -> MemDepPrediction {
        let (pred, meta) = p.predict(pc, 0, None);
        p.train(pc, meta, pred, &outcome);
        let (next, _) = p.predict(pc, 0, None);
        next
    }

    #[test]
    fn cold_predictor_defaults_to_non_dependence() {
        let mut p = predictor();
        let (pred, meta) = p.predict(PC, 0, None);
        assert_eq!(pred, MemDepPrediction::NoDependence);
        assert_eq!(meta.provider(), None);
        assert_eq!(p.stats().base_predictions, 1);
    }

    #[test]
    fn learns_dependence_after_one_miss() {
        let mut p = predictor();
        let out = LoadOutcome::dependent(dep(3, BypassClass::MdpOnly));
        let next = step(&mut p, PC, out);
        assert_eq!(
            next,
            MemDepPrediction::Dependence {
                distance: StoreDistance::new(3).unwrap()
            }
        );
        assert_eq!(p.stats().dep_allocations, 1);
    }

    /// A dependent entry must reach saturation of both counters before
    /// predicting bypass: allocated at u=6/b=1, it needs one u increment
    /// and two b increments.
    #[test]
    fn bypass_requires_confidence_buildup() {
        let mut p = predictor();
        let out = LoadOutcome::dependent(dep(2, BypassClass::DirectBypass));
        let mut pred = step(&mut p, PC, out);
        assert!(matches!(pred, MemDepPrediction::Dependence { .. }));
        // Keep confirming until it upgrades to a bypass prediction.
        for _ in 0..3 {
            let (pr, meta) = p.predict(PC, 0, None);
            p.train(PC, meta, pr, &out);
        }
        pred = p.predict(PC, 0, None).0;
        assert_eq!(
            pred,
            MemDepPrediction::Bypass {
                distance: StoreDistance::new(2).unwrap()
            }
        );
    }

    #[test]
    fn mdp_only_class_never_upgrades_to_bypass() {
        let mut p = predictor();
        let out = LoadOutcome::dependent(dep(2, BypassClass::MdpOnly));
        for _ in 0..20 {
            let (pr, meta) = p.predict(PC, 0, None);
            p.train(PC, meta, pr, &out);
        }
        let pred = p.predict(PC, 0, None).0;
        assert!(
            matches!(pred, MemDepPrediction::Dependence { .. }),
            "got {pred:?}"
        );
    }

    /// §IV-D: a false dependence allocates a non-dependence entry in a
    /// longer-history table, which then provides a NoDependence prediction.
    #[test]
    fn false_dependence_allocates_non_dependence_entry() {
        let mut p = predictor();
        // Learn a dependence in table 0.
        step(&mut p, PC, LoadOutcome::dependent(dep(1, BypassClass::MdpOnly)));
        // Now the load stops depending: one false dependence should allocate
        // a non-dependence entry in the next table.
        let next = step(&mut p, PC, LoadOutcome::independent());
        assert_eq!(next, MemDepPrediction::NoDependence);
        assert_eq!(p.stats().nondep_allocations, 1);
    }

    /// The Fig. 11 ablation decays confidence instead: after a single false
    /// dependence it still predicts the (stale) dependence.
    #[test]
    fn ablation_keeps_predicting_after_false_dependence() {
        let mut p = Mascot::without_non_dependence_allocation(small_cfg()).unwrap();
        assert_eq!(p.name(), "tage-no-nd");
        step(&mut p, PC, LoadOutcome::dependent(dep(1, BypassClass::MdpOnly)));
        let next = step(&mut p, PC, LoadOutcome::independent());
        assert!(
            matches!(next, MemDepPrediction::Dependence { .. }),
            "ablation should keep the dependent entry alive; got {next:?}"
        );
        assert_eq!(p.stats().nondep_allocations, 0);
    }

    /// §III-A's example end-to-end: a dependence conditioned on the most
    /// recent branch direction becomes predictable once the non-dependence
    /// context is allocated.
    #[test]
    fn learns_branch_conditional_dependence() {
        use crate::history::{BranchEvent, BranchKind};
        let mut p = predictor();
        let branch = |taken| BranchEvent {
            pc: 0x500,
            kind: BranchKind::Conditional,
            taken,
            target: 0x600,
        };
        let dep_out = LoadOutcome::dependent(dep(1, BypassClass::DirectBypass));
        let indep_out = LoadOutcome::independent();
        // Train: taken -> dependent, not-taken -> independent.
        for round in 0..60u32 {
            let taken = round % 2 == 0;
            p.on_branch(&branch(taken));
            let (pred, meta) = p.predict(PC, 0, None);
            let out = if taken { dep_out } else { indep_out };
            p.train(PC, meta, pred, &out);
        }
        // Evaluate: after warmup both contexts should predict correctly.
        let mut correct = 0;
        for round in 0..40u32 {
            let taken = round % 2 == 0;
            p.on_branch(&branch(taken));
            let (pred, meta) = p.predict(PC, 0, None);
            let out = if taken { dep_out } else { indep_out };
            if pred.is_dependence() == out.is_dependent() {
                correct += 1;
            }
            p.train(PC, meta, pred, &out);
        }
        assert!(correct >= 36, "only {correct}/40 correct");
    }

    #[test]
    fn wrong_distance_reallocates_with_correct_distance() {
        let mut p = predictor();
        step(&mut p, PC, LoadOutcome::dependent(dep(1, BypassClass::MdpOnly)));
        // Conflict with a different store (distance 4).
        let next = step(&mut p, PC, LoadOutcome::dependent(dep(4, BypassClass::MdpOnly)));
        assert_eq!(
            next,
            MemDepPrediction::Dependence {
                distance: StoreDistance::new(4).unwrap()
            }
        );
    }

    #[test]
    fn incorrect_bypass_resets_bypass_confidence() {
        let mut p = predictor();
        let byp = LoadOutcome::dependent(dep(2, BypassClass::DirectBypass));
        // Build up to a bypass prediction.
        for _ in 0..5 {
            let (pr, meta) = p.predict(PC, 0, None);
            p.train(PC, meta, pr, &byp);
        }
        assert!(p.predict(PC, 0, None).0.is_bypass());
        // Same store, but only a partial overlap: correct MDP, failed SMB.
        let partial = LoadOutcome::dependent(dep(2, BypassClass::MdpOnly));
        let (pr, meta) = p.predict(PC, 0, None);
        p.train(PC, meta, pr, &partial);
        let after = p.predict(PC, 0, None).0;
        assert!(
            matches!(after, MemDepPrediction::Dependence { .. }),
            "bypass confidence must reset after a failed bypass; got {after:?}"
        );
    }

    #[test]
    fn rewind_restores_hashing() {
        use crate::history::{BranchEvent, BranchKind};
        let mut p = predictor();
        let events: Vec<BranchEvent> = (0..20u64)
            .map(|i| BranchEvent {
                pc: i * 4,
                kind: BranchKind::Conditional,
                taken: i % 3 == 0,
                target: i * 4 + 16,
            })
            .collect();
        for ev in &events {
            p.on_branch(ev);
        }
        let (_, meta_before) = p.predict(PC, 0, None);
        // Wrong-path traffic, then rewind to the architectural history.
        for i in 0..5u64 {
            p.on_branch(&BranchEvent {
                pc: 0x9000 + i * 4,
                kind: BranchKind::Conditional,
                taken: true,
                target: 0x9100,
            });
        }
        p.rewind_history(&events);
        let (_, meta_after) = p.predict(PC, 0, None);
        for t in 0..4 {
            assert_eq!(meta_before.lookup(t), meta_after.lookup(t), "table {t}");
        }
    }

    #[test]
    fn storage_matches_config() {
        let p = predictor();
        assert_eq!(p.storage_bits(), small_cfg().storage_bits());
    }

    #[test]
    fn allocation_pressure_decays_sets() {
        // Fill one set of the last table completely with useful entries,
        // then force repeated allocation attempts targeting it: failures
        // must decrement usefulness until an entry becomes evictable.
        let cfg = MascotConfig {
            history_lengths: vec![0],
            table_entries: vec![4], // a single 4-way set
            tag_bits: vec![10],
            ..MascotConfig::default()
        };
        let mut p = Mascot::new(cfg).unwrap();
        // Distinct PCs hash to distinct tags within the single set.
        let pcs: Vec<u64> = (0..12u64).map(|i| 0x1000 + i * 64).collect();
        let out = LoadOutcome::dependent(dep(1, BypassClass::MdpOnly));
        for &pc in &pcs {
            let (pr, meta) = p.predict(pc, 0, None);
            p.train(pc, meta, pr, &out);
        }
        let s = p.stats();
        assert!(s.allocation_failures > 0, "expected allocation pressure");
        assert!(s.dep_allocations >= 4, "some allocations must succeed");
    }

    /// §IV-E extension: with offset bypassing enabled, Offset-class
    /// conflicts build bypass confidence; without it they never do.
    #[test]
    fn offset_bypass_extension_changes_bypassability() {
        let out = LoadOutcome::dependent(dep(2, BypassClass::Offset));
        let mut plain = Mascot::new(small_cfg()).unwrap();
        let mut extended = Mascot::new(small_cfg().with_offset_bypass()).unwrap();
        assert!(!plain.bypass_supports_offset());
        assert!(extended.bypass_supports_offset());
        for _ in 0..20 {
            let (pr, meta) = plain.predict(PC, 0, None);
            plain.train(PC, meta, pr, &out);
            let (pr, meta) = extended.predict(PC, 0, None);
            extended.train(PC, meta, pr, &out);
        }
        assert!(
            !plain.predict(PC, 0, None).0.is_bypass(),
            "default datapath must not bypass offset loads"
        );
        assert!(
            extended.predict(PC, 0, None).0.is_bypass(),
            "the shifting-field extension bypasses offset loads"
        );
    }

    /// §IV-C: periodic decay eventually makes even a saturated entry
    /// evictable without any misprediction.
    #[test]
    fn periodic_decay_ages_entries() {
        let mut p = Mascot::new(small_cfg().with_periodic_decay(5)).unwrap();
        // Learn a dependence and saturate it.
        let out = LoadOutcome::dependent(dep(1, BypassClass::DirectBypass));
        for _ in 0..4 {
            let (pr, meta) = p.predict(PC, 0, None);
            p.train(PC, meta, pr, &out);
        }
        // Train an unrelated PC repeatedly: decay ticks with every update
        // while the victim entry receives no reinforcement.
        for _ in 0..60 {
            let (pr, meta) = p.predict(0x99_0000, 0, None);
            p.train(0x99_0000, meta, pr, &LoadOutcome::independent());
        }
        let occupancy_before: usize = p.occupancy().iter().sum();
        assert!(occupancy_before >= 1);
        // The aged entry still predicts (distance survives) but is now
        // evictable; verify by exhausting its set with fresh allocations.
        let (pred, _) = p.predict(PC, 0, None);
        assert!(pred.is_dependence(), "decay must not erase the prediction");
    }

    /// Drives a deterministic mixed workload (branches, dependent and
    /// independent loads) so the predictor has non-trivial state in every
    /// structure: tables, history, hashers, stats.
    fn warm(p: &mut Mascot, rounds: u32) {
        use crate::history::{BranchEvent, BranchKind};
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..rounds {
            let r = next();
            p.on_branch(&BranchEvent {
                pc: 0x500 + (r % 64) * 4,
                kind: if r % 5 == 0 {
                    BranchKind::Indirect
                } else {
                    BranchKind::Conditional
                },
                taken: r % 2 == 0,
                target: 0x600 + (r % 16) * 4,
            });
            let pc = PC + (next() % 24) * 4;
            let (pred, meta) = p.predict(pc, 0, None);
            let out = if next() % 3 == 0 {
                LoadOutcome::independent()
            } else {
                LoadOutcome::dependent(dep(
                    1 + (next() % 7) as u32,
                    BypassClass::DirectBypass,
                ))
            };
            p.train(pc, meta, pred, &out);
        }
    }

    /// Snapshot → restore must reproduce the exact architectural state:
    /// re-encoding the restored predictor yields the original bytes, and
    /// continued identical traffic produces identical predictions.
    #[test]
    fn snap_roundtrip_is_bit_identical() {
        let mut p = predictor();
        warm(&mut p, 400);
        let mut w = SnapWriter::new();
        p.snap_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut q = Mascot::snap_decode(&mut r).unwrap();
        r.finish().unwrap();
        let mut w2 = SnapWriter::new();
        q.snap_encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "restored state must re-encode identically");
        // Continued traffic diverges if any hidden state (hashers, history,
        // decay phase) was restored wrong.
        warm(&mut p, 200);
        warm(&mut q, 200);
        for i in 0..24u64 {
            let pc = PC + i * 4;
            assert_eq!(
                p.predict(pc, 0, None).0,
                q.predict(pc, 0, None).0,
                "divergence at pc {pc:#x}"
            );
        }
    }

    #[test]
    fn snap_roundtrip_preserves_decay_phase_and_ablation() {
        let mut p =
            Mascot::without_non_dependence_allocation(small_cfg().with_periodic_decay(7)).unwrap();
        warm(&mut p, 50);
        let mut w = SnapWriter::new();
        p.snap_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let q = Mascot::snap_decode(&mut r).unwrap();
        assert!(!q.allocates_non_dependencies());
        assert_eq!(q.name(), "tage-no-nd");
        let mut w2 = SnapWriter::new();
        q.snap_encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn snap_decode_is_fail_closed() {
        let mut p = predictor();
        warm(&mut p, 100);
        let mut w = SnapWriter::new();
        p.snap_encode(&mut w);
        let good = w.into_bytes();
        for cut in 0..good.len() {
            let mut r = SnapReader::new(&good[..cut]);
            let decoded = Mascot::snap_decode(&mut r);
            assert!(
                decoded.is_err() || r.finish().is_err(),
                "truncation to {cut} bytes must not decode cleanly"
            );
        }
        // A decay phase at or past the period is inconsistent.
        let mut p = Mascot::new(small_cfg().with_periodic_decay(3)).unwrap();
        warm(&mut p, 10);
        let mut w = SnapWriter::new();
        p.snap_encode(&mut w);
        let mut bytes = w.into_bytes();
        // The decay phase is the u32 right after the config and the
        // ablation flag; locate it by re-encoding just the config.
        let mut cw = SnapWriter::new();
        p.config().snap_encode(&mut cw);
        let off = cw.len() + 1;
        bytes[off..off + 4].copy_from_slice(&99u32.to_le_bytes());
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            Mascot::snap_decode(&mut r),
            Err(SnapError::Corrupt("decay phase exceeds its period"))
        ));
    }

    /// Warm resharding: predictors trained on disjoint PC sets union into
    /// one that serves both, preferring the higher-confidence entry on
    /// collision.
    #[test]
    fn merge_unions_disjoint_knowledge() {
        let mut a = predictor();
        let mut b = predictor();
        let out = |d| LoadOutcome::dependent(dep(d, BypassClass::MdpOnly));
        for i in 0..8u64 {
            let pc = 0x1000 + i * 64;
            for _ in 0..3 {
                let (pr, meta) = a.predict(pc, 0, None);
                a.train(pc, meta, pr, &out(2));
            }
        }
        for i in 0..8u64 {
            let pc = 0x9000 + i * 64;
            for _ in 0..3 {
                let (pr, meta) = b.predict(pc, 0, None);
                b.train(pc, meta, pr, &out(5));
            }
        }
        let before = a.entry_count();
        let written = a.merge_from(&b).unwrap();
        assert!(written > 0);
        assert!(a.entry_count() > before);
        assert!(a
            .predict(0x1000, 0, None)
            .0
            .is_dependence());
        assert!(a
            .predict(0x9000, 0, None)
            .0
            .is_dependence());
        // Stats are summed (each side allocated once per PC, then only
        // reinforced).
        assert_eq!(a.stats().dep_allocations, 16);
        // Mismatched configurations are rejected.
        let other = Mascot::new(MascotConfig::default()).unwrap();
        assert!(a.merge_from(&other).is_err());
    }

    /// Regression: a flooding tenant's equal-usefulness entries must not
    /// survive resharding union merges indefinitely. Under the old
    /// ties-keep-the-incumbent rule, an entry whose usefulness exactly
    /// matched every incoming rival was never replaced *and* never aged, so
    /// repeated merges pinned it forever; the decay tiebreak makes each tied
    /// round cost one usefulness step until the entry is evictable.
    #[test]
    fn merge_ties_decay_instead_of_pinning() {
        // Train the same PC in two predictors with *different* distances:
        // the entries collide at the same (table, set, tag) with equal
        // usefulness, so under the old rule the incumbent's stale distance
        // won every merge forever.
        let train_once = |p: &mut Mascot, d: u32| {
            let out = LoadOutcome::dependent(dep(d, BypassClass::MdpOnly));
            let (pr, meta) = p.predict(PC, 0, None);
            p.train(PC, meta, pr, &out);
        };
        let mut incumbent = predictor();
        train_once(&mut incumbent, 2);
        let mut rival = predictor();
        train_once(&mut rival, 5);
        let useful_of = |p: &mut Mascot| {
            let (_, meta) = p.predict(PC, 0, None);
            let t = meta.provider().expect("trained entry provides");
            let lk = meta.lookup(t);
            p.tables[t]
                .find(u64::from(lk.index), u64::from(lk.tag))
                .expect("entry resides where predicted")
                .1
                .usefulness()
                .value()
        };
        let tied = useful_of(&mut incumbent);
        assert_eq!(tied, useful_of(&mut rival), "setup: a genuine tie");
        // Round 1: the tie keeps the incumbent but decays it one step —
        // under the old rule this round left it untouched at `tied`.
        let written = incumbent.merge_from(&rival).unwrap();
        assert_eq!(written, 0);
        assert_eq!(useful_of(&mut incumbent), tied - 1, "tie must cost a decay step");
        assert!(
            matches!(
                incumbent.predict(PC, 0, None).0,
                MemDepPrediction::Dependence { distance } if distance.get() == 2
            ),
            "incumbent survives the first tied round"
        );
        // Round 2: the decayed incumbent now loses outright, so the rival's
        // entry replaces it instead of being pinned out forever.
        let written = incumbent.merge_from(&rival).unwrap();
        assert!(written >= 1, "a repeatedly tied incumbent must lose its slot");
        assert!(
            matches!(
                incumbent.predict(PC, 0, None).0,
                MemDepPrediction::Dependence { distance } if distance.get() == 5
            ),
            "the rival's entry takes over after the decayed tie"
        );
    }

    /// Periodic decay leaves the headline behaviour intact (the paper
    /// "did not find any meaningful changes in performance").
    #[test]
    fn periodic_decay_does_not_break_learning() {
        let mut with = Mascot::new(small_cfg().with_periodic_decay(64)).unwrap();
        let mut without = Mascot::new(small_cfg()).unwrap();
        let out = LoadOutcome::dependent(dep(3, BypassClass::DirectBypass));
        let mut agree = 0;
        for i in 0..200u32 {
            let o = if i % 4 == 0 { LoadOutcome::independent() } else { out };
            let (p1, m1) = with.predict(PC, 0, None);
            with.train(PC, m1, p1, &o);
            let (p2, m2) = without.predict(PC, 0, None);
            without.train(PC, m2, p2, &o);
            if p1.is_dependence() == p2.is_dependence() {
                agree += 1;
            }
        }
        assert!(agree > 180, "decay changed behaviour materially: {agree}/200");
    }
}
