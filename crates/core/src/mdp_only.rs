//! MDP-only MASCOT (§VI-A, Fig. 9): the bypassing counter is ignored and
//! every bypass prediction is demoted to a plain dependence.

use crate::history::BranchEvent;
use crate::prediction::{
    GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction, PredictReq,
};
use crate::predictor::{Mascot, MascotMeta};
use serde::{Deserialize, Serialize};

/// MASCOT used solely as a memory-dependence predictor.
///
/// Internally identical to [`Mascot`] (including bypass-counter training, so
/// the tables age the same way), but the external prediction never requests
/// speculative memory bypassing.
///
/// # Examples
///
/// ```
/// use mascot::{MascotConfig, MascotMdpOnly, MemDepPredictor};
///
/// let mut p = MascotMdpOnly::new(MascotConfig::default()).expect("valid config");
/// let (pred, _meta) = p.predict(0x400, 0, None);
/// assert!(!pred.is_bypass());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MascotMdpOnly {
    inner: Mascot,
}

impl MascotMdpOnly {
    /// Builds the MDP-only predictor.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors from [`Mascot::new`].
    pub fn new(cfg: crate::config::MascotConfig) -> Result<Self, crate::config::ConfigError> {
        Ok(Self {
            inner: Mascot::new(cfg)?,
        })
    }

    /// Wraps an existing MASCOT instance.
    pub fn from_mascot(inner: Mascot) -> Self {
        Self { inner }
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &Mascot {
        &self.inner
    }

    /// Serializes the wrapped predictor's state ([`Mascot::snap_encode`]).
    pub fn snap_encode(&self, w: &mut mascot_snapshot::SnapWriter) {
        self.inner.snap_encode(w);
    }

    /// Restores from a snapshot payload ([`Mascot::snap_decode`]).
    ///
    /// # Errors
    ///
    /// Propagates any [`mascot_snapshot::SnapError`] from the inner decode.
    pub fn snap_decode(
        r: &mut mascot_snapshot::SnapReader<'_>,
    ) -> Result<Self, mascot_snapshot::SnapError> {
        Ok(Self {
            inner: Mascot::snap_decode(r)?,
        })
    }

    /// Folds another MDP-only predictor's tables into this one
    /// ([`Mascot::merge_from`]).
    ///
    /// # Errors
    ///
    /// Propagates any [`mascot_snapshot::SnapError`] from the inner merge.
    pub fn merge_from(&mut self, other: &Self) -> Result<u64, mascot_snapshot::SnapError> {
        self.inner.merge_from(&other.inner)
    }

    /// Total valid entries across all tables ([`Mascot::entry_count`]).
    pub fn entry_count(&self) -> u64 {
        self.inner.entry_count()
    }

    /// Batched probe: [`Mascot::predict_batch_into`] with every prediction
    /// demoted before it reaches the sink.
    pub fn predict_batch_into(
        &mut self,
        reqs: &[PredictReq],
        mut sink: impl FnMut(MemDepPrediction, MascotMeta),
    ) {
        self.inner
            .predict_batch_into(reqs, |p, m| sink(p.demote_bypass(), m));
    }
}

impl MemDepPredictor for MascotMdpOnly {
    type Meta = MascotMeta;

    fn name(&self) -> &'static str {
        "mascot-mdp"
    }

    fn predict(
        &mut self,
        pc: u64,
        store_seq: u64,
        oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, MascotMeta) {
        let (pred, meta) = self.inner.predict(pc, store_seq, oracle);
        (pred.demote_bypass(), meta)
    }

    fn predict_batch(
        &mut self,
        reqs: &[PredictReq],
        out: &mut Vec<(MemDepPrediction, Self::Meta)>,
    ) {
        out.clear();
        out.reserve(reqs.len());
        self.predict_batch_into(reqs, |p, m| out.push((p, m)));
    }

    fn train(
        &mut self,
        pc: u64,
        meta: MascotMeta,
        predicted: MemDepPrediction,
        outcome: &LoadOutcome,
    ) {
        self.inner.train(pc, meta, predicted, outcome);
    }

    fn on_branch(&mut self, event: &BranchEvent) {
        self.inner.on_branch(event);
    }

    fn rewind_history(&mut self, recent: &[BranchEvent]) {
        self.inner.rewind_history(recent);
    }

    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }

    fn end_tuning_period(&mut self) {
        self.inner.end_tuning_period();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::{BypassClass, LoadOutcome, ObservedDependence, StoreDistance};

    #[test]
    fn never_predicts_bypass() {
        let cfg = crate::config::MascotConfig {
            history_lengths: vec![0, 2],
            table_entries: vec![64, 64],
            tag_bits: vec![12, 12],
            ..Default::default()
        };
        let mut p = MascotMdpOnly::new(cfg).unwrap();
        let pc = 0x7700;
        let out = LoadOutcome::dependent(ObservedDependence {
            distance: StoreDistance::new(2).unwrap(),
            class: BypassClass::DirectBypass,
            store_pc: 0x100,
            branches_between: 0,
        });
        for _ in 0..30 {
            let (pred, meta) = p.predict(pc, 0, None);
            assert!(!pred.is_bypass());
            p.train(pc, meta, pred, &out);
        }
        // The inner predictor has saturated counters and would bypass...
        assert!(p.inner().clone().predict(pc, 0, None).0.is_bypass());
        // ...but the wrapper still demotes.
        assert!(!p.predict(pc, 0, None).0.is_bypass());
    }
}
