//! Shared prediction vocabulary: predictions, outcomes and the
//! [`MemDepPredictor`] trait implemented by MASCOT and every baseline.
//!
//! The three-way prediction mirrors Fig. 5 of the paper: a load is predicted
//! either independent, dependent on a specific prior store (MDP), or
//! dependent with a bypassable value (SMB).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::history::BranchEvent;

/// Program-order distance from a load back to a prior store.
///
/// A distance of 1 names the store immediately preceding the load in program
/// order; MASCOT's 7-bit field encodes 1..=127 (0 is reserved inside the
/// predictor to mean "non-dependence" and is not representable here).
///
/// # Examples
///
/// ```
/// use mascot::StoreDistance;
///
/// let d = StoreDistance::new(3).unwrap();
/// assert_eq!(d.get(), 3);
/// assert!(StoreDistance::new(0).is_none());
/// assert!(StoreDistance::new(128).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StoreDistance(u8);

impl StoreDistance {
    /// Maximum encodable distance (7-bit field, 0 reserved).
    pub const MAX: u8 = 127;

    /// Creates a distance; `None` if `raw` is 0 or exceeds [`Self::MAX`].
    pub fn new(raw: u32) -> Option<Self> {
        if raw >= 1 && raw <= u32::from(Self::MAX) {
            Some(Self(raw as u8))
        } else {
            None
        }
    }

    /// The distance as an integer (1..=127).
    #[inline]
    pub fn get(self) -> u8 {
        self.0
    }
}

impl fmt::Display for StoreDistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// How a load's bytes relate to the prior store it depends on (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BypassClass {
    /// Same address, same size: the value can be bypassed verbatim.
    DirectBypass,
    /// Same address, load smaller than the store: bypass with truncation.
    NoOffset,
    /// Load fully contained in the store but at a non-zero offset: bypass
    /// would require shifting; MASCOT's default microarchitecture does not
    /// bypass these (§IV-E).
    Offset,
    /// Partial overlap: a memory dependence with no bypass opportunity.
    MdpOnly,
}

impl BypassClass {
    /// Whether this dependence can be bypassed on a microarchitecture that
    /// supports same-address bypassing (the paper's default: `DirectBypass`
    /// and `NoOffset`, §IV-E).
    #[inline]
    pub fn is_bypassable(self) -> bool {
        matches!(self, BypassClass::DirectBypass | BypassClass::NoOffset)
    }
}

/// The three-way prediction MASCOT makes for each load (Fig. 5, left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemDepPrediction {
    /// The load does not depend on any in-flight prior store; issue as soon
    /// as its address is ready.
    NoDependence,
    /// The load depends on the store `distance` stores back; wait for that
    /// store to resolve, then forward (MDP).
    Dependence {
        /// Program-order distance to the predicted source store.
        distance: StoreDistance,
    },
    /// The load depends on the store `distance` stores back and the value
    /// can be obtained through speculative memory bypassing (SMB).
    Bypass {
        /// Program-order distance to the predicted source store.
        distance: StoreDistance,
    },
}

impl MemDepPrediction {
    /// The predicted store distance, if a dependence was predicted.
    #[inline]
    pub fn distance(self) -> Option<StoreDistance> {
        match self {
            MemDepPrediction::NoDependence => None,
            MemDepPrediction::Dependence { distance } | MemDepPrediction::Bypass { distance } => {
                Some(distance)
            }
        }
    }

    /// True when a dependence (MDP or SMB) was predicted.
    #[inline]
    pub fn is_dependence(self) -> bool {
        self.distance().is_some()
    }

    /// True when speculative memory bypassing was predicted.
    #[inline]
    pub fn is_bypass(self) -> bool {
        matches!(self, MemDepPrediction::Bypass { .. })
    }

    /// Demotes a bypass prediction to a plain dependence (used by the
    /// MDP-only configurations of Figs. 9 and 11).
    #[inline]
    pub fn demote_bypass(self) -> Self {
        match self {
            MemDepPrediction::Bypass { distance } => MemDepPrediction::Dependence { distance },
            other => other,
        }
    }
}

/// The dependence a load was *observed* to have when it executed: the
/// youngest older in-flight store whose bytes overlap the load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedDependence {
    /// Program-order store distance to the conflicting store.
    pub distance: StoreDistance,
    /// Size/alignment relation between the load and the store.
    pub class: BypassClass,
    /// PC of the conflicting store (used by Store Sets training).
    pub store_pc: u64,
    /// Number of branches between the store and the load in program order
    /// (used by PHAST's allocation policy).
    pub branches_between: u32,
}

/// The commit-time training record for one load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LoadOutcome {
    /// The observed in-flight dependence, or `None` if the load had no
    /// conflict with any in-flight store.
    pub dependence: Option<ObservedDependence>,
}

impl LoadOutcome {
    /// An outcome with no observed dependence.
    pub fn independent() -> Self {
        Self { dependence: None }
    }

    /// An outcome with the given observed dependence.
    pub fn dependent(dep: ObservedDependence) -> Self {
        Self {
            dependence: Some(dep),
        }
    }

    /// True when an in-flight dependence was observed.
    #[inline]
    pub fn is_dependent(&self) -> bool {
        self.dependence.is_some()
    }
}

/// Static, trace-level ground truth about a load's memory dependence,
/// supplied to oracle ("perfect") predictors only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Program-order distance to the youngest prior store writing any byte
    /// the load reads, if within the encodable window.
    pub distance: StoreDistance,
    /// Size/alignment relation of that pair.
    pub class: BypassClass,
}

/// One prediction request of a batch (see
/// [`MemDepPredictor::predict_batch`]). Mirrors the arguments of
/// [`MemDepPredictor::predict`] exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictReq {
    /// Load PC.
    pub pc: u64,
    /// Count of stores dispatched before this load.
    pub store_seq: u64,
    /// Trace-level ground truth, read only by the §VI oracles.
    pub oracle: Option<GroundTruth>,
}

/// One training record of a batch (see [`MemDepPredictor::train_batch`]).
/// Mirrors the arguments of [`MemDepPredictor::train`] exactly.
#[derive(Debug)]
pub struct TrainReq<M> {
    /// Load PC.
    pub pc: u64,
    /// The metadata returned by the matching predict call.
    pub meta: M,
    /// The prediction that was acted upon.
    pub predicted: MemDepPrediction,
    /// The observed commit-time outcome.
    pub outcome: LoadOutcome,
}

/// A memory-dependence / bypassing predictor as seen by the simulator.
///
/// One `predict` call is made per dynamic load (at decode, per Fig. 4) and
/// the returned [`Self::Meta`] is carried in the load's ROB entry and handed
/// back verbatim to [`Self::train`] at commit — this is how hardware TAGE
/// predictors carry their lookup indices in the instruction's payload, and
/// it frees implementations from having to reconstruct speculative history.
///
/// `oracle` carries the trace's static ground truth and **must be ignored**
/// by every realistic predictor; only the perfect-MDP/perfect-SMB oracles of
/// §VI read it.
pub trait MemDepPredictor {
    /// Opaque per-prediction metadata threaded from `predict` to `train`.
    type Meta: fmt::Debug;

    /// Short human-readable identifier (e.g. `"mascot"`, `"phast"`).
    fn name(&self) -> &'static str;

    /// Predicts for the load at `pc`. `store_seq` is the count of stores
    /// dispatched so far (used by sequence-based predictors such as Store
    /// Sets to convert an absolute store id into a distance).
    fn predict(
        &mut self,
        pc: u64,
        store_seq: u64,
        oracle: Option<&GroundTruth>,
    ) -> (MemDepPrediction, Self::Meta);

    /// Predicts for a micro-batch of loads, appending one
    /// `(prediction, meta)` pair per request — **in request order** — to
    /// `out` (which is cleared first).
    ///
    /// The contract is strict sequential equivalence: the results, metas and
    /// post-call predictor state must be identical to calling
    /// [`Self::predict`] once per request in order. The default
    /// implementation is exactly that scalar loop; predictors whose
    /// `predict` does not write table state (MASCOT) override it with a
    /// table-major sweep that probes each table once for the whole batch.
    fn predict_batch(
        &mut self,
        reqs: &[PredictReq],
        out: &mut Vec<(MemDepPrediction, Self::Meta)>,
    ) {
        out.clear();
        out.reserve(reqs.len());
        for req in reqs {
            out.push(self.predict(req.pc, req.store_seq, req.oracle.as_ref()));
        }
    }

    /// Trains the predictor at commit with the observed outcome.
    fn train(
        &mut self,
        pc: u64,
        meta: Self::Meta,
        predicted: MemDepPrediction,
        outcome: &LoadOutcome,
    );

    /// Trains on a micro-batch of commit records, draining `reqs`.
    ///
    /// Same sequential-equivalence contract as [`Self::predict_batch`]:
    /// behaviour must match calling [`Self::train`] once per record in
    /// order (training mutates table state, so the records are applied
    /// strictly in sequence). The default implementation is that loop;
    /// `reqs` is drained rather than consumed so callers can recycle the
    /// buffer allocation.
    fn train_batch(&mut self, reqs: &mut Vec<TrainReq<Self::Meta>>) {
        for req in reqs.drain(..) {
            self.train(req.pc, req.meta, req.predicted, &req.outcome);
        }
    }

    /// Notifies the predictor of a committed-path branch (decode order).
    fn on_branch(&mut self, event: &BranchEvent);

    /// Restores speculative history after a pipeline squash. `recent` holds
    /// the branch events on the now-architectural path, oldest first; it is
    /// at least as long as the predictor's longest history (or the whole
    /// execution if shorter).
    fn rewind_history(&mut self, recent: &[BranchEvent]);

    /// Notifies the predictor that a store at `pc` was dispatched with
    /// sequence number `store_seq`. Default: ignored.
    fn on_store_dispatch(&mut self, _pc: u64, _store_seq: u64) {}

    /// Predicts a *store-store* ordering constraint for the store at `pc`:
    /// the distance to a prior store it must wait for. Store Sets enforces
    /// serialisation within a set this way (§V); other predictors do not
    /// constrain stores. Called before [`Self::on_store_dispatch`].
    fn predict_store_wait(&mut self, _pc: u64, _store_seq: u64) -> Option<StoreDistance> {
        None
    }

    /// Whether the predictor's bypass datapath can shift offset loads
    /// (NoSQ supports partial-word bypassing; MASCOT's default
    /// microarchitecture bypasses only same-address pairs, §IV-E).
    fn bypass_supports_offset(&self) -> bool {
        false
    }

    /// Total storage in bits (tables only, as in Table II).
    fn storage_bits(&self) -> u64;

    /// Storage in KiB, as reported in Table II.
    fn storage_kib(&self) -> f64 {
        self.storage_bits() as f64 / 8192.0
    }

    /// Ends a tuning period (§IV-F). Default: no-op.
    fn end_tuning_period(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_distance_bounds() {
        assert!(StoreDistance::new(1).is_some());
        assert!(StoreDistance::new(127).is_some());
        assert!(StoreDistance::new(0).is_none());
        assert!(StoreDistance::new(128).is_none());
        assert_eq!(StoreDistance::new(42).unwrap().to_string(), "42");
    }

    #[test]
    fn bypass_class_bypassability() {
        assert!(BypassClass::DirectBypass.is_bypassable());
        assert!(BypassClass::NoOffset.is_bypassable());
        assert!(!BypassClass::Offset.is_bypassable());
        assert!(!BypassClass::MdpOnly.is_bypassable());
    }

    #[test]
    fn prediction_accessors() {
        let d = StoreDistance::new(5).unwrap();
        let none = MemDepPrediction::NoDependence;
        let dep = MemDepPrediction::Dependence { distance: d };
        let byp = MemDepPrediction::Bypass { distance: d };
        assert_eq!(none.distance(), None);
        assert_eq!(dep.distance(), Some(d));
        assert_eq!(byp.distance(), Some(d));
        assert!(!none.is_dependence());
        assert!(dep.is_dependence() && !dep.is_bypass());
        assert!(byp.is_dependence() && byp.is_bypass());
    }

    #[test]
    fn demote_bypass_maps_only_bypass() {
        let d = StoreDistance::new(2).unwrap();
        assert_eq!(
            MemDepPrediction::Bypass { distance: d }.demote_bypass(),
            MemDepPrediction::Dependence { distance: d }
        );
        assert_eq!(
            MemDepPrediction::NoDependence.demote_bypass(),
            MemDepPrediction::NoDependence
        );
        assert_eq!(
            MemDepPrediction::Dependence { distance: d }.demote_bypass(),
            MemDepPrediction::Dependence { distance: d }
        );
    }

    #[test]
    fn outcome_constructors() {
        assert!(!LoadOutcome::independent().is_dependent());
        let dep = ObservedDependence {
            distance: StoreDistance::new(1).unwrap(),
            class: BypassClass::DirectBypass,
            store_pc: 0x40,
            branches_between: 0,
        };
        assert!(LoadOutcome::dependent(dep).is_dependent());
    }
}
