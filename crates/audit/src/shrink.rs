//! Shrink-to-repro: delta-debugs a failing trace to a minimal one.
//!
//! The failure oracle is any `FnMut(&Trace) -> bool` ("does this trace
//! still fail?"), typically built from [`crate::runner::run_audited`]. The
//! shrinker never hands the oracle a malformed trace: after every cut the
//! ground-truth dependence annotations are recomputed from the surviving
//! addresses ([`renormalize`]), mirroring the classification the workload
//! generator used, so `Trace::validate` holds by construction.
//!
//! Strategy: binary-search the shortest failing prefix first (a panic has a
//! program-order trigger point, so prefix failure is monotone in practice;
//! every accepted candidate is re-tested, never assumed), then classic
//! ddmin chunk removal with halving chunk sizes down to single micro-ops.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use mascot_sim::uop::TraceDep;
use mascot_sim::{codec, Trace, Uop, UopKind};
use mascot::prediction::BypassClass;

/// Recomputes every load's ground-truth [`TraceDep`] from the surviving
/// stores, using the same per-byte last-writer classification as
/// `mascot_workloads`' generator. Other micro-ops pass through unchanged.
/// A fresh generated trace renormalizes to itself.
pub fn renormalize(trace: &Trace) -> Trace {
    struct StoreRec {
        addr: u64,
        size: u8,
        pc: u64,
        branches_at: u64,
    }
    let mut byte_writer: HashMap<u64, u32> = HashMap::new();
    let mut stores: Vec<StoreRec> = Vec::new();
    let mut branch_count = 0u64;
    let mut uops = Vec::with_capacity(trace.len());
    for &u in &trace.uops {
        let mut u = u;
        match u.kind {
            UopKind::Alu => {}
            UopKind::Branch { .. } => branch_count += 1,
            UopKind::Store { addr, size } => {
                let number = stores.len() as u32;
                stores.push(StoreRec {
                    addr,
                    size,
                    pc: u.pc,
                    branches_at: branch_count,
                });
                for b in addr..addr + u64::from(size) {
                    byte_writer.insert(b, number);
                }
            }
            UopKind::Load { addr, size, .. } => {
                let writers: Vec<Option<u32>> = (addr..addr + u64::from(size))
                    .map(|b| byte_writer.get(&b).copied())
                    .collect();
                let dep = writers.iter().flatten().copied().max().map(|youngest| {
                    let s = &stores[youngest as usize];
                    let covers_all = writers.iter().all(|w| *w == Some(youngest));
                    let class = if covers_all {
                        if s.addr == addr && s.size == size {
                            BypassClass::DirectBypass
                        } else if s.addr == addr {
                            BypassClass::NoOffset
                        } else {
                            BypassClass::Offset
                        }
                    } else {
                        BypassClass::MdpOnly
                    };
                    TraceDep {
                        distance: stores.len() as u32 - youngest,
                        class,
                        store_pc: s.pc,
                        branches_between: (branch_count - s.branches_at) as u32,
                    }
                });
                u.kind = UopKind::Load { addr, size, dep };
            }
        }
        uops.push(u);
    }
    let out = Trace::new(trace.name.clone(), uops);
    debug_assert_eq!(out.validate(), Ok(()));
    out
}

fn rebuild(name: &str, uops: Vec<Uop>) -> Trace {
    renormalize(&Trace::new(name.to_string(), uops))
}

/// Shrinks `trace` to a (locally) minimal trace on which `fails` still
/// returns true. `fails(trace)` must hold on entry; panics otherwise. The
/// oracle only ever sees renormalized, `validate`-clean traces.
pub fn shrink(trace: &Trace, fails: &mut dyn FnMut(&Trace) -> bool) -> Trace {
    assert!(
        fails(trace),
        "shrink requires a failing input trace ({:?})",
        trace.name
    );

    // Phase 1: shortest failing prefix, by binary search.
    let mut lo = 1usize; // shortest length not yet known to pass
    let mut hi = trace.len(); // known-failing prefix length
    let mut current = trace.clone();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let candidate = rebuild(&trace.name, trace.uops[..mid].to_vec());
        if fails(&candidate) {
            hi = mid;
            current = candidate;
        } else {
            lo = mid + 1;
        }
    }

    // Phase 2: ddmin — remove chunks of halving size until single-uop
    // removal reaches a fixed point.
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.len() {
            let end = (i + chunk).min(current.len());
            if end - i == current.len() {
                break; // never offer the empty trace
            }
            let mut uops = Vec::with_capacity(current.len() - (end - i));
            uops.extend_from_slice(&current.uops[..i]);
            uops.extend_from_slice(&current.uops[end..]);
            let candidate = rebuild(&trace.name, uops);
            if fails(&candidate) {
                current = candidate;
                removed_any = true;
                // The same index now addresses the next chunk.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    current
}

/// Writes `trace` under `dir` as `repro-<label>.mtrc` and returns the path
/// together with the one-line command that reproduces the failure.
pub fn write_repro(trace: &Trace, dir: &Path, label: &str) -> io::Result<(PathBuf, String)> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("repro-{label}.mtrc"));
    let file = std::fs::File::create(&path)?;
    codec::save(trace, io::BufWriter::new(file))?;
    let command = format!(
        "cargo run --release -p mascot-audit --bin audit-soak -- --repro {}",
        path.display()
    );
    Ok((path, command))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot_workloads::{generate, spec};

    /// The generator's own annotations are a fixed point of renormalize —
    /// the two classifiers agree on every load.
    #[test]
    fn renormalize_is_identity_on_generated_traces() {
        for name in ["perlbench2", "exchange2", "bwaves"] {
            let profile = spec::profile(name).expect("known profile");
            let trace = generate(&profile, 5, 6_000);
            let renorm = renormalize(&trace);
            assert_eq!(trace.uops, renorm.uops, "{name}");
        }
    }

    /// Cutting the source store out of a dependent pair re-annotates the
    /// load (here: to an older store at a greater distance).
    #[test]
    fn renormalize_reanchors_deps_after_a_cut() {
        let mut uops = vec![
            Uop::store(0x100, 0x1000, 8, None, None),
            Uop::store(0x110, 0x1000, 8, None, None),
            Uop::load(0x120, 0x1000, 8, None, 1, None),
        ];
        let full = renormalize(&Trace::new("cut", uops.clone()));
        let dep = match full.uops[2].kind {
            UopKind::Load { dep, .. } => dep.expect("dependent"),
            _ => unreachable!(),
        };
        assert_eq!(dep.distance, 1);
        assert_eq!(dep.store_pc, 0x110);

        uops.remove(1); // drop the youngest writer
        let cut = renormalize(&Trace::new("cut", uops));
        let dep = match cut.uops[1].kind {
            UopKind::Load { dep, .. } => dep.expect("still dependent"),
            _ => unreachable!(),
        };
        assert_eq!(dep.distance, 1, "re-anchored to the surviving store");
        assert_eq!(dep.store_pc, 0x100);
        assert_eq!(cut.validate(), Ok(()));
    }

    /// Shrinking against a content oracle finds the minimal witness.
    #[test]
    fn shrink_finds_a_minimal_witness() {
        let profile = spec::profile("perlbench2").expect("known profile");
        let trace = generate(&profile, 9, 4_000);
        // "Fails" iff it still contains a store and a load to some shared
        // address (a dependent pair anywhere in the trace).
        let mut calls = 0u32;
        let mut fails = |t: &Trace| {
            calls += 1;
            t.uops.iter().any(|u| {
                matches!(u.kind, UopKind::Load { dep: Some(_), .. })
            })
        };
        let minimal = shrink(&trace, &mut fails);
        assert_eq!(minimal.validate(), Ok(()));
        // Minimal witness: one store + one dependent load.
        assert!(
            minimal.len() == 2,
            "expected a 2-uop witness, got {} uops",
            minimal.len()
        );
        assert!(calls > 0);
    }
}
