//! Audited simulation driver: runs the engine with its cycle auditor on and
//! converts panics into values.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use mascot_predictors::{AnyPredictor, PredictorKind};
use mascot_sim::{CoreConfig, Fault, SimStats, Simulator, Trace};

/// An audit (or watchdog) failure observed while simulating a trace: the
/// payload of the panic the engine raised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFailure {
    /// The engine's panic message (an `audit violation [...]` description,
    /// a hard assert, or the no-forward-progress watchdog).
    pub message: String,
}

impl std::fmt::Display for AuditFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for AuditFailure {}

/// Depth of nested [`quiet_panics`] scopes; while non-zero the process
/// panic hook swallows panic output (the shrinker provokes hundreds of
/// expected panics and their reports would drown the useful output).
static QUIET: AtomicUsize = AtomicUsize::new(0);

/// Runs `f` with panic reports suppressed. Nesting is fine; panics from
/// other threads during the window are suppressed too, so keep the scope
/// tight (shrink loops, soak probes).
pub fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if QUIET.load(Ordering::Relaxed) == 0 {
                default(info);
            }
        }));
    });
    QUIET.fetch_add(1, Ordering::Relaxed);
    let out = f();
    QUIET.fetch_sub(1, Ordering::Relaxed);
    out
}

fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// Runs `trace` through `pred` with the cycle auditor enabled, catching any
/// engine panic as an [`AuditFailure`]. On failure the predictor is left in
/// whatever state the partial run produced — build a fresh one per attempt.
pub fn run_audited_with(
    trace: &Trace,
    cfg: &CoreConfig,
    pred: &mut AnyPredictor,
    fault: Option<Fault>,
) -> Result<SimStats, AuditFailure> {
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut sim = Simulator::new(trace, cfg, pred).with_audit();
        if let Some(f) = fault {
            sim = sim.with_fault(f);
        }
        sim.run()
    }));
    outcome.map_err(|payload| AuditFailure {
        message: panic_payload_message(payload),
    })
}

/// [`run_audited_with`] over a fresh predictor of the given kind.
pub fn run_audited(
    trace: &Trace,
    cfg: &CoreConfig,
    kind: PredictorKind,
    fault: Option<Fault>,
) -> Result<SimStats, AuditFailure> {
    let mut pred = kind.build();
    run_audited_with(trace, cfg, &mut pred, fault)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot_workloads::{generate, spec};

    #[test]
    fn clean_trace_passes_the_audit() {
        let profile = spec::profile("perlbench2").expect("known profile");
        let trace = generate(&profile, 7, 4_000);
        let stats = run_audited(&trace, &CoreConfig::golden_cove(), PredictorKind::Mascot, None)
            .expect("audited run is clean");
        assert_eq!(stats.committed_uops, trace.len() as u64);
    }

    #[test]
    fn injected_fault_surfaces_as_a_failure_value() {
        // Slow store data + same-address loads: untrained predictors let the
        // loads issue stale, so squashes (and violation-table churn) are
        // guaranteed within the first few hundred micro-ops.
        let mut b = mascot_workloads::TraceBuilder::new();
        for i in 0..400u64 {
            b.alu(0x400, [None, None], Some(1), 12);
            b.store(0x410, 0x1000 + i * 64, 8, 1);
            b.load(0x420, 0x1000 + i * 64, 8, 2, None);
        }
        let trace = b.build("squashy");
        let err = quiet_panics(|| {
            run_audited(
                &trace,
                &CoreConfig::golden_cove(),
                PredictorKind::NoSq,
                Some(Fault::SkipViolationPurge),
            )
        })
        .expect_err("fault must be caught");
        assert!(err.message.contains("audit violation"), "{}", err.message);
    }
}
