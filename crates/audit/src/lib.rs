//! # mascot-audit — cross-layer correctness tooling
//!
//! Every paper-facing number in this repository rests on the cycle-level
//! engine in `mascot-sim` and the predictors behind it. This crate is the
//! validation layer that keeps those numbers trustworthy (DESIGN.md §8):
//!
//! * [`runner`] — drives [`mascot_sim::Simulator`] with its cycle auditor
//!   enabled and converts audit panics (and watchdog hangs) into values, so
//!   soaks and shrink loops can treat "the engine is broken on this trace"
//!   as an ordinary result.
//! * [`differential`] — replays the same trace twice and diffs the
//!   statistics and a behavioral fingerprint of the final predictor state
//!   (catching nondeterminism), and walks `MascotMdpOnly` against full
//!   MASCOT in lockstep, where every prediction must agree modulo bypass
//!   demotion.
//! * [`shrink`] — delta-debugs a failing trace down to a minimal repro,
//!   renormalizing ground-truth dependence annotations after every cut so
//!   each candidate is a well-formed trace, and writes the result as an
//!   `.mtrc` artifact with a one-line reproduction command.
//!
//! The `audit-soak` binary wires the three together over every workload
//! profile (seeded, offline); `scripts/check.sh` runs a bounded soak on
//! every change.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod differential;
pub mod runner;
pub mod shrink;

pub use differential::{
    check_batch_equivalence, check_determinism, check_mdp_agreement, check_sampled_determinism,
    check_snapshot_roundtrip, fingerprint, DiffError,
};
pub use runner::{run_audited, run_audited_with, AuditFailure};
pub use shrink::{renormalize, shrink, write_repro};
