//! Differential checks: same-input determinism, MDP-only agreement, and
//! batch/scalar predictor equivalence.
//!
//! Three properties the rest of the repository silently relies on:
//!
//! 1. **Determinism** — a trace simulated twice under the same predictor
//!    kind must produce bit-identical [`SimStats`] and leave the predictor
//!    in the same state. The engine has no randomness; any divergence means
//!    iteration-order or uninitialised-state leakage.
//! 2. **Bypass demotion** — [`mascot::MascotMdpOnly`] is full MASCOT with
//!    the bypass bit masked off, and MASCOT's training is invariant under
//!    that demotion (`Dependence` and `Bypass` share a training arm). Walked
//!    in lockstep over the same lookup/train stream, the two must therefore
//!    agree on every prediction modulo [`MemDepPrediction::demote_bypass`].
//! 3. **Batch equivalence** — `predict_batch`/`train_batch` promise strict
//!    sequential equivalence with per-request scalar calls; the sim issue
//!    loop and the serve shard drain both lean on it. A scalar and a
//!    batched instance driven over the same seeded stream must agree on
//!    every prediction, every piece of metadata, and the final state.
//!
//! Predictor state is compared behaviorally: serde in this build is a
//! vendored stub, so instead of serialising tables we clone the predictor
//! and probe it with every distinct load PC in the trace ("what would you
//! predict now?"). Two predictors that answer every probe identically are
//! interchangeable for any continuation of the run.

use mascot::config::MascotConfig;
use mascot::history::{BranchEvent, BranchKind};
use mascot::mdp_only::MascotMdpOnly;
use mascot::predictor::Mascot;
use mascot::prediction::{
    BypassClass, GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction,
    ObservedDependence, PredictReq, StoreDistance, TrainReq,
};
use mascot_predictors::{AnyMeta, AnyPredictor, PredictorKind};
use mascot_sampling::{run_sampled, SampledOutcome, SamplingConfig};
use mascot_sim::{CoreConfig, SimStats, Simulator, Trace, TraceDep, UopKind};

/// A divergence found by a differential check.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffError {
    /// Two runs of the same configuration produced different statistics.
    StatsDiverged {
        /// Statistics of the first run.
        first: Box<SimStats>,
        /// Statistics of the second run.
        second: Box<SimStats>,
    },
    /// Two runs left the predictor answering probes differently.
    StateDiverged {
        /// Probe PC whose answer differs.
        pc: u64,
        /// First run's answer.
        first: MemDepPrediction,
        /// Second run's answer.
        second: MemDepPrediction,
    },
    /// MDP-only disagreed with demoted full MASCOT on a load.
    DemotionDisagreed {
        /// Trace index of the load.
        trace_idx: usize,
        /// Load PC.
        pc: u64,
        /// Full MASCOT's prediction.
        full: MemDepPrediction,
        /// MDP-only's prediction (expected `full.demote_bypass()`).
        mdp_only: MemDepPrediction,
    },
    /// The batched predictor API diverged from sequential scalar calls.
    BatchDiverged {
        /// Predictor kind under test.
        kind: PredictorKind,
        /// Request index within the stream (or stream length for the final
        /// state fingerprint).
        step: usize,
        /// Load PC of the diverging request or probe.
        pc: u64,
        /// What diverged (prediction, metadata, or final state).
        detail: String,
    },
    /// Snapshot → restore failed to reproduce the predictor exactly.
    SnapshotDiverged {
        /// Predictor kind under test.
        kind: PredictorKind,
        /// Which stage of the round-trip diverged or failed.
        detail: String,
    },
    /// Two sampled runs of the same configuration diverged.
    SampledDiverged {
        /// Predictor kind under test.
        kind: PredictorKind,
        /// Which part of the sampled pipeline diverged (plan, projection).
        detail: String,
    },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::StatsDiverged { first, second } => write!(
                f,
                "nondeterministic statistics: first {first:?} vs second {second:?}"
            ),
            DiffError::StateDiverged { pc, first, second } => write!(
                f,
                "nondeterministic predictor state: probe pc {pc:#x} answers {first:?} vs {second:?}"
            ),
            DiffError::DemotionDisagreed {
                trace_idx,
                pc,
                full,
                mdp_only,
            } => write!(
                f,
                "mdp-only diverged from demoted MASCOT at uop {trace_idx} (pc {pc:#x}): \
                 full {full:?}, mdp-only {mdp_only:?}"
            ),
            DiffError::BatchDiverged {
                kind,
                step,
                pc,
                detail,
            } => write!(
                f,
                "batched {} diverged from scalar at request {step} (pc {pc:#x}): {detail}",
                kind.label()
            ),
            DiffError::SnapshotDiverged { kind, detail } => write!(
                f,
                "snapshot round-trip for {} diverged: {detail}",
                kind.label()
            ),
            DiffError::SampledDiverged { kind, detail } => write!(
                f,
                "sampled run for {} diverged between repetitions: {detail}",
                kind.label()
            ),
        }
    }
}

impl std::error::Error for DiffError {}

/// Every distinct load PC of `trace`, in first-appearance order — the probe
/// set for behavioral state comparison.
fn probe_pcs(trace: &Trace) -> Vec<u64> {
    let mut seen = std::collections::BTreeSet::new();
    let mut pcs = Vec::new();
    for u in &trace.uops {
        if matches!(u.kind, UopKind::Load { .. }) && seen.insert(u.pc) {
            pcs.push(u.pc);
        }
    }
    pcs
}

/// Asks a clone of `pred` for its prediction at every probe PC. Cloning
/// keeps the probe itself from perturbing the compared state. Two
/// predictors with equal fingerprints over the same probe set are
/// behaviorally interchangeable for any continuation of the run.
pub fn fingerprint(pred: &AnyPredictor, pcs: &[u64]) -> Vec<MemDepPrediction> {
    let mut probe = pred.clone();
    pcs.iter()
        .map(|&pc| probe.predict(pc, u64::MAX / 2, None).0)
        .collect()
}

/// Simulates `trace` twice under fresh predictors of `kind` and diffs both
/// the statistics and the final predictor state. Returns the (identical)
/// statistics on success.
pub fn check_determinism(
    trace: &Trace,
    cfg: &CoreConfig,
    kind: PredictorKind,
) -> Result<SimStats, DiffError> {
    let run = |kind: PredictorKind| {
        let mut pred = kind.build();
        let stats = Simulator::new(trace, cfg, &mut pred).run();
        (stats, pred)
    };
    let (s1, p1) = run(kind);
    let (s2, p2) = run(kind);
    if s1 != s2 {
        return Err(DiffError::StatsDiverged {
            first: Box::new(s1),
            second: Box::new(s2),
        });
    }
    let pcs = probe_pcs(trace);
    let (f1, f2) = (fingerprint(&p1, &pcs), fingerprint(&p2, &pcs));
    for (i, (a, b)) in f1.iter().zip(&f2).enumerate() {
        if a != b {
            return Err(DiffError::StateDiverged {
                pc: pcs[i],
                first: *a,
                second: *b,
            });
        }
    }
    Ok(s1)
}

/// The observed training outcome for a trace-annotated dependence, exactly
/// as the engine reports it at commit for an in-window store.
fn outcome_of(dep: Option<TraceDep>) -> LoadOutcome {
    match dep.and_then(|d| StoreDistance::new(d.distance).map(|dist| (d, dist))) {
        Some((d, dist)) => LoadOutcome::dependent(ObservedDependence {
            distance: dist,
            class: d.class,
            store_pc: d.store_pc,
            branches_between: d.branches_between,
        }),
        None => LoadOutcome::independent(),
    }
}

/// Walks `trace` through a full MASCOT and a [`MascotMdpOnly`] in lockstep
/// (same branch events, store dispatches, lookups and training outcomes)
/// and verifies that every MDP-only prediction equals the full predictor's
/// demoted one, including a final-state fingerprint over all load PCs.
pub fn check_mdp_agreement(trace: &Trace) -> Result<(), DiffError> {
    let mut full = Mascot::new(MascotConfig::default()).expect("valid default config");
    let mut mdp = MascotMdpOnly::new(MascotConfig::default()).expect("valid default config");
    let mut store_count = 0u64;
    for (trace_idx, u) in trace.uops.iter().enumerate() {
        match u.kind {
            UopKind::Alu => {}
            UopKind::Branch { kind, taken, target } => {
                let ev = BranchEvent {
                    pc: u.pc,
                    kind,
                    taken,
                    target,
                };
                full.on_branch(&ev);
                mdp.on_branch(&ev);
            }
            UopKind::Store { .. } => {
                full.on_store_dispatch(u.pc, store_count);
                mdp.on_store_dispatch(u.pc, store_count);
                store_count += 1;
            }
            UopKind::Load { dep, .. } => {
                let oracle = dep.and_then(|d| {
                    Some(GroundTruth {
                        distance: StoreDistance::new(d.distance)?,
                        class: d.class,
                    })
                });
                let (fp, fmeta) = full.predict(u.pc, store_count, oracle.as_ref());
                let (mp, mmeta) = mdp.predict(u.pc, store_count, oracle.as_ref());
                if mp != fp.demote_bypass() {
                    return Err(DiffError::DemotionDisagreed {
                        trace_idx,
                        pc: u.pc,
                        full: fp,
                        mdp_only: mp,
                    });
                }
                let out = outcome_of(dep);
                full.train(u.pc, fmeta, fp, &out);
                mdp.train(u.pc, mmeta, mp, &out);
            }
        }
    }
    // Final state: after identical histories the two must still answer every
    // probe identically (modulo demotion). One clone each for the whole
    // probe sweep — the probes themselves may perturb the clones, but both
    // clones see the identical probe stream, so agreement is preserved.
    let mut full = full.clone();
    let mut mdp = mdp.clone();
    for pc in probe_pcs(trace) {
        let fp = full.predict(pc, u64::MAX / 2, None).0;
        let mp = mdp.predict(pc, u64::MAX / 2, None).0;
        if mp != fp.demote_bypass() {
            return Err(DiffError::DemotionDisagreed {
                trace_idx: trace.len(),
                pc,
                full: fp,
                mdp_only: mp,
            });
        }
    }
    Ok(())
}

/// Drives two fresh instances of `kind` over one seeded request stream —
/// one through scalar `predict`/`train` calls, one through
/// `predict_batch`/`train_batch` in randomly sized chunks — and verifies
/// the batch API's sequential-equivalence contract: identical predictions,
/// identical metadata, and an identical final-state fingerprint.
///
/// The PC pool is deliberately tiny so chunks repeatedly contain the same
/// PC (within-batch aliasing, the contract's hardest case), and branch /
/// store-dispatch events are interleaved between chunks so history-hashed
/// table indices keep moving.
pub fn check_batch_equivalence(
    kind: PredictorKind,
    seed: u64,
    steps: usize,
) -> Result<(), DiffError> {
    let mut scalar = kind.build();
    let mut batched = kind.build();

    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let classes = [
        BypassClass::DirectBypass,
        BypassClass::NoOffset,
        BypassClass::Offset,
        BypassClass::MdpOnly,
    ];
    let pcs: Vec<u64> = (0..24u64).map(|i| 0x4000 + i * 4).collect();

    let mut store_seq = 0u64;
    let mut reqs: Vec<PredictReq> = Vec::new();
    let mut batch_out: Vec<(MemDepPrediction, AnyMeta)> = Vec::new();
    let mut train_reqs: Vec<TrainReq<AnyMeta>> = Vec::new();
    let mut step = 0usize;
    while step < steps {
        let chunk = 1 + (rng() % 13) as usize;
        reqs.clear();
        for _ in 0..chunk {
            let pc = pcs[(rng() as usize) % pcs.len()];
            let oracle = (rng() % 4 == 0)
                .then(|| StoreDistance::new(1 + (rng() % 7) as u32))
                .flatten()
                .map(|distance| GroundTruth {
                    distance,
                    class: classes[(rng() as usize) % classes.len()],
                });
            reqs.push(PredictReq {
                pc,
                store_seq,
                oracle,
            });
        }

        let scalar_out: Vec<(MemDepPrediction, AnyMeta)> = reqs
            .iter()
            .map(|r| scalar.predict(r.pc, r.store_seq, r.oracle.as_ref()))
            .collect();
        batched.predict_batch(&reqs, &mut batch_out);
        if batch_out.len() != reqs.len() {
            return Err(DiffError::BatchDiverged {
                kind,
                step,
                pc: reqs[0].pc,
                detail: format!(
                    "{} requests produced {} outputs",
                    reqs.len(),
                    batch_out.len()
                ),
            });
        }
        for (i, ((sp, sm), (bp, bm))) in scalar_out.iter().zip(&batch_out).enumerate() {
            if bp != sp {
                return Err(DiffError::BatchDiverged {
                    kind,
                    step: step + i,
                    pc: reqs[i].pc,
                    detail: format!("prediction {bp:?} != scalar {sp:?}"),
                });
            }
            if bm != sm {
                return Err(DiffError::BatchDiverged {
                    kind,
                    step: step + i,
                    pc: reqs[i].pc,
                    detail: format!("metadata mismatch (predictions agree on {sp:?})"),
                });
            }
        }

        // Train both on identical outcomes: per-call for the scalar
        // instance, one `train_batch` for the batched one.
        train_reqs.clear();
        for (i, r) in reqs.iter().enumerate() {
            let outcome = if rng() % 2 == 0 {
                LoadOutcome::dependent(ObservedDependence {
                    distance: StoreDistance::new(1 + (rng() % 90) as u32)
                        .expect("non-zero distance"),
                    class: classes[(rng() as usize) % classes.len()],
                    store_pc: 0x9000 + (rng() % 16) * 8,
                    branches_between: (rng() % 4) as u32,
                })
            } else {
                LoadOutcome::independent()
            };
            let (sp, sm) = scalar_out[i];
            scalar.train(r.pc, sm, sp, &outcome);
            let (bp, bm) = batch_out[i];
            train_reqs.push(TrainReq {
                pc: r.pc,
                meta: bm,
                predicted: bp,
                outcome,
            });
        }
        batched.train_batch(&mut train_reqs);

        // Interleave shared predictor-state events between chunks.
        if rng() % 3 == 0 {
            let ev = BranchEvent {
                pc: 0x100 + (rng() % 32) * 4,
                kind: BranchKind::Conditional,
                taken: rng() % 2 == 0,
                target: 0x800,
            };
            scalar.on_branch(&ev);
            batched.on_branch(&ev);
        }
        if rng() % 2 == 0 {
            let spc = 0x9000 + (rng() % 16) * 8;
            scalar.on_store_dispatch(spc, store_seq);
            batched.on_store_dispatch(spc, store_seq);
            store_seq += 1;
        }
        step += chunk;
    }

    let (f1, f2) = (fingerprint(&scalar, &pcs), fingerprint(&batched, &pcs));
    for (i, (a, b)) in f1.iter().zip(&f2).enumerate() {
        if a != b {
            return Err(DiffError::BatchDiverged {
                kind,
                step: steps,
                pc: pcs[i],
                detail: format!("final state: scalar answers {a:?}, batched {b:?}"),
            });
        }
    }
    Ok(())
}

/// Drives `pred` through `steps` seeded requests (interleaved branches,
/// store dispatches, predicts and trains) — the shared traffic generator
/// for the snapshot round-trip check. Deterministic in `(seed, steps)`, so
/// two predictors driven with the same arguments see identical streams.
fn drive_traffic(pred: &mut AnyPredictor, seed: u64, steps: usize) {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let classes = [
        BypassClass::DirectBypass,
        BypassClass::NoOffset,
        BypassClass::Offset,
        BypassClass::MdpOnly,
    ];
    let mut store_seq = 0u64;
    for _ in 0..steps {
        if rng() % 3 == 0 {
            pred.on_branch(&BranchEvent {
                pc: 0x100 + (rng() % 32) * 4,
                kind: BranchKind::Conditional,
                taken: rng() % 2 == 0,
                target: 0x800,
            });
        }
        if rng() % 2 == 0 {
            pred.on_store_dispatch(0x9000 + (rng() % 16) * 8, store_seq);
            store_seq += 1;
        }
        let pc = 0x4000 + (rng() % 24) * 4;
        let oracle = (rng() % 4 == 0)
            .then(|| StoreDistance::new(1 + (rng() % 7) as u32))
            .flatten()
            .map(|distance| GroundTruth {
                distance,
                class: classes[(rng() as usize) % classes.len()],
            });
        let (p, meta) = pred.predict(pc, store_seq, oracle.as_ref());
        let outcome = if rng() % 2 == 0 {
            LoadOutcome::dependent(ObservedDependence {
                distance: StoreDistance::new(1 + (rng() % 90) as u32).expect("non-zero distance"),
                class: classes[(rng() as usize) % classes.len()],
                store_pc: 0x9000 + (rng() % 16) * 8,
                branches_between: (rng() % 4) as u32,
            })
        } else {
            LoadOutcome::independent()
        };
        pred.train(pc, meta, p, &outcome);
    }
}

/// Proves the snapshot round-trip for `kind`: warm a predictor over
/// `steps` seeded requests, serialize it, restore a second instance from
/// the bytes, and require (a) the restored instance re-encodes to the
/// **bit-identical** payload, (b) both answer an identical behavioral
/// fingerprint over the traffic's PC pool, and (c) after `steps / 2`
/// further identical requests on each, the fingerprints and payloads still
/// agree — i.e. hidden state (history folds, LRU, decay phase) survived
/// the trip, not just the visible tables.
///
/// # Errors
///
/// [`DiffError::SnapshotDiverged`] naming the failing stage.
pub fn check_snapshot_roundtrip(
    kind: PredictorKind,
    seed: u64,
    steps: usize,
) -> Result<(), DiffError> {
    let diverged = |detail: String| DiffError::SnapshotDiverged { kind, detail };
    let pcs: Vec<u64> = (0..24u64).map(|i| 0x4000 + i * 4).collect();

    let mut original = kind.build();
    drive_traffic(&mut original, seed, steps);

    let bytes = original.snapshot_bytes();
    let mut restored = AnyPredictor::from_snapshot_bytes(&bytes)
        .map_err(|e| diverged(format!("restore failed: {e}")))?;
    if restored.snapshot_bytes() != bytes {
        return Err(diverged("restored state re-encodes differently".into()));
    }
    if restored.entry_count() != original.entry_count() {
        return Err(diverged(format!(
            "entry count {} != original {}",
            restored.entry_count(),
            original.entry_count()
        )));
    }
    let (f1, f2) = (fingerprint(&original, &pcs), fingerprint(&restored, &pcs));
    if let Some(i) = f1.iter().zip(&f2).position(|(a, b)| a != b) {
        return Err(diverged(format!(
            "probe pc {:#x} answers {:?} on original, {:?} on restored",
            pcs[i], f1[i], f2[i]
        )));
    }

    // Hidden state: continue both under identical traffic and require they
    // stay in lockstep.
    let cont = steps / 2;
    drive_traffic(&mut original, seed ^ 0xC0FF_EE00, cont);
    drive_traffic(&mut restored, seed ^ 0xC0FF_EE00, cont);
    let (f1, f2) = (fingerprint(&original, &pcs), fingerprint(&restored, &pcs));
    if let Some(i) = f1.iter().zip(&f2).position(|(a, b)| a != b) {
        return Err(diverged(format!(
            "diverged after restore: continued traffic answers {:?} vs {:?} at pc {:#x}",
            f1[i], f2[i], pcs[i]
        )));
    }
    if restored.snapshot_bytes() != original.snapshot_bytes() {
        return Err(diverged(
            "continued traffic produced different snapshot payloads".into(),
        ));
    }
    Ok(())
}

/// Sampled-simulation determinism: planning, functional warm-up and
/// projection are promised to be pure functions of (trace, kind, core,
/// config). Runs the cluster-and-project pipeline twice and requires
/// bit-identical interval assignments, representatives and projected
/// statistics — the property the bench harness's prep cache and the
/// `sampling --check` gate both lean on.
///
/// # Errors
///
/// [`DiffError::SampledDiverged`] naming the diverging stage.
pub fn check_sampled_determinism(
    trace: &Trace,
    core: &CoreConfig,
    kind: PredictorKind,
    cfg: &SamplingConfig,
) -> Result<SampledOutcome, DiffError> {
    let diverged = |detail: String| DiffError::SampledDiverged { kind, detail };
    let first = run_sampled(trace, kind, core, cfg);
    let second = run_sampled(trace, kind, core, cfg);
    if first.plan.assignments != second.plan.assignments {
        return Err(diverged(format!(
            "cluster assignments differ ({:?} vs {:?})",
            first.plan.assignments, second.plan.assignments
        )));
    }
    let reps = |o: &SampledOutcome| -> Vec<usize> {
        o.plan.clusters.iter().map(|c| c.representative).collect()
    };
    if reps(&first) != reps(&second) {
        return Err(diverged(format!(
            "representatives differ ({:?} vs {:?})",
            reps(&first),
            reps(&second)
        )));
    }
    if first.projected != second.projected {
        return Err(diverged(format!(
            "projected stats differ (ipc {} vs {})",
            first.projected.ipc(),
            second.projected.ipc()
        )));
    }
    if first != second {
        return Err(diverged("outcomes differ outside plan/projection".into()));
    }
    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot_workloads::{generate, spec};

    #[test]
    fn sampled_runs_deterministic_on_generated_workload() {
        let profile = spec::profile("exchange2").expect("known profile");
        let trace = generate(&profile, 11, 16_000);
        let cfg = SamplingConfig {
            interval_uops: 2_000,
            clusters: 3,
            warmup_uops: 500,
            ..SamplingConfig::default()
        };
        let outcome = check_sampled_determinism(
            &trace,
            &CoreConfig::golden_cove(),
            PredictorKind::Mascot,
            &cfg,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(outcome.represented_uops, trace.len() as u64);
    }

    #[test]
    fn deterministic_on_generated_workloads() {
        let profile = spec::profile("exchange2").expect("known profile");
        let trace = generate(&profile, 11, 5_000);
        for kind in [PredictorKind::Mascot, PredictorKind::StoreSets] {
            let stats = check_determinism(&trace, &CoreConfig::golden_cove(), kind)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(stats.committed_uops, trace.len() as u64);
        }
    }

    #[test]
    fn batch_matches_scalar_on_every_kind() {
        for kind in PredictorKind::ALL {
            check_batch_equivalence(kind, 0xB47C, 2_000)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    #[test]
    fn snapshot_roundtrips_on_every_kind() {
        for kind in PredictorKind::ALL {
            check_snapshot_roundtrip(kind, 0x5AAF, 1_500)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    #[test]
    fn mdp_only_agrees_with_demoted_mascot() {
        for name in ["perlbench2", "bwaves", "mcf"] {
            let profile = spec::profile(name).expect("known profile");
            let trace = generate(&profile, 3, 8_000);
            check_mdp_agreement(&trace).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
