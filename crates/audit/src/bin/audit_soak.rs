//! `audit-soak`: seeded randomized soak of the audited simulator.
//!
//! Generates every workload profile (or a filtered subset) plus the three
//! adversarial mistraining compositions, runs each trace through the
//! cycle-audited engine under several predictor kinds, checks run-to-run
//! determinism and MDP-only/MASCOT agreement, and — on any failure —
//! shrinks the trace to a minimal repro, writes it as an `.mtrc` artifact
//! and prints the one-line command that replays it.
//!
//!     audit-soak [--seed N] [--uops N] [--profiles a,b,...] [--kinds a,b]
//!                [--inject FAULT] [--out-dir DIR] [--no-diff]
//!     audit-soak --repro FILE [--kinds a,b] [--inject FAULT]
//!
//! Exit code 0 when every check passes, 1 when any failed (repros written),
//! 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use mascot_audit::runner::quiet_panics;
use mascot_audit::{
    check_batch_equivalence, check_determinism, check_mdp_agreement, check_sampled_determinism,
    check_snapshot_roundtrip, run_audited, shrink, write_repro,
};
use mascot_predictors::PredictorKind;
use mascot_sampling::SamplingConfig;
use mascot_sim::{codec, CoreConfig, Fault, Trace};
use mascot_workloads::{generate, spec};

const DEFAULT_SEED: u64 = 2025;
const DEFAULT_UOPS: usize = 20_000;

struct Args {
    seed: u64,
    uops: usize,
    profiles: Option<Vec<String>>,
    kinds: Vec<PredictorKind>,
    inject: Option<Fault>,
    out_dir: PathBuf,
    repro: Option<PathBuf>,
    no_diff: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            seed: DEFAULT_SEED,
            uops: DEFAULT_UOPS,
            profiles: None,
            kinds: vec![
                PredictorKind::Mascot,
                PredictorKind::NoSq,
                PredictorKind::StoreSets,
                PredictorKind::RandomizedMascot,
            ],
            inject: None,
            out_dir: PathBuf::from("target/audit-repros"),
            repro: None,
            no_diff: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: audit-soak [--seed N] [--uops N] [--profiles a,b,...] [--kinds a,b]\n\
         \x20                [--inject FAULT] [--out-dir DIR] [--no-diff]\n\
         \x20      audit-soak --repro FILE [--kinds a,b] [--inject FAULT]\n\
         \n\
         FAULT: skip-violation-purge | skip-ready-mask-purge | skip-served-accounting\n\
         kinds: labels from the predictor registry (e.g. mascot, nosq, store-sets)"
    );
    std::process::exit(2);
}

fn parse_fault(s: &str) -> Option<Fault> {
    match s {
        "skip-violation-purge" => Some(Fault::SkipViolationPurge),
        "skip-ready-mask-purge" => Some(Fault::SkipReadyMaskPurge),
        "skip-served-accounting" => Some(Fault::SkipServedAccounting),
        _ => None,
    }
}

fn fault_label(f: Fault) -> &'static str {
    match f {
        Fault::SkipViolationPurge => "skip-violation-purge",
        Fault::SkipReadyMaskPurge => "skip-ready-mask-purge",
        Fault::SkipServedAccounting => "skip-served-accounting",
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--uops" => args.uops = value().parse().unwrap_or_else(|_| usage()),
            "--profiles" => {
                args.profiles = Some(value().split(',').map(str::to_string).collect());
            }
            "--kinds" => {
                args.kinds = value()
                    .split(',')
                    .map(|k| k.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--inject" => args.inject = Some(parse_fault(&value()).unwrap_or_else(|| usage())),
            "--out-dir" => args.out_dir = PathBuf::from(value()),
            "--repro" => args.repro = Some(PathBuf::from(value())),
            "--no-diff" => args.no_diff = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.kinds.is_empty() {
        usage();
    }
    args
}

/// One failed check, with enough context to label its repro artifact.
struct Failure {
    label: String,
    message: String,
}

/// Runs every check for one trace; on failure shrinks and writes a repro.
/// Returns the failures found.
fn soak_trace(trace: &Trace, cfg: &CoreConfig, args: &Args, context: &str) -> Vec<Failure> {
    let mut failures = Vec::new();

    for &kind in &args.kinds {
        let run = quiet_panics(|| run_audited(trace, cfg, kind, args.inject));
        match run {
            Ok(stats) => println!(
                "audit ok: {context} {kind} ({} uops, {} cycles, ipc {:.2})",
                trace.len(),
                stats.cycles,
                stats.ipc(),
                kind = kind.label()
            ),
            Err(err) => {
                println!("AUDIT FAILURE: {context} {}: {}", kind.label(), err.message);
                let mut fails =
                    |t: &Trace| run_audited(t, cfg, kind, args.inject).is_err();
                let minimal = quiet_panics(|| shrink(trace, &mut fails));
                let mut label = format!("{context}-{}", kind.label());
                if let Some(f) = args.inject {
                    label = format!("{label}-{}", fault_label(f));
                }
                report_repro(&minimal, args, &label, &kind);
                failures.push(Failure {
                    label,
                    message: err.message,
                });
            }
        }
    }

    if !args.no_diff {
        if let Some(&kind) = args.kinds.first() {
            if let Err(e) = check_determinism(trace, cfg, kind) {
                println!("DIFF FAILURE: {context} {}: {e}", kind.label());
                let mut fails =
                    |t: &Trace| check_determinism(t, cfg, kind).is_err();
                let minimal = quiet_panics(|| shrink(trace, &mut fails));
                let label = format!("{context}-{}-nondeterminism", kind.label());
                report_repro(&minimal, args, &label, &kind);
                failures.push(Failure {
                    label,
                    message: e.to_string(),
                });
            }
        }
        if let Err(e) = check_mdp_agreement(trace) {
            println!("DIFF FAILURE: {context} mdp-agreement: {e}");
            let mut fails = |t: &Trace| check_mdp_agreement(t).is_err();
            let minimal = quiet_panics(|| shrink(trace, &mut fails));
            let label = format!("{context}-mdp-agreement");
            report_repro(&minimal, args, &label, &PredictorKind::Mascot);
            failures.push(Failure {
                label,
                message: e.to_string(),
            });
        }
        // Sampled-pipeline determinism: plan → warm → measure → project run
        // twice must agree bit-for-bit (DESIGN.md §13). Sized down so the
        // soak trace yields a handful of intervals per cluster.
        if let Some(&kind) = args.kinds.first() {
            let samp = SamplingConfig {
                interval_uops: (trace.len() / 8).max(1_000),
                clusters: 4,
                warmup_uops: 500,
                ..SamplingConfig::default()
            };
            if let Err(e) = check_sampled_determinism(trace, cfg, kind, &samp) {
                println!("DIFF FAILURE: {context} sampled-determinism {}: {e}", kind.label());
                failures.push(Failure {
                    label: format!("{context}-{}-sampled-determinism", kind.label()),
                    message: e.to_string(),
                });
            }
        }
    }

    failures
}

fn report_repro(minimal: &Trace, args: &Args, label: &str, kind: &PredictorKind) {
    match write_repro(minimal, &args.out_dir, label) {
        Ok((path, mut command)) => {
            command.push_str(&format!(" --kinds {}", kind.label()));
            if let Some(f) = args.inject {
                command.push_str(&format!(" --inject {}", fault_label(f)));
            }
            println!("  minimal repro: {} uops -> {}", minimal.len(), path.display());
            println!("  reproduce: {command}");
        }
        Err(e) => println!("  (failed to write repro artifact: {e})"),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let cfg = CoreConfig::golden_cove();

    // Repro mode: replay one saved trace.
    if let Some(path) = &args.repro {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot open {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let trace = match codec::load(std::io::BufReader::new(file)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot decode {}: {e:?}", path.display());
                return ExitCode::from(2);
            }
        };
        if let Err(e) = trace.validate() {
            eprintln!("invalid trace {}: {e}", path.display());
            return ExitCode::from(2);
        }
        let mut failed = false;
        for &kind in &args.kinds {
            match quiet_panics(|| run_audited(&trace, &cfg, kind, args.inject)) {
                Ok(stats) => println!(
                    "repro clean: {} ({} uops, {} cycles)",
                    kind.label(),
                    trace.len(),
                    stats.cycles
                ),
                Err(err) => {
                    println!("repro FAILS: {}: {}", kind.label(), err.message);
                    failed = true;
                }
            }
        }
        return ExitCode::from(u8::from(failed));
    }

    // Soak mode: every (selected) profile.
    let profiles = spec::all_profiles();
    let selected: Vec<_> = match &args.profiles {
        Some(names) => {
            let mut sel = Vec::new();
            for n in names {
                match profiles.iter().find(|p| p.name == n.as_str()) {
                    Some(p) => sel.push(p.clone()),
                    None => {
                        eprintln!("unknown profile {n:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            sel
        }
        None => profiles,
    };

    println!(
        "audit-soak: {} profiles x {} kinds, {} uops each, seed {}{}",
        selected.len(),
        args.kinds.len(),
        args.uops,
        args.seed,
        args.inject
            .map(|f| format!(", injecting {}", fault_label(f)))
            .unwrap_or_default()
    );

    let mut failures = Vec::new();

    // Trace-independent: the batch API's sequential-equivalence contract,
    // for every predictor in the registry (seeded synthetic streams).
    if !args.no_diff {
        for kind in PredictorKind::ALL {
            match check_batch_equivalence(kind, args.seed, 4_000) {
                Ok(()) => println!("batch-equivalence ok: {}", kind.label()),
                Err(e) => {
                    println!("DIFF FAILURE: batch-equivalence {}: {e}", kind.label());
                    failures.push(Failure {
                        label: format!("batch-equivalence-{}", kind.label()),
                        message: e.to_string(),
                    });
                }
            }
        }
        // Snapshot round-trip: restore must reproduce a bit-identical
        // payload and an identical behavioral fingerprint, and stay in
        // lockstep with the original under continued traffic.
        for kind in PredictorKind::ALL {
            match check_snapshot_roundtrip(kind, args.seed, 3_000) {
                Ok(()) => println!("snapshot-roundtrip ok: {}", kind.label()),
                Err(e) => {
                    println!("DIFF FAILURE: snapshot-roundtrip {}: {e}", kind.label());
                    failures.push(Failure {
                        label: format!("snapshot-roundtrip-{}", kind.label()),
                        message: e.to_string(),
                    });
                }
            }
        }
    }

    for profile in &selected {
        let trace = generate(profile, args.seed, args.uops);
        failures.extend(soak_trace(&trace, &cfg, &args, &profile.name));
    }

    // Adversarial mistraining traffic (DESIGN.md §12): the same invariant
    // sweep must hold while an attacker tenant deliberately aliases the
    // victim's predictor contexts. Skipped when `--profiles` narrows the
    // run to specific benign profiles.
    if args.profiles.is_none() {
        for attack in mascot_workloads::AttackKind::ALL {
            let trace = mascot_workloads::compose(attack, args.seed, args.uops);
            failures.extend(soak_trace(&trace, &cfg, &args, attack.name()));
        }
    }

    if failures.is_empty() {
        println!("audit-soak: all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("audit-soak: {} failure(s):", failures.len());
        for f in &failures {
            println!("  {}: {}", f.label, f.message);
        }
        ExitCode::FAILURE
    }
}
