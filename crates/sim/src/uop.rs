//! Micro-op and trace model.
//!
//! The simulator is trace-driven, mirroring the paper's methodology (§V):
//! the core is fed a stream of micro-ops on the committed path (the Sniper
//! frontend in the paper; our synthetic generators in this reproduction).
//! Each load carries *ground-truth* dependence annotations computed by the
//! trace producer — the youngest prior store writing any byte the load
//! reads — which the simulator uses both to model memory-order violations
//! and to implement the perfect-predictor oracles.

use mascot::history::BranchKind;
use mascot::prediction::BypassClass;
use serde::{Deserialize, Serialize};

/// An architectural register name (the generator uses 0..=63).
pub type ArchReg = u8;

/// Number of architectural registers the trace format supports.
pub const NUM_ARCH_REGS: usize = 64;

/// Static ground truth about a load's memory dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceDep {
    /// Program-order store distance to the youngest prior store writing any
    /// byte this load reads (1 = immediately preceding store). May exceed
    /// the predictors' 127-distance window; the simulator treats such
    /// dependencies as out of reach (the store cannot still be in a
    /// 114-entry store buffer).
    pub distance: u32,
    /// Size/alignment relation of the pair (Fig. 2 classification).
    pub class: BypassClass,
    /// PC of the source store.
    pub store_pc: u64,
    /// Branches between the store and the load in program order (PHAST's
    /// allocation context).
    pub branches_between: u32,
}

/// The operation class of a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UopKind {
    /// An arithmetic/logic operation (execution latency in [`Uop::latency`]).
    Alu,
    /// A memory load.
    Load {
        /// Effective address.
        addr: u64,
        /// Access size in bytes.
        size: u8,
        /// Ground-truth dependence, if any.
        dep: Option<TraceDep>,
    },
    /// A memory store. `srcs[0]` is the address operand, `srcs[1]` the data
    /// operand.
    Store {
        /// Effective address.
        addr: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// A control transfer.
    Branch {
        /// Conditional or indirect (unconditional-direct branches are
        /// recorded as always-taken conditionals).
        kind: BranchKind,
        /// Actual direction.
        taken: bool,
        /// Actual target.
        target: u64,
    },
}

impl UopKind {
    /// True for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, UopKind::Load { .. })
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, UopKind::Store { .. })
    }

    /// True for branches.
    pub fn is_branch(&self) -> bool {
        matches!(self, UopKind::Branch { .. })
    }
}

/// One micro-op of the committed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uop {
    /// Instruction address.
    pub pc: u64,
    /// Operation class and operands.
    pub kind: UopKind,
    /// Source registers (up to two; a store uses `[address, data]`).
    pub srcs: [Option<ArchReg>; 2],
    /// Destination register.
    pub dst: Option<ArchReg>,
    /// Execution latency in cycles for ALU ops (memory latency comes from
    /// the cache model; branches resolve with this latency too).
    pub latency: u8,
}

impl Uop {
    /// Builds an ALU micro-op.
    pub fn alu(pc: u64, srcs: [Option<ArchReg>; 2], dst: Option<ArchReg>, latency: u8) -> Self {
        Self {
            pc,
            kind: UopKind::Alu,
            srcs,
            dst,
            latency,
        }
    }

    /// Builds a load micro-op. `addr_reg` produces the address.
    pub fn load(
        pc: u64,
        addr: u64,
        size: u8,
        addr_reg: Option<ArchReg>,
        dst: ArchReg,
        dep: Option<TraceDep>,
    ) -> Self {
        Self {
            pc,
            kind: UopKind::Load { addr, size, dep },
            srcs: [addr_reg, None],
            dst: Some(dst),
            latency: 1,
        }
    }

    /// Builds a store micro-op with address and data operands.
    pub fn store(
        pc: u64,
        addr: u64,
        size: u8,
        addr_reg: Option<ArchReg>,
        data_reg: Option<ArchReg>,
    ) -> Self {
        Self {
            pc,
            kind: UopKind::Store { addr, size },
            srcs: [addr_reg, data_reg],
            dst: None,
            latency: 1,
        }
    }

    /// Builds a conditional branch micro-op.
    pub fn branch(pc: u64, taken: bool, target: u64, cond_reg: Option<ArchReg>) -> Self {
        Self {
            pc,
            kind: UopKind::Branch {
                kind: BranchKind::Conditional,
                taken,
                target,
            },
            srcs: [cond_reg, None],
            dst: None,
            latency: 1,
        }
    }

    /// Builds an indirect branch micro-op (always taken).
    pub fn indirect_branch(pc: u64, target: u64, target_reg: Option<ArchReg>) -> Self {
        Self {
            pc,
            kind: UopKind::Branch {
                kind: BranchKind::Indirect,
                taken: true,
                target,
            },
            srcs: [target_reg, None],
            dst: None,
            latency: 1,
        }
    }
}

/// A committed-path micro-op trace with a name for reporting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Workload name (e.g. `"perlbench2"`).
    pub name: String,
    /// The micro-ops in program order.
    pub uops: Vec<Uop>,
}

impl Trace {
    /// Creates a named trace.
    pub fn new(name: impl Into<String>, uops: Vec<Uop>) -> Self {
        Self {
            name: name.into(),
            uops,
        }
    }

    /// Number of micro-ops.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Count of load micro-ops.
    pub fn num_loads(&self) -> usize {
        self.uops.iter().filter(|u| u.kind.is_load()).count()
    }

    /// Count of store micro-ops.
    pub fn num_stores(&self) -> usize {
        self.uops.iter().filter(|u| u.kind.is_store()).count()
    }

    /// Count of branch micro-ops.
    pub fn num_branches(&self) -> usize {
        self.uops.iter().filter(|u| u.kind.is_branch()).count()
    }

    /// Validates internal consistency of the trace annotations.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency: a load whose
    /// ground-truth distance points before the start of the trace or at a
    /// non-store, or a store-distance of zero.
    pub fn validate(&self) -> Result<(), String> {
        let mut stores_before = 0u64;
        let mut store_positions: Vec<usize> = Vec::new();
        for (i, uop) in self.uops.iter().enumerate() {
            if let UopKind::Load { dep: Some(dep), .. } = &uop.kind {
                if dep.distance == 0 {
                    return Err(format!("uop {i}: dependence distance of 0"));
                }
                if u64::from(dep.distance) > stores_before {
                    return Err(format!(
                        "uop {i}: distance {} exceeds {} prior stores",
                        dep.distance, stores_before
                    ));
                }
                let src = store_positions[store_positions.len() - dep.distance as usize];
                let src_uop = &self.uops[src];
                if !src_uop.kind.is_store() {
                    return Err(format!("uop {i}: dependence target {src} is not a store"));
                }
                if src_uop.pc != dep.store_pc {
                    return Err(format!(
                        "uop {i}: store_pc {:#x} does not match store at {src} ({:#x})",
                        dep.store_pc, src_uop.pc
                    ));
                }
            }
            if uop.kind.is_store() {
                stores_before += 1;
                store_positions.push(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kinds() {
        let l = Uop::load(0x10, 0x1000, 8, Some(1), 2, None);
        assert!(l.kind.is_load());
        assert_eq!(l.dst, Some(2));
        let s = Uop::store(0x14, 0x1000, 8, Some(1), Some(3));
        assert!(s.kind.is_store());
        assert_eq!(s.srcs, [Some(1), Some(3)]);
        let b = Uop::branch(0x18, true, 0x30, None);
        assert!(b.kind.is_branch());
        let a = Uop::alu(0x1c, [None, None], Some(4), 3);
        assert_eq!(a.latency, 3);
    }

    #[test]
    fn trace_counts() {
        let t = Trace::new(
            "t",
            vec![
                Uop::store(0, 0x100, 8, None, None),
                Uop::load(4, 0x100, 8, None, 1, None),
                Uop::branch(8, true, 0, None),
                Uop::alu(12, [None, None], None, 1),
            ],
        );
        assert_eq!(t.len(), 4);
        assert_eq!(t.num_loads(), 1);
        assert_eq!(t.num_stores(), 1);
        assert_eq!(t.num_branches(), 1);
    }

    #[test]
    fn validate_accepts_consistent_dep() {
        let dep = TraceDep {
            distance: 1,
            class: BypassClass::DirectBypass,
            store_pc: 0,
            branches_between: 0,
        };
        let t = Trace::new(
            "t",
            vec![
                Uop::store(0, 0x100, 8, None, None),
                Uop::load(4, 0x100, 8, None, 1, Some(dep)),
            ],
        );
        t.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_distance() {
        let dep = TraceDep {
            distance: 2,
            class: BypassClass::DirectBypass,
            store_pc: 0,
            branches_between: 0,
        };
        let t = Trace::new(
            "t",
            vec![
                Uop::store(0, 0x100, 8, None, None),
                Uop::load(4, 0x100, 8, None, 1, Some(dep)),
            ],
        );
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_store_pc() {
        let dep = TraceDep {
            distance: 1,
            class: BypassClass::DirectBypass,
            store_pc: 0xbad,
            branches_between: 0,
        };
        let t = Trace::new(
            "t",
            vec![
                Uop::store(0, 0x100, 8, None, None),
                Uop::load(4, 0x100, 8, None, 1, Some(dep)),
            ],
        );
        assert!(t.validate().is_err());
    }
}
