//! Core and memory-hierarchy configuration (Table I).
//!
//! [`CoreConfig::golden_cove`] reproduces the paper's 4-core Golden Cove
//! configuration (we model one core; the L3 capacity is the single-core
//! share). [`CoreConfig::lion_cove`] scales the out-of-order structures for
//! the §VI-C future-architecture study.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
    /// Miss-status-holding registers (outstanding misses).
    pub mshrs: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes) / u64::from(self.ways)
    }
}

/// Full single-core configuration (Table I).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Human-readable name (`"golden-cove"`, `"lion-cove"`).
    pub name: String,
    /// Fetch/decode width (µops per cycle).
    pub fetch_width: u32,
    /// Commit (retire) width.
    pub commit_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Issue-queue (scheduler) entries.
    pub iq_entries: u32,
    /// Load-queue entries.
    pub lq_entries: u32,
    /// Store-buffer entries (speculative + committed, until drain).
    pub sb_entries: u32,
    /// Load-execution ports.
    pub load_ports: u32,
    /// Store-execution ports.
    pub store_ports: u32,
    /// Non-memory execution ports.
    pub alu_ports: u32,
    /// Committed stores drained to the L1D per cycle.
    pub store_drain_per_cycle: u32,
    /// Cycles a committed store lingers in the store buffer before draining
    /// (write-port arbitration and ordering): recently committed stores
    /// remain visible to store-to-load forwarding.
    pub store_drain_delay: u32,
    /// Frontend refill penalty after a branch mispredict or memory-order
    /// squash (cycles of fetch silence after the redirect source resolves).
    pub redirect_penalty: u32,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared L3 (this core's share).
    pub l3: CacheConfig,
    /// Main-memory access latency in cycles.
    pub memory_latency: u32,
    /// IP-stride prefetch degree at the L1D (Table I: 3). 0 disables.
    pub prefetch_degree: u32,
}

impl CoreConfig {
    /// The paper's Golden Cove configuration (Table I).
    pub fn golden_cove() -> Self {
        Self {
            name: "golden-cove".into(),
            fetch_width: 6,
            commit_width: 8,
            rob_entries: 512,
            iq_entries: 204,
            lq_entries: 192,
            sb_entries: 114,
            load_ports: 3,
            store_ports: 2,
            alu_ports: 7, // 12 execution ports minus 3 load + 2 store
            store_drain_per_cycle: 2,
            store_drain_delay: 40,
            redirect_penalty: 12,
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                hit_latency: 4,
                mshrs: 64,
            },
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                ways: 12,
                line_bytes: 64,
                hit_latency: 5,
                mshrs: 64,
            },
            l2: CacheConfig {
                size_bytes: 1280 * 1024,
                ways: 10,
                line_bytes: 64,
                hit_latency: 14,
                mshrs: 64,
            },
            l3: CacheConfig {
                size_bytes: 3 * 1024 * 1024,
                ways: 12,
                line_bytes: 64,
                hit_latency: 36,
                mshrs: 64,
            },
            memory_latency: 100,
            prefetch_degree: 3,
        }
    }

    /// A Lion-Cove-like configuration (§VI-C): wider front/back end and
    /// larger out-of-order structures, per the public preview the paper
    /// cites (8-wide decode, ~576-entry ROB-equivalent, bigger scheduler and
    /// load/store queues, 3 store ports).
    pub fn lion_cove() -> Self {
        Self {
            name: "lion-cove".into(),
            fetch_width: 8,
            commit_width: 12,
            rob_entries: 576,
            iq_entries: 288,
            lq_entries: 224,
            sb_entries: 144,
            load_ports: 3,
            store_ports: 3,
            alu_ports: 8,
            redirect_penalty: 13, // slightly deeper pipeline
            store_drain_delay: 60, // larger post-retirement store buffering
            ..Self::golden_cove()
        }
    }

    /// Validates structural parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter (zero-sized
    /// structures or widths).
    pub fn validate(&self) -> Result<(), String> {
        let nonzero = [
            (self.fetch_width, "fetch_width"),
            (self.commit_width, "commit_width"),
            (self.rob_entries, "rob_entries"),
            (self.iq_entries, "iq_entries"),
            (self.lq_entries, "lq_entries"),
            (self.sb_entries, "sb_entries"),
            (self.load_ports, "load_ports"),
            (self.store_ports, "store_ports"),
            (self.alu_ports, "alu_ports"),
            (self.store_drain_per_cycle, "store_drain_per_cycle"),
        ];
        for (v, name) in nonzero {
            if v == 0 {
                return Err(format!("{name} must be non-zero"));
            }
        }
        for (c, name) in [
            (&self.l1i, "l1i"),
            (&self.l1d, "l1d"),
            (&self.l2, "l2"),
            (&self.l3, "l3"),
        ] {
            if c.sets() == 0 || !c.sets().is_power_of_two() {
                return Err(format!("{name}: set count must be a non-zero power of two"));
            }
            if c.mshrs == 0 {
                return Err(format!("{name}: MSHR count must be non-zero"));
            }
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::golden_cove()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_cove_matches_table_i() {
        let c = CoreConfig::golden_cove();
        c.validate().unwrap();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.rob_entries, 512);
        assert_eq!(c.iq_entries, 204);
        assert_eq!(c.lq_entries, 192);
        assert_eq!(c.sb_entries, 114);
        assert_eq!(c.load_ports + c.store_ports + c.alu_ports, 12);
        assert_eq!(c.l1d.hit_latency, 5);
        assert_eq!(c.l2.size_bytes, 1280 * 1024);
        assert_eq!(c.memory_latency, 100);
    }

    #[test]
    fn lion_cove_is_strictly_larger() {
        let g = CoreConfig::golden_cove();
        let l = CoreConfig::lion_cove();
        l.validate().unwrap();
        assert!(l.fetch_width > g.fetch_width);
        assert!(l.rob_entries > g.rob_entries);
        assert!(l.iq_entries > g.iq_entries);
        assert!(l.lq_entries > g.lq_entries);
        assert!(l.sb_entries > g.sb_entries);
    }

    #[test]
    fn cache_sets_power_of_two() {
        let c = CoreConfig::golden_cove();
        assert_eq!(c.l1i.sets(), 64);
        assert_eq!(c.l1d.sets(), 64);
        assert!(c.l2.sets().is_power_of_two());
    }

    #[test]
    fn validation_rejects_zero_width() {
        let mut c = CoreConfig::golden_cove();
        c.fetch_width = 0;
        assert!(c.validate().is_err());
    }
}
