//! A minimal Fx-style hasher for the simulator's hot-path maps.
//!
//! The engine keys its bookkeeping maps by small dense integers (ROB ids,
//! store sequence numbers, trace indices). The standard library's default
//! SipHash is DoS-resistant but needlessly slow for that: the keys are not
//! attacker-controlled, and the maps sit on the per-cycle path. This module
//! provides the multiply-rotate hash used by the Firefox and rustc
//! codebases ("FxHash"), hand-rolled here because the build environment is
//! offline and cannot pull the `rustc-hash` crate.
//!
//! Not suitable for untrusted input: the hash is trivially invertible and
//! collision-prone under adversarial keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Stateless builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The odd multiplier: truncated golden-ratio constant, as in rustc.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic word-at-a-time hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxBuildHasher::default().build_hasher();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(0xdead_beefu64), hash_of(0xdead_beefu64));
        assert_eq!(hash_of("trace-idx"), hash_of("trace-idx"));
    }

    #[test]
    fn small_dense_keys_do_not_collide() {
        let hashes: FxHashSet<u64> = (0..4096u64).map(hash_of).collect();
        assert_eq!(hashes.len(), 4096);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<usize, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(100, "hundred");
        assert_eq!(m.remove(&7), Some("seven"));
        assert_eq!(m.get(&100), Some(&"hundred"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(&42));
    }

    #[test]
    fn byte_slices_hash_by_content() {
        assert_eq!(hash_of([1u8, 2, 3].as_slice()), hash_of(vec![1u8, 2, 3]));
        assert_ne!(hash_of([1u8, 2, 3].as_slice()), hash_of([3u8, 2, 1].as_slice()));
    }
}
