//! Frontend branch prediction: a TAGE direction predictor plus a last-target
//! table for indirect branches.
//!
//! The paper's core uses TAGE-SC-L; we model the TAGE component (the
//! statistical corrector and loop predictor move branch MPKI by fractions
//! that do not change the history structure MASCOT consumes). Because the
//! simulator is trace-driven, the predictor is queried and trained at decode
//! with the architectural outcome; a mispredicted branch stalls fetch until
//! the branch resolves plus the redirect penalty.

use mascot::history::{rewind_hashers, BranchEvent, BranchKind, GlobalHistory, TableHasher};
use mascot::table::AssocTable;
use mascot_stats::SaturatingCounter;
use serde::{Deserialize, Serialize};

/// Configuration for [`TagePredictor`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictorConfig {
    /// Bimodal (base) predictor entries (power of two).
    pub bimodal_entries: usize,
    /// Global-history length per tagged table.
    pub history_lengths: Vec<u32>,
    /// Entries per tagged table.
    pub table_entries: u32,
    /// Tag width in bits.
    pub tag_bits: u8,
    /// Entries in the indirect-target table (power of two).
    pub btb_entries: usize,
}

impl Default for BranchPredictorConfig {
    fn default() -> Self {
        // Sized to approximate TAGE-SC-L accuracy (the Table-I frontend)
        // with a plain TAGE: more tables, longer histories, bigger tag
        // arrays than a minimal TAGE.
        Self {
            bimodal_entries: 8192,
            history_lengths: vec![2, 4, 8, 16, 32, 64, 128, 256],
            table_entries: 2048,
            tag_bits: 13,
            btb_entries: 2048,
        }
    }
}

/// Entry payload; the tag lives in the table's SoA tag lane.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TageEntry {
    /// 3-bit direction counter; taken when >= 4.
    ctr: SaturatingCounter,
    /// 2-bit usefulness.
    useful: SaturatingCounter,
}

/// A TAGE branch-direction predictor with an indirect-target side table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TagePredictor {
    bimodal: Vec<SaturatingCounter>,
    tables: Vec<AssocTable<TageEntry>>,
    hashers: Vec<TableHasher>,
    history: GlobalHistory,
    /// Indirect-branch last-target table: (pc, target).
    btb: Vec<Option<(u64, u64)>>,
    alloc_rotor: usize,
    /// Lifetime statistics.
    pub stats: BranchStats,
}

/// Branch predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub conditional: u64,
    /// Conditional direction mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect branches predicted.
    pub indirect: u64,
    /// Indirect target mispredictions.
    pub indirect_mispredicts: u64,
}

impl Default for TagePredictor {
    fn default() -> Self {
        Self::new(BranchPredictorConfig::default())
    }
}

impl TagePredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two.
    pub fn new(cfg: BranchPredictorConfig) -> Self {
        assert!(cfg.bimodal_entries.is_power_of_two());
        assert!(cfg.btb_entries.is_power_of_two());
        let fill = TageEntry {
            ctr: SaturatingCounter::new(3, 0),
            useful: SaturatingCounter::new(2, 0),
        };
        let tables: Vec<_> = cfg
            .history_lengths
            .iter()
            .map(|_| AssocTable::new(cfg.table_entries as usize / 4, 4, fill.clone()))
            .collect();
        let hashers: Vec<_> = cfg
            .history_lengths
            .iter()
            .zip(&tables)
            .map(|(&h, t)| TableHasher::new(h, t.index_bits(), u32::from(cfg.tag_bits)))
            .collect();
        let max_hist = cfg.history_lengths.last().copied().unwrap_or(8) as usize;
        Self {
            bimodal: vec![SaturatingCounter::new(2, 2); cfg.bimodal_entries],
            tables,
            hashers,
            history: GlobalHistory::new((max_hist * 2).max(64)),
            btb: vec![None; cfg.btb_entries],
            alloc_rotor: 0,
            stats: BranchStats::default(),
        }
    }

    #[inline]
    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) ^ (pc >> 14)) as usize & (self.bimodal.len() - 1)
    }

    #[inline]
    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) ^ (pc >> 12)) as usize & (self.btb.len() - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`, then
    /// immediately trains with `actual` (trace-driven decode-time update).
    /// Returns `true` when the prediction was correct.
    pub fn predict_and_train(&mut self, pc: u64, actual: bool) -> bool {
        self.stats.conditional += 1;
        // Lookup: longest-history hit provides, bimodal is the fallback.
        let mut provider: Option<(usize, u64, u64)> = None; // (table, index, tag)
        let mut prediction = None;
        for t in (0..self.tables.len()).rev() {
            let index = self.hashers[t].index(pc);
            let tag = self.hashers[t].tag(pc);
            if let Some((_, e)) = self.tables[t].find(index, tag) {
                provider = Some((t, index, tag));
                prediction = Some(e.ctr.value() >= 4);
                break;
            }
        }
        let bim_idx = self.bimodal_index(pc);
        let bimodal_pred = self.bimodal[bim_idx].value() >= 2;
        let predicted = prediction.unwrap_or(bimodal_pred);
        let correct = predicted == actual;
        if !correct {
            self.stats.cond_mispredicts += 1;
        }

        // Train the provider (or bimodal).
        match provider {
            Some((t, index, tag)) => {
                let alt_differs = prediction != Some(bimodal_pred);
                if let Some((_, e)) = self.tables[t].find_mut(index, tag) {
                    if actual {
                        e.ctr.increment();
                    } else {
                        e.ctr.decrement();
                    }
                    if alt_differs {
                        if correct {
                            e.useful.increment();
                        } else {
                            e.useful.decrement();
                        }
                    }
                }
            }
            None => {
                if actual {
                    self.bimodal[bim_idx].increment();
                } else {
                    self.bimodal[bim_idx].decrement();
                }
            }
        }

        // Allocate a longer-history entry on a misprediction.
        if !correct {
            let start = provider.map_or(0, |(t, _, _)| t + 1);
            self.allocate(pc, start, actual);
        }
        correct
    }

    fn allocate(&mut self, pc: u64, start: usize, actual: bool) {
        if start >= self.tables.len() {
            return;
        }
        // Rotate the first candidate table to avoid pathological ping-pong.
        let span = self.tables.len() - start;
        let first = start + self.alloc_rotor % span.min(2);
        self.alloc_rotor = self.alloc_rotor.wrapping_add(1);
        for t in first..self.tables.len() {
            let index = self.hashers[t].index(pc);
            let tag = self.hashers[t].tag(pc);
            let entry = TageEntry {
                ctr: SaturatingCounter::new(3, if actual { 4 } else { 3 }),
                useful: SaturatingCounter::new(2, 0),
            };
            if self.tables[t]
                .try_insert(index, tag, entry, |e| e.useful.is_zero())
                .is_some()
            {
                return;
            }
            self.tables[t].for_each_valid_mut(index, |_, e| e.useful.decrement());
        }
    }

    /// Predicts the target of the indirect branch at `pc`, trains with the
    /// actual target, and returns `true` when the prediction was correct.
    pub fn predict_indirect_and_train(&mut self, pc: u64, actual_target: u64) -> bool {
        self.stats.indirect += 1;
        let idx = self.btb_index(pc);
        let correct = matches!(self.btb[idx], Some((p, t)) if p == pc && t == actual_target);
        if !correct {
            self.stats.indirect_mispredicts += 1;
        }
        self.btb[idx] = Some((pc, actual_target));
        correct
    }

    /// Advances speculative history with a decoded branch.
    pub fn on_branch(&mut self, event: &BranchEvent) {
        for h in &mut self.hashers {
            h.on_branch(&self.history, event);
        }
        self.history.push(*event);
    }

    /// Restores history after a pipeline squash.
    pub fn rewind_history(&mut self, recent: &[BranchEvent]) {
        rewind_hashers(&mut self.history, &mut self.hashers, recent);
    }

    /// Conditional misprediction rate over the predictor's lifetime.
    pub fn mispredict_rate(&self) -> f64 {
        if self.stats.conditional == 0 {
            0.0
        } else {
            self.stats.cond_mispredicts as f64 / self.stats.conditional as f64
        }
    }
}

/// Helper: the history event for a decoded branch.
pub fn event_for(pc: u64, kind: BranchKind, taken: bool, target: u64) -> BranchEvent {
    BranchEvent {
        pc,
        kind,
        taken,
        target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern<F>(p: &mut TagePredictor, pc: u64, n: usize, mut outcome: F) -> f64
    where
        F: FnMut(usize) -> bool,
    {
        let mut correct = 0usize;
        for i in 0..n {
            let taken = outcome(i);
            if p.predict_and_train(pc, taken) {
                correct += 1;
            }
            p.on_branch(&event_for(pc, BranchKind::Conditional, taken, pc + 32));
        }
        correct as f64 / n as f64
    }

    #[test]
    fn always_taken_is_nearly_perfect() {
        let mut p = TagePredictor::default();
        let acc = run_pattern(&mut p, 0x100, 500, |_| true);
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn alternating_pattern_is_learned_by_history_tables() {
        let mut p = TagePredictor::default();
        // Warmup then measure.
        run_pattern(&mut p, 0x200, 600, |i| i % 2 == 0);
        let acc = run_pattern(&mut p, 0x200, 400, |i| i % 2 == 0);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn period_four_pattern_is_learned() {
        let mut p = TagePredictor::default();
        run_pattern(&mut p, 0x300, 1200, |i| i % 4 == 0);
        let acc = run_pattern(&mut p, 0x300, 400, |i| i % 4 == 0);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn biased_random_tracks_bias() {
        let mut p = TagePredictor::default();
        // Deterministic pseudo-random 85/15 bias.
        let mut state = 0x2837_1923u64;
        let mut gen = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 100 < 85
        };
        run_pattern(&mut p, 0x400, 1000, |_| gen());
        let acc = run_pattern(&mut p, 0x400, 1000, |_| gen());
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn indirect_last_target_behaviour() {
        let mut p = TagePredictor::default();
        assert!(!p.predict_indirect_and_train(0x500, 0x1000), "cold miss");
        assert!(p.predict_indirect_and_train(0x500, 0x1000), "repeat hit");
        assert!(!p.predict_indirect_and_train(0x500, 0x2000), "target change");
        assert!(p.predict_indirect_and_train(0x500, 0x2000));
        assert_eq!(p.stats.indirect, 4);
        assert_eq!(p.stats.indirect_mispredicts, 2);
    }

    #[test]
    fn rewind_is_consistent_with_replay() {
        let mut p = TagePredictor::default();
        let mut log = Vec::new();
        for i in 0..30u64 {
            let ev = event_for(0x600 + i * 4, BranchKind::Conditional, i % 3 == 0, 0x700);
            p.on_branch(&ev);
            log.push(ev);
        }
        let mut q = p.clone();
        // p takes wrong-path history then rewinds; q never diverges.
        for i in 0..4u64 {
            p.on_branch(&event_for(0x900 + i * 4, BranchKind::Conditional, true, 0xa00));
        }
        p.rewind_history(&log);
        // Both must produce identical predictions afterwards.
        for i in 0..20u64 {
            let taken = i % 2 == 0;
            let a = p.predict_and_train(0x123456, taken);
            let b = q.predict_and_train(0x123456, taken);
            assert_eq!(a, b, "diverged at {i}");
            let ev = event_for(0x123456, BranchKind::Conditional, taken, 0x20);
            p.on_branch(&ev);
            q.on_branch(&ev);
        }
    }
}
