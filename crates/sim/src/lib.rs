//! # mascot-sim — cycle-level out-of-order core simulator
//!
//! The evaluation substrate of the MASCOT reproduction: a trace-driven,
//! cycle-level model of a Golden-Cove-class out-of-order core (Table I of
//! the paper) with a multi-level cache hierarchy, TAGE branch prediction,
//! a load-store queue with store-to-load forwarding and memory-order
//! violation detection, and speculative memory bypassing support.
//!
//! Plug any [`mascot::MemDepPredictor`] into [`simulate`]:
//!
//! ```
//! use mascot::{Mascot, MascotConfig};
//! use mascot_sim::{simulate, CoreConfig, Trace, Uop};
//!
//! let trace = Trace::new("demo", vec![
//!     Uop::store(0x0, 0x100, 8, None, None),
//!     Uop::load(0x4, 0x100, 8, None, 1, None),
//! ]);
//! let mut predictor = Mascot::new(MascotConfig::default())?;
//! let stats = simulate(&trace, &CoreConfig::golden_cove(), &mut predictor);
//! assert_eq!(stats.committed_uops, 2);
//! # Ok::<(), mascot::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
pub mod cache;
pub mod codec;
pub mod config;
pub mod core;
pub mod fxhash;
pub mod stats;
pub mod uop;

pub use branch::{BranchPredictorConfig, BranchStats, TagePredictor};
pub use codec::CodecError;
pub use cache::{CacheLevel, CacheStats, Hierarchy};
pub use config::{CacheConfig, CoreConfig};
pub use fxhash::{FxHashMap, FxHashSet};
pub use core::{simulate, Fault, FunctionalWarmer, Simulator};
pub use stats::{SimStats, TenantCounters};
pub use uop::{ArchReg, Trace, TraceDep, Uop, UopKind};

// Re-export the shared prediction vocabulary so trace producers do not need
// a direct `mascot` dependency.
pub use mascot::prediction::{BypassClass, GroundTruth, LoadOutcome, MemDepPredictor};
