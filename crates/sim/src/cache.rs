//! Multi-level cache hierarchy with MSHRs and an IP-stride prefetcher.
//!
//! Models the Table-I memory system: private L1I/L1D and L2, a shared-L3
//! share, and flat-latency DRAM. Latency modelling is hit-level based: an
//! access completes after the hit latency of the closest level holding the
//! line (the paper's Table I gives core-to-data latencies per level), and a
//! miss fills every level on the way in (inclusive hierarchy). Outstanding
//! misses occupy MSHRs at the L1D; a full MSHR file is a structural hazard
//! that delays load issue. Demand accesses that find their line already
//! in flight (e.g. behind a prefetch) merge with the existing MSHR.

use crate::config::{CacheConfig, CoreConfig};
use serde::{Deserialize, Serialize};

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines installed by the prefetcher.
    pub prefetch_fills: u64,
}

/// One cache level: a tag array with per-set LRU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheLevel {
    cfg: CacheConfig,
    sets: u64,
    /// `sets * ways` tags; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Per-slot LRU stamps (bigger = more recent).
    stamps: Vec<u64>,
    stamp: u64,
    /// Aggregate statistics.
    pub stats: CacheStats,
}

const INVALID: u64 = u64::MAX;

impl CacheLevel {
    /// Creates an empty level.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let slots = (sets * u64::from(cfg.ways)) as usize;
        Self {
            cfg,
            sets,
            tags: vec![INVALID; slots],
            stamps: vec![0; slots],
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// This level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.sets) as usize;
        let ways = self.cfg.ways as usize;
        set * ways..(set + 1) * ways
    }

    /// Probes for `line`; updates LRU on hit. Does not count stats.
    pub fn probe(&mut self, line: u64) -> bool {
        self.probe_slot(line).is_some()
    }

    /// Probes for `line`; on a hit, updates LRU and returns the slot index
    /// so callers with locality (e.g. sequential instruction fetch) can
    /// revalidate the same slot without rescanning the set.
    fn probe_slot(&mut self, line: u64) -> Option<usize> {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(line);
        for i in range {
            if self.tags[i] == line {
                self.stamps[i] = stamp;
                return Some(i);
            }
        }
        None
    }

    /// Re-touches a known slot if it still holds `line`. Identical
    /// observable effect to a hitting [`CacheLevel::probe`] (one stamp tick,
    /// slot refreshed), but O(1).
    fn retouch(&mut self, slot: usize, line: u64) -> bool {
        if self.tags[slot] == line {
            self.stamp += 1;
            self.stamps[slot] = self.stamp;
            true
        } else {
            false
        }
    }

    /// Installs `line`, evicting the LRU way of its set if needed.
    pub fn fill(&mut self, line: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(line);
        let mut victim = range.start;
        let mut best = u64::MAX;
        for i in range {
            if self.tags[i] == line {
                self.stamps[i] = stamp;
                return;
            }
            if self.tags[i] == INVALID {
                victim = i;
                break;
            }
            if self.stamps[i] < best {
                best = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = stamp;
    }
}

/// An outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Mshr {
    line: u64,
    ready: u64,
}

/// IP-stride prefetcher state for one load PC.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct StrideEntry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// The full data/instruction hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hierarchy {
    /// L1 instruction cache.
    pub l1i: CacheLevel,
    /// L1 data cache.
    pub l1d: CacheLevel,
    /// Private L2.
    pub l2: CacheLevel,
    /// L3 share.
    pub l3: CacheLevel,
    memory_latency: u32,
    line_bytes: u64,
    mshrs: Vec<Mshr>,
    /// Earliest `ready` among outstanding MSHRs (`u64::MAX` when empty);
    /// lets [`Hierarchy::retire_mshrs`] skip the scan while nothing can
    /// possibly retire.
    mshr_min_ready: u64,
    /// Last instruction line resolved by [`Hierarchy::access_inst`] and the
    /// L1I slot it hit, for the sequential-fetch fast path.
    last_inst: (u64, usize),
    mshr_capacity: usize,
    prefetch_degree: u32,
    stride_table: Vec<StrideEntry>,
    /// Prefetches issued.
    pub prefetches_issued: u64,
}

impl Hierarchy {
    /// Builds the hierarchy from a core configuration.
    pub fn new(cfg: &CoreConfig) -> Self {
        Self {
            l1i: CacheLevel::new(cfg.l1i),
            l1d: CacheLevel::new(cfg.l1d),
            l2: CacheLevel::new(cfg.l2),
            l3: CacheLevel::new(cfg.l3),
            memory_latency: cfg.memory_latency,
            line_bytes: u64::from(cfg.l1d.line_bytes),
            mshrs: Vec::new(),
            mshr_min_ready: u64::MAX,
            last_inst: (INVALID, 0),
            mshr_capacity: cfg.l1d.mshrs as usize,
            prefetch_degree: cfg.prefetch_degree,
            stride_table: vec![StrideEntry::default(); 256],
            prefetches_issued: 0,
        }
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    fn retire_mshrs(&mut self, now: u64) {
        if now < self.mshr_min_ready {
            return;
        }
        self.mshrs.retain(|m| m.ready > now);
        self.mshr_min_ready = self.mshrs.iter().map(|m| m.ready).min().unwrap_or(u64::MAX);
    }

    /// The latency of a data access that misses the L1, walking L2 → L3 →
    /// memory and filling inclusive copies.
    fn miss_path_latency(&mut self, line: u64) -> u32 {
        let latency = if self.l2.probe(line) {
            self.l2.stats.hits += 1;
            self.l2.cfg.hit_latency
        } else if self.l3.probe(line) {
            self.l2.stats.misses += 1;
            self.l3.stats.hits += 1;
            self.l3.cfg.hit_latency
        } else {
            self.l2.stats.misses += 1;
            self.l3.stats.misses += 1;
            self.l3.fill(line);
            self.memory_latency
        };
        self.l2.fill(line);
        latency
    }

    /// Architecturally touches the data line containing `addr` without any
    /// timing machinery: a hit promotes recency, a miss walks the miss path
    /// and fills, but no MSHR is allocated. This is the functional warm-up
    /// path of sampled simulation (DESIGN.md §13) — it reproduces the cache
    /// *contents* a full run would have left, at a fraction of
    /// detailed-simulation cost.
    pub fn warm_data(&mut self, addr: u64) {
        let line = self.line_of(addr);
        if self.l1d.probe(line) {
            self.l1d.stats.hits += 1;
        } else {
            self.l1d.stats.misses += 1;
            let _ = self.miss_path_latency(line);
            self.l1d.fill(line);
        }
    }

    /// Architecturally touches the instruction line containing `pc`
    /// (functional-warm-up counterpart of [`Self::access_inst`], including
    /// its sequential-fetch fast path).
    pub fn warm_inst(&mut self, pc: u64) {
        let line = self.line_of(pc);
        if line == self.last_inst.0 && self.l1i.retouch(self.last_inst.1, line) {
            self.l1i.stats.hits += 1;
            return;
        }
        if let Some(slot) = self.l1i.probe_slot(line) {
            self.last_inst = (line, slot);
            self.l1i.stats.hits += 1;
        } else {
            self.l1i.stats.misses += 1;
            let _ = self.miss_path_latency(line);
            self.l1i.fill(line);
        }
    }

    /// Functional-warm-up counterpart of the prefetcher: trains the stride
    /// table exactly like a demand load does and installs confident
    /// prefetch targets directly (no MSHRs, no timing), so a sampled
    /// window starts with both the stride table and the prefetched lines
    /// a full run would have resident.
    pub fn warm_prefetch(&mut self, pc: u64, addr: u64) {
        if self.prefetch_degree == 0 {
            return;
        }
        if let Some(stride) = self.train_stride(pc, addr) {
            for k in 1..=i64::from(self.prefetch_degree) {
                let line = self.line_of(addr.wrapping_add_signed(stride * k));
                if !self.l1d.probe(line) {
                    let _ = self.miss_path_latency(line);
                    self.l1d.fill(line);
                    self.l1d.stats.prefetch_fills += 1;
                    self.prefetches_issued += 1;
                }
            }
        }
    }

    /// A demand data access (load or store-drain). Returns the completion
    /// cycle, or `None` when no L1D MSHR is available (structural stall —
    /// retry next cycle).
    pub fn access_data(&mut self, pc: u64, addr: u64, now: u64, is_store: bool) -> Option<u64> {
        self.retire_mshrs(now);
        let line = self.line_of(addr);
        let completion = if self.l1d.probe(line) {
            self.l1d.stats.hits += 1;
            // A line still being filled (demand miss or prefetch in flight)
            // is usable only once the fill lands.
            let fill_ready = self
                .mshrs
                .iter()
                .find(|m| m.line == line)
                .map_or(0, |m| m.ready);
            fill_ready.max(now + u64::from(self.l1d.cfg.hit_latency))
        } else if let Some(m) = self.mshrs.iter().find(|m| m.line == line) {
            // Merge with the in-flight fill (e.g. a prefetch).
            self.l1d.stats.hits += 1;
            m.ready.max(now + u64::from(self.l1d.cfg.hit_latency))
        } else {
            self.l1d.stats.misses += 1;
            if !is_store && self.mshrs.len() >= self.mshr_capacity {
                return None;
            }
            let lat = self.miss_path_latency(line);
            let ready = now + u64::from(lat);
            self.l1d.fill(line);
            if !is_store {
                self.mshrs.push(Mshr { line, ready });
                self.mshr_min_ready = self.mshr_min_ready.min(ready);
            }
            ready
        };
        if !is_store && self.prefetch_degree > 0 {
            self.train_prefetcher(pc, addr, now);
        }
        Some(completion)
    }

    /// An instruction fetch for the line containing `pc`. Returns the cycle
    /// the line is available (L1I hits return `now`: fetch latency is part
    /// of the pipeline depth, only *misses* stall the frontend).
    pub fn access_inst(&mut self, pc: u64, now: u64) -> u64 {
        let line = self.line_of(pc);
        // Sequential fetch fast path: consecutive micro-ops usually fetch
        // from the line just resolved, so revalidate that slot instead of
        // rescanning the set (identical stamp/stat effects to a hit probe).
        if line == self.last_inst.0 && self.l1i.retouch(self.last_inst.1, line) {
            self.l1i.stats.hits += 1;
            return now;
        }
        if let Some(slot) = self.l1i.probe_slot(line) {
            self.last_inst = (line, slot);
            self.l1i.stats.hits += 1;
            now
        } else {
            self.l1i.stats.misses += 1;
            let lat = self.miss_path_latency(line);
            self.l1i.fill(line);
            now + u64::from(lat)
        }
    }

    /// Updates the stride entry for `pc`/`addr`; returns the confirmed
    /// stride when confidence is high enough to prefetch.
    fn train_stride(&mut self, pc: u64, addr: u64) -> Option<i64> {
        let slot = (pc >> 2) as usize % self.stride_table.len();
        let e = &mut self.stride_table[slot];
        if e.pc != pc {
            *e = StrideEntry {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return None;
        }
        let stride = addr as i64 - e.last_addr as i64;
        if stride != 0 && stride == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        (e.confidence >= 2).then_some(e.stride)
    }

    fn train_prefetcher(&mut self, pc: u64, addr: u64, now: u64) {
        if let Some(stride) = self.train_stride(pc, addr) {
            for k in 1..=i64::from(self.prefetch_degree) {
                let target = addr.wrapping_add_signed(stride * k);
                self.prefetch_line(self.line_of(target), now);
            }
        }
    }

    fn prefetch_line(&mut self, line: u64, now: u64) {
        if self.l1d.probe(line) || self.mshrs.iter().any(|m| m.line == line) {
            return;
        }
        if self.mshrs.len() >= self.mshr_capacity {
            return; // prefetches never block demand traffic
        }
        let lat = self.miss_path_latency(line);
        self.l1d.fill(line);
        self.l1d.stats.prefetch_fills += 1;
        self.prefetches_issued += 1;
        let ready = now + u64::from(lat);
        self.mshrs.push(Mshr { line, ready });
        self.mshr_min_ready = self.mshr_min_ready.min(ready);
    }

    /// Number of occupied L1D MSHRs (after retiring completed ones).
    pub fn mshrs_in_use(&mut self, now: u64) -> usize {
        self.retire_mshrs(now);
        self.mshrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(&CoreConfig::golden_cove())
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut h = hierarchy();
        let t1 = h.access_data(0x100, 0x8000, 0, false).unwrap();
        assert_eq!(t1, 100, "cold access goes to memory");
        assert_eq!(h.l1d.stats.misses, 1);
        let t2 = h.access_data(0x100, 0x8000, 200, false).unwrap();
        assert_eq!(t2, 205, "L1 hit latency is 5");
        assert_eq!(h.l1d.stats.hits, 1);
    }

    #[test]
    fn same_line_merges_mshr() {
        let mut h = hierarchy();
        let t1 = h.access_data(0x100, 0x8000, 0, false).unwrap();
        // Second access to the same line while the fill is outstanding.
        let t2 = h.access_data(0x104, 0x8010, 3, false).unwrap();
        assert_eq!(t2, t1, "merged access completes with the fill");
    }

    #[test]
    fn l2_hit_latency_after_l1_eviction() {
        let mut h = hierarchy();
        // Fill the L1 set containing line 0 beyond capacity (12 ways,
        // 64 sets: lines k*64 all map to set 0).
        for k in 0..13u64 {
            let addr = k * 64 * 64;
            h.access_data(0x100 + k, addr, 1000 * (k + 1), false).unwrap();
        }
        // Line 0 was evicted from L1 but lives in L2.
        let t = h.access_data(0x100, 0, 100_000, false).unwrap();
        assert_eq!(t, 100_000 + 14, "L2 hit latency is 14");
    }

    #[test]
    fn mshr_exhaustion_stalls_loads_not_stores() {
        let mut cfg = CoreConfig::golden_cove();
        cfg.l1d.mshrs = 2;
        cfg.prefetch_degree = 0;
        let mut h = Hierarchy::new(&cfg);
        assert!(h.access_data(1, 0x10000, 0, false).is_some());
        assert!(h.access_data(2, 0x20000, 0, false).is_some());
        assert!(h.access_data(3, 0x30000, 0, false).is_none(), "MSHRs full");
        assert!(h.access_data(4, 0x40000, 0, true).is_some(), "stores do not stall");
        // After the fills complete, MSHRs free up.
        assert!(h.access_data(3, 0x30000, 200, false).is_some());
    }

    #[test]
    fn stride_prefetcher_hides_latency() {
        let mut cfg = CoreConfig::golden_cove();
        cfg.prefetch_degree = 3;
        let mut h = Hierarchy::new(&cfg);
        let pc = 0x400;
        let mut now = 0u64;
        let stride = 64u64;
        let mut miss_latencies = Vec::new();
        for i in 0..32u64 {
            let addr = 0x10_0000 + i * stride;
            let done = h.access_data(pc, addr, now, false).unwrap();
            miss_latencies.push(done - now);
            now += 300; // enough for fills to land
        }
        assert!(h.prefetches_issued > 0);
        // Later iterations should be L1 hits thanks to the prefetcher.
        let tail: Vec<_> = miss_latencies[10..].to_vec();
        assert!(
            tail.iter().filter(|&&l| l <= 5).count() > tail.len() / 2,
            "prefetching should convert most steady-state accesses to hits: {tail:?}"
        );
    }

    #[test]
    fn icache_miss_then_hit() {
        let mut h = hierarchy();
        let t = h.access_inst(0x1000, 0);
        assert!(t > 0, "cold I-fetch stalls");
        let t2 = h.access_inst(0x1004, 500);
        assert_eq!(t2, 500, "same line hits");
    }
}
