//! A compact binary codec for [`Trace`]s.
//!
//! Workload generation is deterministic but not free (ground-truth
//! bookkeeping walks a byte-granular last-writer map); long experiment
//! campaigns can encode each generated trace once and reload it from disk.
//! The format is self-contained little-endian with a magic/version header —
//! no external serialisation dependency.

use std::io::{self, Read, Write};

use mascot::history::BranchKind;
use mascot::prediction::BypassClass;

use crate::uop::{Trace, TraceDep, Uop, UopKind};

const MAGIC: &[u8; 4] = b"MTRC";
const VERSION: u8 = 1;
const NO_REG: u8 = 0xff;

/// Errors produced while decoding a trace.
#[derive(Debug)]
pub enum CodecError {
    /// The buffer does not start with the `MTRC` magic.
    BadMagic,
    /// The format version is not supported.
    BadVersion(u8),
    /// The buffer ended prematurely or a field was out of range.
    Corrupt(&'static str),
    /// An underlying I/O error.
    Io(io::Error),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a MASCOT trace (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CodecError::Corrupt("truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

fn put_reg(out: &mut Vec<u8>, r: Option<u8>) {
    out.push(r.unwrap_or(NO_REG));
}

fn get_reg(r: u8) -> Option<u8> {
    (r != NO_REG).then_some(r)
}

fn class_code(c: BypassClass) -> u8 {
    match c {
        BypassClass::DirectBypass => 0,
        BypassClass::NoOffset => 1,
        BypassClass::Offset => 2,
        BypassClass::MdpOnly => 3,
    }
}

fn class_from(code: u8) -> Result<BypassClass, CodecError> {
    Ok(match code {
        0 => BypassClass::DirectBypass,
        1 => BypassClass::NoOffset,
        2 => BypassClass::Offset,
        3 => BypassClass::MdpOnly,
        _ => return Err(CodecError::Corrupt("bypass class")),
    })
}

/// Encodes a trace into the binary format.
pub fn encode(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + trace.len() * 16);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    let name = trace.name.as_bytes();
    out.extend_from_slice(&(name.len().min(u16::MAX as usize) as u16).to_le_bytes());
    out.extend_from_slice(&name[..name.len().min(u16::MAX as usize)]);
    out.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for uop in &trace.uops {
        out.extend_from_slice(&uop.pc.to_le_bytes());
        put_reg(&mut out, uop.srcs[0]);
        put_reg(&mut out, uop.srcs[1]);
        put_reg(&mut out, uop.dst);
        out.push(uop.latency);
        match uop.kind {
            UopKind::Alu => out.push(0),
            UopKind::Load { addr, size, dep } => {
                out.push(1);
                out.extend_from_slice(&addr.to_le_bytes());
                out.push(size);
                match dep {
                    None => out.push(0),
                    Some(d) => {
                        out.push(1);
                        out.extend_from_slice(&d.distance.to_le_bytes());
                        out.push(class_code(d.class));
                        out.extend_from_slice(&d.store_pc.to_le_bytes());
                        out.extend_from_slice(&d.branches_between.to_le_bytes());
                    }
                }
            }
            UopKind::Store { addr, size } => {
                out.push(2);
                out.extend_from_slice(&addr.to_le_bytes());
                out.push(size);
            }
            UopKind::Branch {
                kind,
                taken,
                target,
            } => {
                out.push(3);
                out.push(match kind {
                    BranchKind::Conditional => 0,
                    BranchKind::Indirect => 1,
                });
                out.push(u8::from(taken));
                out.extend_from_slice(&target.to_le_bytes());
            }
        }
    }
    out
}

/// Decodes a trace from the binary format.
///
/// # Errors
///
/// Returns a [`CodecError`] on bad magic, unsupported version, truncation,
/// or out-of-range field values.
pub fn decode(bytes: &[u8]) -> Result<Trace, CodecError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let name_len = usize::from(r.u16()?);
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| CodecError::Corrupt("name is not UTF-8"))?
        .to_string();
    let count = r.u64()?;
    // Every uop occupies at least 13 bytes (pc + regs + latency + kind tag);
    // bound the claimed count by the bytes actually remaining *before*
    // allocating, so an attacker-controlled header can never drive
    // `Vec::with_capacity` beyond the input's own size.
    const MIN_UOP_BYTES: u64 = 13;
    let remaining = (bytes.len() - r.pos) as u64;
    if count.checked_mul(MIN_UOP_BYTES).is_none_or(|need| need > remaining) {
        return Err(CodecError::Corrupt("count exceeds payload"));
    }
    let mut uops = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let pc = r.u64()?;
        let srcs = [get_reg(r.u8()?), get_reg(r.u8()?)];
        let dst = get_reg(r.u8()?);
        let latency = r.u8()?;
        let kind = match r.u8()? {
            0 => UopKind::Alu,
            1 => {
                let addr = r.u64()?;
                let size = r.u8()?;
                let dep = match r.u8()? {
                    0 => None,
                    1 => Some(TraceDep {
                        distance: r.u32()?,
                        class: class_from(r.u8()?)?,
                        store_pc: r.u64()?,
                        branches_between: r.u32()?,
                    }),
                    _ => return Err(CodecError::Corrupt("dep flag")),
                };
                UopKind::Load { addr, size, dep }
            }
            2 => {
                let addr = r.u64()?;
                let size = r.u8()?;
                UopKind::Store { addr, size }
            }
            3 => {
                let kind = match r.u8()? {
                    0 => BranchKind::Conditional,
                    1 => BranchKind::Indirect,
                    _ => return Err(CodecError::Corrupt("branch kind")),
                };
                let taken = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(CodecError::Corrupt("taken flag")),
                };
                let target = r.u64()?;
                UopKind::Branch {
                    kind,
                    taken,
                    target,
                }
            }
            _ => return Err(CodecError::Corrupt("uop kind")),
        };
        uops.push(Uop {
            pc,
            kind,
            srcs,
            dst,
            latency,
        });
    }
    if r.pos != bytes.len() {
        return Err(CodecError::Corrupt("trailing bytes"));
    }
    Ok(Trace::new(name, uops))
}

/// Writes a trace to any writer (e.g. a file). A mutable reference works
/// too: `save(&trace, &mut file)`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(&encode(trace))
}

/// Reads a trace from any reader.
///
/// # Errors
///
/// Returns a [`CodecError`] for I/O failures or malformed content.
pub fn load<R: Read>(mut r: R) -> Result<Trace, CodecError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    decode(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "sample",
            vec![
                Uop::alu(0x100, [Some(1), None], Some(2), 3),
                Uop::store(0x104, 0x9000, 8, Some(1), Some(2)),
                Uop::load(
                    0x108,
                    0x9000,
                    4,
                    Some(3),
                    4,
                    Some(TraceDep {
                        distance: 1,
                        class: BypassClass::NoOffset,
                        store_pc: 0x104,
                        branches_between: 2,
                    }),
                ),
                Uop::branch(0x10c, true, 0x200, None),
                Uop::indirect_branch(0x110, 0x300, Some(5)),
                Uop::load(0x114, 0xa000, 8, None, 6, None),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let bytes = encode(&t);
        let back = decode(&bytes).unwrap();
        assert_eq!(t.name, back.name);
        assert_eq!(t.uops, back.uops);
    }

    #[test]
    fn roundtrip_through_io() {
        let t = sample();
        let mut buf = Vec::new();
        save(&t, &mut buf).unwrap();
        let back = load(buf.as_slice()).unwrap();
        assert_eq!(t.uops, back.uops);
    }

    #[test]
    fn roundtrip_generated_workload() {
        // A realistic trace (exercises every uop kind and dep class).
        let t = crate::uop::Trace::new(
            "mix",
            sample().uops.iter().cycle().take(1000).copied().collect(),
        );
        let back = decode(&encode(&t)).unwrap();
        assert_eq!(t.uops, back.uops);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(decode(b"NOPE"), Err(CodecError::BadMagic)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&sample());
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(CodecError::BadVersion(99))));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = encode(&sample());
        for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn rejects_corrupt_kind() {
        let t = Trace::new("t", vec![Uop::alu(0, [None, None], None, 1)]);
        let mut bytes = encode(&t);
        let kind_pos = bytes.len() - 1; // last byte is the ALU kind tag
        bytes[kind_pos] = 42;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::BadVersion(7).to_string().contains('7'));
        assert!(CodecError::Corrupt("x").to_string().contains('x'));
    }
}
