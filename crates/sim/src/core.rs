//! The cycle-level out-of-order core model.
//!
//! A trace-driven engine modelling the Table-I pipeline: N-wide fetch/decode
//! gated by the L1I and branch prediction, dispatch into ROB/IQ/LQ/SB,
//! dataflow issue over load/store/ALU ports, a load-store queue with
//! store-to-load forwarding and memory-order-violation detection, optional
//! speculative memory bypassing, in-order commit with predictor training,
//! and post-commit store drain.
//!
//! ## Speculation model
//!
//! Loads consult the memory-dependence predictor at decode (Fig. 4):
//!
//! * **NoDependence** — issue as soon as the address operands are ready.
//! * **Dependence(d)** — additionally wait until the store `d` back has
//!   issued (stores issue when address *and* data are ready, §V), then
//!   forward from it.
//! * **Bypass(d)** — dependents receive the store's data one cycle after
//!   the store issues, without waiting for the load; the load still
//!   executes to verify the speculation (value/address check, §V).
//!
//! A load that executes while its true in-flight source store is still
//! unissued reads stale data; when that store issues, the load and all
//! younger micro-ops are squashed and re-fetched, and the re-fetched load
//! executes conservatively (waits for all prior stores; never bypasses) to
//! guarantee forward progress. Failed bypasses squash at verification time.
//!
//! Because the engine is trace-driven, squash/replay re-decodes the same
//! micro-ops; speculative global history is rewound to the architectural
//! path on every squash (both for the MDP predictor and the TAGE branch
//! predictor), exactly as checkpointed history restoration would behave.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mascot::history::{BranchEvent, BranchKind};
use mascot::prediction::{
    GroundTruth, LoadOutcome, MemDepPredictor, MemDepPrediction, ObservedDependence,
    PredictReq, StoreDistance,
};

use crate::branch::TagePredictor;
use crate::cache::Hierarchy;
use crate::config::CoreConfig;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::stats::SimStats;
use crate::uop::{Trace, Uop, UopKind};

/// Cycles without a commit after which the engine declares a hang.
const WATCHDOG_CYCLES: u64 = 500_000;
/// Branch events retained for history rewind (covers the longest predictor
/// history with slack).
const REWIND_WINDOW: usize = 320;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Dispatched, waiting for operands.
    Waiting,
    /// Operands ready, waiting for a port.
    Ready,
    /// Executing.
    Issued,
    /// Finished; eligible for commit.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    ValueReady,
    Complete,
}

/// How a load obtained its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Served {
    Cache,
    Forwarded,
    Bypassed,
}

#[derive(Debug)]
struct LoadInfo<M> {
    prediction: MemDepPrediction,
    meta: Option<M>,
    /// True when the bypass datapath was actually engaged.
    effective_bypass: bool,
    /// Set at issue: whether an engaged bypass delivered the right value.
    bypass_wrong: bool,
    /// Completion is deferred until the bypass value arrives.
    awaiting_bypass_value: bool,
    outcome: LoadOutcome,
    served: Served,
}

#[derive(Debug)]
enum Payload<M> {
    Alu,
    Branch,
    Load(Box<LoadInfo<M>>),
    Store { store_seq: u64 },
}

/// Which issue-port class a micro-op competes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortClass {
    Store,
    Load,
    Alu,
}

impl<M> Payload<M> {
    fn port_class(&self) -> PortClass {
        match self {
            Payload::Store { .. } => PortClass::Store,
            Payload::Load(_) => PortClass::Load,
            Payload::Alu | Payload::Branch => PortClass::Alu,
        }
    }
}

#[derive(Debug)]
struct RobEntry<M> {
    id: u64,
    trace_idx: usize,
    dispatch_cycle: u64,
    issue_cycle: u64,
    state: State,
    deps_remaining: u32,
    dependents: Vec<u64>,
    value_ready_at: Option<u64>,
    complete_at: Option<u64>,
    has_load_producer: bool,
    dst: Option<u8>,
    branch_log_len: usize,
    store_count_at_dispatch: u64,
    payload: Payload<M>,
}

#[derive(Debug)]
struct SbEntry {
    store_seq: u64,
    pc: u64,
    addr: u64,
    issued: bool,
    /// Commit cycle, once retired (drain eligibility is delayed from here).
    committed_at: Option<u64>,
    /// Loads stalled on this store's issue (MDP waits + conservative).
    waiting_loads: Vec<u64>,
    /// Bypassed loads whose value this store provides.
    bypass_waiters: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
enum SquashReason {
    MemoryOrder,
    BypassFail,
}

/// A deliberately injected engine defect, used to exercise the audit layer
/// (`Simulator::with_audit`, `crates/audit`). Each variant disables one
/// bookkeeping step the cycle auditor is supposed to catch; production runs
/// never set one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// `squash_from` keeps flushed load ids in the memory-order violation
    /// table (a skipped LQ invalidation).
    SkipViolationPurge,
    /// `squash_from` leaves flushed `Ready` micro-ops in the ready masks.
    SkipReadyMaskPurge,
    /// `commit_load` drops the served-path accounting for forwarded loads.
    SkipServedAccounting,
}

/// Age-ordered ready bitmap: one bit per in-flight micro-op.
///
/// Ids are mapped to bits by `id & mask` with a power-of-two capacity of at
/// least `rob_entries`, so the ids in flight (a contiguous window no wider
/// than the ROB) never collide. Insert/remove are single bit operations and
/// the issue stage recovers the oldest ready ids with a short word scan —
/// no ordered-set node allocation or pointer chasing on the per-cycle path.
#[derive(Debug)]
struct ReadyMask {
    words: Vec<u64>,
    mask: u64,
    /// Number of set bits: lets the issue stage skip the word scan outright
    /// on the (common, in memory-bound phases) nothing-ready cycles.
    count: u32,
}

impl ReadyMask {
    fn new(rob_entries: usize) -> Self {
        let cap = rob_entries.next_power_of_two().max(64);
        Self {
            words: vec![0; cap / 64],
            mask: cap as u64 - 1,
            count: 0,
        }
    }

    #[inline]
    fn insert(&mut self, id: u64) {
        let b = (id & self.mask) as usize;
        let bit = 1u64 << (b % 64);
        debug_assert_eq!(self.words[b / 64] & bit, 0, "ready ids are unique");
        self.words[b / 64] |= bit;
        self.count += 1;
    }

    #[inline]
    fn remove(&mut self, id: u64) {
        let b = (id & self.mask) as usize;
        let bit = 1u64 << (b % 64);
        debug_assert_ne!(self.words[b / 64] & bit, 0, "removing a present id");
        self.words[b / 64] &= !bit;
        self.count -= 1;
    }

    /// Membership test (audit path; not used by the issue loop).
    #[inline]
    fn contains(&self, id: u64) -> bool {
        let b = (id & self.mask) as usize;
        self.words[b / 64] & (1u64 << (b % 64)) != 0
    }

    fn len(&self) -> u32 {
        self.count
    }

    /// Appends up to `k` ready ids to `out`, oldest first, where `front` is
    /// the oldest id that can possibly be in the mask (the ROB head).
    fn pick_oldest(&self, front: u64, k: usize, out: &mut Vec<u64>) {
        if k == 0 || self.count == 0 {
            return;
        }
        let k = k.min(self.count as usize);
        let nw = self.words.len();
        let cap = nw * 64;
        let start = (front & self.mask) as usize;
        let (sw, sb) = (start / 64, start % 64);
        let mut taken = 0;
        // One lap around the circular window: the start word's upper bits,
        // the following words, then the start word's lower (wrapped) bits.
        for step in 0..=nw {
            let wi = (sw + step) % nw;
            let mut w = self.words[wi];
            if step == 0 {
                w &= !0u64 << sb;
            } else if step == nw {
                if sb == 0 {
                    break;
                }
                w &= !(!0u64 << sb);
            }
            while w != 0 {
                let b = wi * 64 + w.trailing_zeros() as usize;
                out.push(front + ((b + cap - start) % cap) as u64);
                taken += 1;
                if taken == k {
                    return;
                }
                w &= w - 1;
            }
        }
    }
}

/// Calendar-style event queue (timing wheel).
///
/// Every schedule distance in the engine is bounded: ALU latencies fit in a
/// byte, and memory completions from [`Hierarchy::access_data`] land within
/// `memory_latency` cycles (in-flight fills were started at an earlier
/// cycle, so a merged completion is still within the bound of `now`). The
/// wheel is sized from the configuration to cover that bound, making
/// scheduling O(1) and per-cycle retrieval O(due events) instead of the
/// former binary heap's O(log n) per operation. Anything beyond the bound
/// (defensive; unreachable with a validated configuration) spills into a
/// small heap consulted once per cycle.
#[derive(Debug)]
struct EventWheel {
    /// `slots[c & mask]` holds the `(id, kind)` events due at cycle `c`.
    /// The strict `delta <= mask` push bound guarantees a slot never mixes
    /// cycles.
    slots: Vec<Vec<(u64, u8)>>,
    mask: u64,
    overflow: BinaryHeap<Reverse<(u64, u64, u8)>>,
}

impl EventWheel {
    fn new(max_delta: u64) -> Self {
        let len = (max_delta + 2).next_power_of_two().max(64) as usize;
        Self {
            slots: vec![Vec::new(); len],
            mask: len as u64 - 1,
            overflow: BinaryHeap::new(),
        }
    }

    #[inline]
    fn push(&mut self, now: u64, cycle: u64, id: u64, kind: u8) {
        // A hard error, not a debug_assert: a same-cycle push would land in
        // the slot `process_events` has already drained this cycle, so the
        // event would silently fire a whole wheel revolution late — a
        // timing corruption far harder to diagnose than this panic.
        assert!(
            cycle > now,
            "events fire strictly in the future (scheduled cycle {cycle} at now {now})"
        );
        if cycle - now <= self.mask {
            self.slots[(cycle & self.mask) as usize].push((id, kind));
        } else {
            self.overflow.push(Reverse((cycle, id, kind)));
        }
    }

    /// Takes the events due at `now`, sorted by `(id, kind)` — the delivery
    /// order of the binary heap this wheel replaced, which the golden-stats
    /// snapshot pins. Return the buffer via [`EventWheel::restore`].
    fn take_due(&mut self, now: u64) -> Vec<(u64, u8)> {
        let mut due = std::mem::take(&mut self.slots[(now & self.mask) as usize]);
        while let Some(&Reverse((cycle, id, kind))) = self.overflow.peek() {
            if cycle > now {
                break;
            }
            self.overflow.pop();
            due.push((id, kind));
        }
        if due.len() > 1 {
            due.sort_unstable();
        }
        due
    }

    /// Hands the drained `take_due` buffer back to its slot so the
    /// allocation is reused on the next lap around the wheel.
    fn restore(&mut self, now: u64, mut buf: Vec<(u64, u8)>) {
        buf.clear();
        self.slots[(now & self.mask) as usize] = buf;
    }
}

/// The simulation engine. Construct with [`Simulator::new`] and drive with
/// [`Simulator::run`], or use the [`simulate`] convenience function.
pub struct Simulator<'a, P: MemDepPredictor> {
    trace: &'a Trace,
    cfg: &'a CoreConfig,
    pred: &'a mut P,
    bp: TagePredictor,
    mem: Hierarchy,

    now: u64,
    fetch_idx: usize,
    fetch_resume_at: u64,
    pending_redirect: Option<u64>,

    rob: VecDeque<RobEntry<P::Meta>>,
    next_id: u64,
    iq_count: u32,
    lq_count: u32,
    sb: VecDeque<SbEntry>,
    store_seq_next: u64,

    reg_writer: [Option<u64>; 64],
    /// Ready micro-ops, partitioned by port class so the issue stage only
    /// ever looks at the oldest port-width candidates of each class instead
    /// of scanning the whole ready window.
    ready_stores: ReadyMask,
    ready_loads: ReadyMask,
    ready_alus: ReadyMask,
    events: EventWheel,
    /// Issue-stage scratch, reused every cycle: this cycle's issue
    /// candidates (at most one port-width per class).
    scratch_issue: Vec<u64>,
    /// Dispatch-stage scratch for batched prediction of consecutive loads.
    batch_reqs: Vec<PredictReq>,
    batch_out: Vec<(MemDepPrediction, P::Meta)>,
    /// Recycled `Vec` allocations for dependent/waiter lists, and recycled
    /// `LoadInfo` boxes: the per-uop bookkeeping otherwise costs a handful
    /// of allocator round-trips per dispatched micro-op.
    list_pool: Vec<Vec<u64>>,
    load_pool: Vec<Box<LoadInfo<P::Meta>>>,
    /// store_seq → executed-stale loads awaiting that store's issue.
    violations: FxHashMap<u64, Vec<u64>>,
    pending_squashes: Vec<(u64, SquashReason)>,
    /// Trace indices that must replay conservatively after a squash.
    conservative: FxHashSet<usize>,
    /// Dependence observed by a squashed load instance, merged into the
    /// committed instance's training record when the replay no longer sees
    /// the (since-drained) store — the violation information a hardware LSQ
    /// snoop reports.
    replay_outcome: FxHashMap<usize, ObservedDependence>,

    branch_log: Vec<BranchEvent>,
    committed: u64,
    last_commit_cycle: u64,
    stats: SimStats,
    /// When set, the commit stage records a [`SimStats`] snapshot every
    /// time the committed-uop count crosses a multiple of this value —
    /// a pure observation that never perturbs pipeline timing (see
    /// [`run_interval_deltas`](Self::run_interval_deltas)).
    interval_uops: Option<u64>,
    interval_snaps: Vec<SimStats>,
    /// Cycles between `end_tuning_period` calls to the predictor (§IV-F);
    /// `None` disables periodic tuning snapshots.
    tuning_period: Option<u64>,

    /// Run the cycle auditor (`audit_cycle`) after every step. One
    /// predictable branch per cycle when disabled.
    audit: bool,
    /// Injected defect for audit-layer testing; `None` in production.
    fault: Option<Fault>,
    /// Micro-ops that entered the ROB (audit accounting only).
    audit_dispatched: u64,
    /// Micro-ops flushed by squashes (audit accounting only).
    audit_squashed: u64,
}

impl<P: MemDepPredictor> std::fmt::Debug for Simulator<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("trace", &self.trace.name)
            .field("cycle", &self.now)
            .field("committed", &self.committed)
            .field("fetch_idx", &self.fetch_idx)
            .field("rob_occupancy", &self.rob.len())
            .finish_non_exhaustive()
    }
}

impl<'a, P: MemDepPredictor> Simulator<'a, P> {
    /// Creates an engine over a trace, core configuration and predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn new(trace: &'a Trace, cfg: &'a CoreConfig, pred: &'a mut P) -> Self {
        cfg.validate().expect("invalid core configuration");
        Self {
            trace,
            cfg,
            pred,
            bp: TagePredictor::default(),
            mem: Hierarchy::new(cfg),
            now: 0,
            fetch_idx: 0,
            fetch_resume_at: 0,
            pending_redirect: None,
            rob: VecDeque::with_capacity(cfg.rob_entries as usize),
            next_id: 0,
            iq_count: 0,
            lq_count: 0,
            sb: VecDeque::with_capacity(cfg.sb_entries as usize),
            store_seq_next: 0,
            reg_writer: [None; 64],
            ready_stores: ReadyMask::new(cfg.rob_entries as usize),
            ready_loads: ReadyMask::new(cfg.rob_entries as usize),
            ready_alus: ReadyMask::new(cfg.rob_entries as usize),
            events: EventWheel::new(
                // ALU latencies are a byte; memory completions are bounded
                // by the slowest level of the hierarchy.
                255u64
                    .max(u64::from(cfg.memory_latency))
                    .max(u64::from(cfg.l1d.hit_latency))
                    .max(u64::from(cfg.l2.hit_latency))
                    .max(u64::from(cfg.l3.hit_latency)),
            ),
            scratch_issue: Vec::new(),
            batch_reqs: Vec::new(),
            batch_out: Vec::new(),
            list_pool: Vec::new(),
            load_pool: Vec::new(),
            violations: FxHashMap::default(),
            pending_squashes: Vec::new(),
            conservative: FxHashSet::default(),
            replay_outcome: FxHashMap::default(),
            branch_log: Vec::new(),
            committed: 0,
            last_commit_cycle: 0,
            stats: SimStats::default(),
            interval_uops: None,
            interval_snaps: Vec::new(),
            tuning_period: None,
            audit: false,
            fault: None,
            audit_dispatched: 0,
            audit_squashed: 0,
        }
    }

    /// Enables periodic predictor tuning snapshots every `cycles` cycles
    /// (the paper records F1 scores every 1 M cycles on 100 M-instruction
    /// SimPoints; scale proportionally for shorter traces).
    pub fn with_tuning_period(mut self, cycles: u64) -> Self {
        assert!(cycles > 0, "tuning period must be non-zero");
        self.tuning_period = Some(cycles);
        self
    }

    /// Enables the cycle auditor: after every cycle the full set of engine
    /// invariants (ROB id/age ordering, LQ/SB ↔ ROB consistency, ready-mask
    /// agreement, accounting identities) is validated and any violation
    /// panics with a description — in release builds too. Costs O(window)
    /// work per cycle; leave disabled for performance runs.
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Injects a deliberate engine defect (audit-layer testing only).
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables per-tenant misprediction attribution (DESIGN.md §12): loads
    /// with `pc < boundary` count toward [`SimStats::victim`], the rest
    /// toward [`SimStats::attacker`]. The adversarial traces place the
    /// attacker at `mascot_workloads::adversarial::TENANT_BOUNDARY`.
    ///
    /// # Panics
    ///
    /// Panics if `boundary` is zero (zero means "disabled" in the stats).
    pub fn with_tenant_split(mut self, boundary: u64) -> Self {
        assert!(boundary > 0, "tenant boundary must be non-zero");
        self.stats.tenant_boundary = boundary;
        self
    }

    /// Runs the simulation to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the engine makes no forward progress for
    /// `WATCHDOG_CYCLES` cycles (an engine bug, not a workload property).
    pub fn run(mut self) -> SimStats {
        self.run_to_end()
    }

    /// [`run`](Self::run) minus the consuming signature: drives the engine
    /// to completion, performs end-of-run finalisation and returns the
    /// final statistics, leaving `self` alive so callers can still read
    /// fields populated during the run (interval snapshots).
    fn run_to_end(&mut self) -> SimStats {
        self.run_until_committed(self.trace.len() as u64);
        if self.tuning_period.is_some() {
            self.pred.end_tuning_period(); // flush the final partial period
        }
        self.stats.cycles = self.now.max(1);
        self.stats.branch_mispredicts = self.bp.stats.cond_mispredicts;
        self.stats.indirect_mispredicts = self.bp.stats.indirect_mispredicts;
        self.stats.l1i_misses = self.mem.l1i.stats.misses;
        self.stats.l1d_misses = self.mem.l1d.stats.misses;
        self.stats.l2_misses = self.mem.l2.stats.misses;
        self.stats.l3_misses = self.mem.l3.stats.misses;
        if self.audit {
            self.audit_final();
        }
        self.stats.clone()
    }

    /// Steps the engine until at least `target` micro-ops have committed
    /// (clamped to the trace length). The pipeline is left live — uops past
    /// the boundary may already be in flight — so the engine can resume
    /// from exactly this point, which is what the sampled-simulation entry
    /// points below build on.
    fn run_until_committed(&mut self, target: u64) {
        let target = target.min(self.trace.len() as u64);
        while self.committed < target {
            self.step();
            assert!(
                self.now - self.last_commit_cycle < WATCHDOG_CYCLES,
                "no commit for {WATCHDOG_CYCLES} cycles at cycle {} \
                 (committed {}/{}, fetch_idx {}, rob {} entries)",
                self.now,
                self.committed,
                self.trace.len(),
                self.fetch_idx,
                self.rob.len()
            );
        }
    }

    /// The statistics as they stand at the current cycle, with the fields
    /// that [`run`](Self::run) normally derives at the end (cycle count,
    /// branch and cache-miss totals) filled in from live state — a valid
    /// subtrahend for [`SimStats::delta_since`].
    fn stats_snapshot(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.cycles = self.now;
        s.branch_mispredicts = self.bp.stats.cond_mispredicts;
        s.indirect_mispredicts = self.bp.stats.indirect_mispredicts;
        s.l1i_misses = self.mem.l1i.stats.misses;
        s.l1d_misses = self.mem.l1d.stats.misses;
        s.l2_misses = self.mem.l2.stats.misses;
        s.l3_misses = self.mem.l3.stats.misses;
        s
    }

    /// Runs to completion like [`run`](Self::run) but returns statistics
    /// for the *measured window only*: everything committed after the first
    /// `warmup_uops` commits. The warm-up primes predictor tables, branch
    /// history and the cache hierarchy without polluting the measurement —
    /// the representative-interval entry point of sampled simulation
    /// (DESIGN.md §13).
    ///
    /// The boundary snapshot is taken *inside* the commit stage the instant
    /// the count crosses `warmup_uops` — not after the enclosing cycle —
    /// so the measured delta covers exactly `trace.len() - warmup_uops`
    /// commits even when the commit stage retires several uops per cycle.
    /// (A post-cycle snapshot can overshoot by a commit-width, which on a
    /// short tail window would swallow the entire measurement.)
    ///
    /// # Panics
    ///
    /// Panics if `warmup_uops` covers the whole trace: there would be
    /// nothing left to measure.
    pub fn run_measured(mut self, warmup_uops: u64) -> SimStats {
        assert!(
            warmup_uops < self.trace.len() as u64,
            "warm-up ({warmup_uops} uops) covers the whole {}-uop window",
            self.trace.len()
        );
        if warmup_uops == 0 {
            return self.run_to_end();
        }
        self.interval_uops = Some(warmup_uops);
        let total = self.run_to_end();
        // The commit-stage hook fires at every multiple of `warmup_uops`;
        // the first snapshot is the exact warm boundary.
        let warm = std::mem::take(&mut self.interval_snaps)
            .into_iter()
            .next()
            .expect("commit hook must have fired at the warm boundary");
        total.delta_since(&warm)
    }

    /// Functional (architectural) warm-up: replays `uops` — typically the
    /// trace prefix *before* this simulator's own trace — through the cache
    /// hierarchy, the branch predictor and the memory-dependence predictor
    /// with no timing simulation at all. Afterwards every stateful
    /// structure holds the contents a full detailed run of that prefix
    /// would have left (caches by architectural reference order, branch
    /// tables by actual outcomes, dependence tables by the trace's
    /// ground-truth annotations), at an order of magnitude less cost than
    /// simulating it. This is what lets sampled simulation measure a
    /// mid-trace representative interval without paying for the whole
    /// prefix in detail (DESIGN.md §13).
    ///
    /// Statistics touched while warming (cache hit/miss tallies, branch
    /// counters) are charged to the pre-measurement epoch: callers pair
    /// this with [`run_measured`](Self::run_measured), whose snapshot delta
    /// subtracts them from the measured window.
    ///
    /// Must be called before the first [`step`](Self::run); the store
    /// sequence counter advances so in-window store distances line up with
    /// the prefix.
    pub fn warm_functional(&mut self, uops: &[Uop]) {
        assert_eq!(self.now, 0, "functional warm-up must precede the run");
        warm_replay(
            &mut self.mem,
            &mut self.bp,
            self.pred,
            &mut self.store_seq_next,
            uops,
        );
    }

    /// Adopts a [`FunctionalWarmer`]'s architectural state: cache
    /// hierarchy, branch predictor and store-sequence counter. The
    /// memory-dependence predictor is *not* copied (the simulator borrows
    /// it): construct the engine around a clone of
    /// [`FunctionalWarmer::predictor`] instead. Must precede the first
    /// cycle.
    pub fn seed_from_warmer(&mut self, warmer: &FunctionalWarmer<P>) {
        assert_eq!(self.now, 0, "warm-state restore must precede the run");
        assert_eq!(self.committed, 0, "warm-state restore must precede the run");
        self.mem = warmer.mem.clone();
        self.bp = warmer.bp.clone();
        self.store_seq_next = warmer.store_seq_next;
    }

    /// Runs to completion, returning one [`SimStats`] delta per
    /// `interval_uops`-commit interval (the last interval may be partial).
    /// Snapshots are taken *inside* the commit stage the instant the
    /// committed count crosses each boundary — pure observations that never
    /// alter pipeline timing — so each delta covers exactly `interval_uops`
    /// commits and the deltas telescope: accumulating them reproduces the
    /// unconstrained full run's statistics bit-exactly, which is what pins
    /// the sampled-simulation projection math (see `mascot-sampling`).
    ///
    /// # Panics
    ///
    /// Panics if `interval_uops` is zero.
    pub fn run_interval_deltas(mut self, interval_uops: u64) -> Vec<SimStats> {
        assert!(interval_uops > 0, "interval size must be non-zero");
        self.interval_uops = Some(interval_uops);
        let total = self.run_to_end();
        let mut snaps = std::mem::take(&mut self.interval_snaps);
        if (self.trace.len() as u64).is_multiple_of(interval_uops) {
            // The final boundary coincides with the end of the trace; the
            // finalised totals stand in for that snapshot (same counters,
            // plus the end-of-run cycle accounting).
            snaps.pop();
        }
        let mut out = Vec::with_capacity(snaps.len() + 1);
        let mut prev = SimStats::default();
        for snap in snaps {
            out.push(snap.delta_since(&prev));
            prev = snap;
        }
        out.push(total.delta_since(&prev));
        out
    }

    fn step(&mut self) {
        self.process_events();
        self.issue();
        self.apply_squashes();
        self.commit();
        self.drain_stores();
        self.dispatch();
        self.now += 1;
        if let Some(period) = self.tuning_period {
            if self.now.is_multiple_of(period) {
                self.pred.end_tuning_period();
            }
        }
        if self.audit {
            self.audit_cycle();
        }
    }

    // ---------------------------------------------------------- lookup

    fn pos_of(&self, id: u64) -> Option<usize> {
        // ROB ids are contiguous `front.id .. front.id + len`: dispatch
        // allocates them in order, commit pops the front, and a squash
        // truncates the tail *and rewinds the allocator* (see
        // `squash_from`), so the position is a subtraction, not a search.
        let front = self.rob.front()?.id;
        let idx = id.checked_sub(front)? as usize;
        if idx < self.rob.len() {
            debug_assert_eq!(self.rob[idx].id, id);
            Some(idx)
        } else {
            None
        }
    }

    fn entry(&self, id: u64) -> Option<&RobEntry<P::Meta>> {
        self.pos_of(id).map(|i| &self.rob[i])
    }

    fn entry_mut(&mut self, id: u64) -> Option<&mut RobEntry<P::Meta>> {
        self.pos_of(id).map(move |i| &mut self.rob[i])
    }

    fn sb_pos(&self, store_seq: u64) -> Option<usize> {
        let front = self.sb.front()?.store_seq;
        if store_seq < front {
            return None;
        }
        let idx = (store_seq - front) as usize;
        (idx < self.sb.len()).then_some(idx)
    }

    // ---------------------------------------------------------- recycling

    /// Returns a retired/flushed entry's heap allocations to the pools.
    fn recycle_entry(&mut self, e: RobEntry<P::Meta>) {
        self.recycle_list(e.dependents);
        if let Payload::Load(mut info) = e.payload {
            info.meta = None;
            self.load_pool.push(info);
        }
    }

    fn recycle_sb(&mut self, s: SbEntry) {
        self.recycle_list(s.waiting_loads);
        self.recycle_list(s.bypass_waiters);
    }

    #[inline]
    fn recycle_list(&mut self, mut v: Vec<u64>) {
        if v.capacity() > 0 {
            v.clear();
            self.list_pool.push(v);
        }
    }

    #[inline]
    fn fresh_list(&mut self) -> Vec<u64> {
        self.list_pool.pop().unwrap_or_default()
    }

    // ---------------------------------------------------------- events

    fn schedule(&mut self, cycle: u64, id: u64, kind: EventKind) {
        self.events.push(self.now, cycle, id, kind as u8);
    }

    fn process_events(&mut self) {
        // Handlers never schedule new events (all scheduling happens in the
        // issue and dispatch stages, strictly in the future), so the due
        // list is complete when taken.
        let due = self.events.take_due(self.now);
        for &(id, kind) in &due {
            if kind == EventKind::ValueReady as u8 {
                self.on_value_ready(id);
            } else {
                self.on_complete(id);
            }
        }
        self.events.restore(self.now, due);
    }

    fn on_value_ready(&mut self, id: u64) {
        let Some(pos) = self.pos_of(id) else { return };
        if self.rob[pos].value_ready_at != Some(self.now) {
            return; // stale event
        }
        let dependents = std::mem::take(&mut self.rob[pos].dependents);
        for &dep in &dependents {
            self.satisfy_dependency(dep);
        }
        self.recycle_list(dependents);
    }

    fn ready_class(&mut self, class: PortClass) -> &mut ReadyMask {
        match class {
            PortClass::Store => &mut self.ready_stores,
            PortClass::Load => &mut self.ready_loads,
            PortClass::Alu => &mut self.ready_alus,
        }
    }

    fn satisfy_dependency(&mut self, id: u64) {
        let Some(e) = self.entry_mut(id) else { return };
        debug_assert!(e.deps_remaining > 0);
        e.deps_remaining -= 1;
        if e.deps_remaining == 0 && e.state == State::Waiting {
            e.state = State::Ready;
            let class = e.payload.port_class();
            self.ready_class(class).insert(id);
        }
    }

    fn on_complete(&mut self, id: u64) {
        let Some(pos) = self.pos_of(id) else { return };
        let e = &mut self.rob[pos];
        if e.complete_at != Some(self.now) || e.state != State::Issued {
            return; // stale event
        }
        // A bypassed load may complete execution before its bypass value
        // arrives; commit must wait for the value.
        if let Payload::Load(info) = &mut e.payload {
            if info.effective_bypass && e.value_ready_at.is_none_or(|v| v > self.now) {
                info.awaiting_bypass_value = true;
                e.complete_at = None;
                return;
            }
        }
        e.state = State::Done;
        // Failed bypass: squash at verification.
        if let Payload::Load(info) = &e.payload {
            if info.effective_bypass && info.bypass_wrong {
                self.pending_squashes.push((id, SquashReason::BypassFail));
            }
        }
        // Mispredicted branch resolution lifts the frontend stall.
        if self.pending_redirect == Some(id) {
            self.pending_redirect = None;
            self.fetch_resume_at = self.now + u64::from(self.cfg.redirect_penalty);
        }
    }

    // ---------------------------------------------------------- issue

    fn issue(&mut self) {
        // Pick this cycle's candidates: the oldest port-width entries of
        // each class (the sets iterate in id = age order). Copying them to
        // scratch first keeps the sets free for `begin_issue` to mutate.
        // Store issue can wake *waiting* loads, but those enter the ready
        // sets only now and correctly sit out this cycle.
        // Nothing in flight means nothing ready.
        let front = match self.rob.front() {
            Some(e) => e.id,
            None => return,
        };
        let mut picks = std::mem::take(&mut self.scratch_issue);
        picks.clear();
        // All candidates are frozen before anything issues: a store issuing
        // this cycle may wake micro-ops waiting on it, and those become
        // eligible next cycle, not this one.
        self.ready_stores
            .pick_oldest(front, self.cfg.store_ports as usize, &mut picks);
        let loads_at = picks.len();
        self.ready_loads
            .pick_oldest(front, self.cfg.load_ports as usize, &mut picks);
        let alus_at = picks.len();
        self.ready_alus
            .pick_oldest(front, self.cfg.alu_ports as usize, &mut picks);

        // Stores issue first within a cycle so same-cycle loads can forward.
        for i in 0..loads_at {
            self.issue_store(picks[i]);
        }
        // A failed load issue (MSHR file full) stops the load stream for
        // the cycle and consumes no budget, so at most `load_ports`
        // candidates are ever examined.
        for i in loads_at..alus_at {
            if !self.issue_load(picks[i]) {
                break; // structural stall on the MSHR file: retry next cycle
            }
        }
        for i in alus_at..picks.len() {
            self.issue_alu(picks[i]);
        }

        self.scratch_issue = picks;
    }

    fn begin_issue(&mut self, id: u64) {
        self.iq_count -= 1;
        let now = self.now;
        let e = self.entry_mut(id).expect("issuing entry exists");
        debug_assert_eq!(e.state, State::Ready);
        e.state = State::Issued;
        e.issue_cycle = now;
        let class = e.payload.port_class();
        self.ready_class(class).remove(id);
    }

    fn finish_issue(&mut self, id: u64, complete: u64, value_ready: Option<u64>) {
        let e = self.entry_mut(id).expect("issued entry exists");
        e.complete_at = Some(complete);
        if let Some(v) = value_ready {
            e.value_ready_at = Some(v);
            self.schedule(v, id, EventKind::ValueReady);
        }
        self.schedule(complete, id, EventKind::Complete);
    }

    fn issue_alu(&mut self, id: u64) {
        self.begin_issue(id);
        let e = self.entry(id).expect("entry exists");
        let latency = u64::from(self.trace.uops[e.trace_idx].latency.max(1));
        let done = self.now + latency;
        self.finish_issue(id, done, Some(done));
    }

    fn issue_store(&mut self, id: u64) {
        self.begin_issue(id);
        let (store_seq, trace_idx) = {
            let e = self.entry(id).expect("entry exists");
            match &e.payload {
                Payload::Store { store_seq } => (*store_seq, e.trace_idx),
                _ => unreachable!("issue_store on non-store"),
            }
        };
        let _ = trace_idx;
        let done = self.now + 1;
        self.finish_issue(id, done, Some(done));

        // Resolve the SB entry and wake everyone waiting on it.
        let Some(pos) = self.sb_pos(store_seq) else {
            return;
        };
        self.sb[pos].issued = true;
        let waiting = std::mem::take(&mut self.sb[pos].waiting_loads);
        let bypassers = std::mem::take(&mut self.sb[pos].bypass_waiters);
        for &load in &waiting {
            self.satisfy_dependency(load);
        }
        self.recycle_list(waiting);
        let value_at = self.now + 1;
        for &load in &bypassers {
            if let Some(e) = self.entry_mut(load) {
                e.value_ready_at = Some(value_at);
                let deliver_complete = match &mut e.payload {
                    Payload::Load(info) if info.awaiting_bypass_value => {
                        info.awaiting_bypass_value = false;
                        e.complete_at = Some(value_at);
                        e.state = State::Issued; // still issued; re-arm completion
                        true
                    }
                    _ => false,
                };
                self.schedule(value_at, load, EventKind::ValueReady);
                if deliver_complete {
                    self.schedule(value_at, load, EventKind::Complete);
                }
            }
        }
        self.recycle_list(bypassers);
        // Memory-order violations: stale loads younger than this store.
        if let Some(loads) = self.violations.remove(&store_seq) {
            if let Some(&victim) = loads.iter().min() {
                self.pending_squashes.push((victim, SquashReason::MemoryOrder));
            }
            self.recycle_list(loads);
        }
    }

    /// Issues a load; returns false when blocked on a full MSHR file.
    fn issue_load(&mut self, id: u64) -> bool {
        let (trace_idx, store_count) = {
            let e = self.entry(id).expect("entry exists");
            (e.trace_idx, e.store_count_at_dispatch)
        };
        let (addr, dep) = match self.trace.uops[trace_idx].kind {
            UopKind::Load { addr, dep, .. } => (addr, dep),
            _ => unreachable!("issue_load on non-load"),
        };
        let pc = self.trace.uops[trace_idx].pc;

        // The observed in-flight dependence: the ground-truth source store,
        // if it is still in the store buffer.
        let inflight = dep.and_then(|d| {
            let seq = store_count.checked_sub(u64::from(d.distance))?;
            let pos = self.sb_pos(seq)?;
            Some((d, seq, pos))
        });

        let effective_bypass = {
            let e = self.entry(id).expect("entry exists");
            match &e.payload {
                Payload::Load(info) => info.effective_bypass,
                _ => unreachable!(),
            }
        };

        let completion;
        let mut served = Served::Cache;
        let mut outcome = LoadOutcome::independent();
        let mut register_violation = None;

        match inflight {
            Some((d, _seq, pos)) if self.sb[pos].issued => {
                // Store-to-load forwarding: SB searched in parallel with the
                // L1D, same latency (§V).
                completion = self.now + u64::from(self.cfg.l1d.hit_latency);
                served = Served::Forwarded;
                outcome = observed_outcome(&d);
            }
            Some((d, seq, _pos)) => {
                // The source store's address/data are unknown: the load
                // reads stale data. Squash fires when the store issues,
                // unless the bypass datapath supplied the value instead.
                let Some(done) = self.mem.access_data(pc, addr, self.now, false) else {
                    return false;
                };
                completion = done;
                outcome = observed_outcome(&d);
                if !effective_bypass {
                    register_violation = Some(seq);
                }
            }
            None => {
                let Some(done) = self.mem.access_data(pc, addr, self.now, false) else {
                    return false;
                };
                completion = done;
            }
        }

        self.begin_issue(id);
        if let Some(seq) = register_violation {
            self.violations.entry(seq).or_default().push(id);
        }

        // Bypass verification: correct iff the static ground truth names the
        // predicted store and the class is within the datapath's reach.
        let mut bypass_wrong = false;
        if effective_bypass {
            served = Served::Bypassed;
            let predicted = {
                let e = self.entry(id).expect("entry exists");
                match &e.payload {
                    Payload::Load(info) => info.prediction.distance(),
                    _ => unreachable!(),
                }
            };
            let ok = dep.is_some_and(|d| {
                StoreDistance::new(d.distance) == predicted
                    && (d.class.is_bypassable()
                        || (d.class == mascot::BypassClass::Offset
                            && self.pred.bypass_supports_offset()))
            });
            bypass_wrong = !ok;
        }

        {
            let e = self.entry_mut(id).expect("entry exists");
            if let Payload::Load(info) = &mut e.payload {
                info.outcome = outcome;
                info.served = served;
                info.bypass_wrong = bypass_wrong;
            }
        }
        let value_ready = if effective_bypass {
            None // scheduled by the bypassing store (or already at dispatch)
        } else {
            Some(completion)
        };
        self.finish_issue(id, completion, value_ready);
        true
    }

    // ---------------------------------------------------------- squash

    fn apply_squashes(&mut self) {
        if self.pending_squashes.is_empty() {
            return;
        }
        let squashes = std::mem::take(&mut self.pending_squashes);
        let &(victim, reason) = squashes
            .iter()
            .min_by_key(|s| s.0)
            .expect("checked non-empty");
        if self.pos_of(victim).is_none() {
            return; // already flushed by an earlier squash this cycle
        }
        match reason {
            SquashReason::MemoryOrder => self.stats.mem_order_squashes += 1,
            SquashReason::BypassFail => {
                self.stats.smb_squashes += 1;
                // A wrong bypass that squashes pre-commit replays
                // conservatively and usually commits demoted, so the
                // commit-time taxonomy alone would never see it; attribute
                // the false bypass to its tenant here, at the squash.
                let pos = self.pos_of(victim).expect("victim in ROB");
                let pc = self.trace.uops[self.rob[pos].trace_idx].pc;
                if let Some(t) = self.stats.tenant_mut(pc) {
                    t.false_bypasses += 1;
                }
            }
        }
        self.squash_from(victim);
    }

    fn squash_from(&mut self, victim: u64) {
        let vpos = self.pos_of(victim).expect("victim in ROB");
        let (trace_idx, branch_len, store_count) = {
            let v = &self.rob[vpos];
            (v.trace_idx, v.branch_log_len, v.store_count_at_dispatch)
        };
        // Preserve the violation information for the replayed instance's
        // training record (the store will usually have drained by then).
        if let Payload::Load(info) = &self.rob[vpos].payload {
            if let Some(dep) = info.outcome.dependence {
                self.replay_outcome.insert(trace_idx, dep);
            }
        }

        // Flush the victim and everything younger.
        while self.rob.len() > vpos {
            let e = self.rob.pop_back().expect("len > vpos");
            self.audit_squashed += 1;
            match &e.payload {
                Payload::Store { store_seq } => {
                    let back = self.sb.pop_back().expect("store has an SB entry");
                    debug_assert_eq!(back.store_seq, *store_seq);
                    self.recycle_sb(back);
                }
                Payload::Load(_) => self.lq_count -= 1,
                _ => {}
            }
            if matches!(e.state, State::Waiting | State::Ready) {
                self.iq_count -= 1;
            }
            if e.state == State::Ready && self.fault != Some(Fault::SkipReadyMaskPurge) {
                let class = e.payload.port_class();
                self.ready_class(class).remove(e.id);
            }
            self.recycle_entry(e);
        }

        // Rewind the id allocator so ROB ids stay contiguous (the O(1)
        // `pos_of` depends on it). Replayed micro-ops reuse the flushed
        // ids; in-flight events naming a flushed id are harmless against a
        // reused one: an event only acts when the entry's own
        // `value_ready_at`/`complete_at` matches the current cycle, and in
        // that case a genuine duplicate of the event exists anyway — the
        // handlers are idempotent (dependents are drained once, completion
        // flips Issued → Done once).
        self.next_id = victim;

        // Purge references to flushed micro-ops.
        for s in &mut self.sb {
            s.waiting_loads.retain(|&l| l < victim);
            s.bypass_waiters.retain(|&l| l < victim);
        }
        if self.fault != Some(Fault::SkipViolationPurge) {
            self.violations.retain(|_, loads| {
                loads.retain(|&l| l < victim);
                !loads.is_empty()
            });
        }
        for e in &mut self.rob {
            e.dependents.retain(|&d| d < victim);
        }
        if matches!(self.pending_redirect, Some(b) if b >= victim) {
            self.pending_redirect = None;
        }

        // Rebuild the rename map from the surviving window.
        self.reg_writer = [None; 64];
        for e in &self.rob {
            if let Some(dst) = e.dst {
                self.reg_writer[usize::from(dst)] = Some(e.id);
            }
        }

        // Rewind the speculative path.
        self.fetch_idx = trace_idx;
        self.store_seq_next = store_count;
        self.branch_log.truncate(branch_len);
        let tail_start = self.branch_log.len().saturating_sub(REWIND_WINDOW);
        self.pred.rewind_history(&self.branch_log[tail_start..]);
        self.bp.rewind_history(&self.branch_log[tail_start..]);

        self.conservative.insert(trace_idx);
        self.fetch_resume_at = self.now + u64::from(self.cfg.redirect_penalty);
    }

    // ---------------------------------------------------------- commit

    fn commit(&mut self) {
        let mut budget = self.cfg.commit_width;
        while budget > 0 {
            let Some(front) = self.rob.front() else { break };
            if front.state != State::Done || front.complete_at.is_none_or(|c| c > self.now) {
                break;
            }
            let e = self.rob.pop_front().expect("checked non-empty");
            budget -= 1;
            self.committed += 1;
            self.stats.committed_uops += 1;
            self.last_commit_cycle = self.now;
            if e.has_load_producer {
                self.stats.dependent_wait_cycles += e.issue_cycle - e.dispatch_cycle;
                self.stats.dependent_wait_count += 1;
            }
            if let Some(dst) = e.dst {
                if self.reg_writer[usize::from(dst)] == Some(e.id) {
                    self.reg_writer[usize::from(dst)] = None;
                }
            }
            match e.payload {
                Payload::Alu => {}
                Payload::Branch => self.stats.committed_branches += 1,
                Payload::Store { store_seq } => {
                    self.stats.committed_stores += 1;
                    let now = self.now;
                    if let Some(pos) = self.sb_pos(store_seq) {
                        self.sb[pos].committed_at = Some(now);
                    }
                }
                Payload::Load(mut info) => {
                    self.stats.committed_loads += 1;
                    self.lq_count -= 1;
                    self.conservative.remove(&e.trace_idx);
                    // Merge violation information from a squashed instance
                    // of this load if the replay saw the store drained.
                    if let Some(dep) = self.replay_outcome.remove(&e.trace_idx) {
                        if info.outcome.dependence.is_none() {
                            info.outcome = LoadOutcome::dependent(dep);
                        }
                    }
                    self.commit_load(e.trace_idx, &mut info);
                    self.load_pool.push(info);
                }
            }
            self.recycle_list(e.dependents);
            if let Some(iv) = self.interval_uops {
                if self.committed.is_multiple_of(iv) {
                    let snap = self.stats_snapshot();
                    self.interval_snaps.push(snap);
                }
            }
        }
    }

    fn commit_load(&mut self, trace_idx: usize, info: &mut LoadInfo<P::Meta>) {
        let pc = self.trace.uops[trace_idx].pc;
        // Per-tenant attribution (no-op unless `with_tenant_split` set).
        if let Some(t) = self.stats.tenant_mut(pc) {
            t.loads += 1;
        }
        // Prediction census (Fig. 10 left).
        match info.prediction {
            MemDepPrediction::NoDependence => self.stats.pred_no_dep += 1,
            MemDepPrediction::Dependence { .. } => self.stats.pred_mdp += 1,
            MemDepPrediction::Bypass { .. } => self.stats.pred_smb += 1,
        }
        match info.served {
            Served::Cache => self.stats.loads_from_cache += 1,
            Served::Forwarded if self.fault == Some(Fault::SkipServedAccounting) => {}
            Served::Forwarded => self.stats.loads_forwarded += 1,
            Served::Bypassed => self.stats.loads_bypassed += 1,
        }
        // In-flight dependence census (Fig. 2).
        if let Some(dep) = info.outcome.dependence {
            match dep.class {
                mascot::BypassClass::DirectBypass => self.stats.class_direct_bypass += 1,
                mascot::BypassClass::NoOffset => self.stats.class_no_offset += 1,
                mascot::BypassClass::Offset => self.stats.class_offset += 1,
                mascot::BypassClass::MdpOnly => self.stats.class_mdp_only += 1,
            }
        }
        // Misprediction taxonomy (Figs. 8 and 10 right).
        let outcome_dist = info.outcome.dependence.map(|d| d.distance);
        match info.prediction {
            MemDepPrediction::NoDependence => {
                if outcome_dist.is_some() {
                    self.stats.missed_dependencies += 1;
                    if let Some(t) = self.stats.tenant_mut(pc) {
                        t.missed_dependencies += 1;
                    }
                } else {
                    self.stats.correct_no_dep += 1;
                }
            }
            MemDepPrediction::Dependence { distance } => match outcome_dist {
                Some(d) if d == distance => self.stats.correct_mdp += 1,
                Some(_) => self.stats.wrong_store += 1,
                None => {
                    self.stats.false_dependencies += 1;
                    if let Some(t) = self.stats.tenant_mut(pc) {
                        t.false_dependencies += 1;
                    }
                }
            },
            MemDepPrediction::Bypass { distance } => {
                if info.effective_bypass && !info.bypass_wrong {
                    self.stats.correct_smb += 1;
                } else if info.effective_bypass {
                    self.stats.smb_errors += 1;
                    if let Some(t) = self.stats.tenant_mut(pc) {
                        t.false_bypasses += 1;
                    }
                } else {
                    // Demoted bypass (source store gone at dispatch).
                    match outcome_dist {
                        Some(d) if d == distance => self.stats.correct_mdp += 1,
                        Some(_) => self.stats.wrong_store += 1,
                        None => {
                            self.stats.false_dependencies += 1;
                            if let Some(t) = self.stats.tenant_mut(pc) {
                                t.false_dependencies += 1;
                            }
                        }
                    }
                }
            }
        }
        if let Some(meta) = info.meta.take() {
            self.pred.train(pc, meta, info.prediction, &info.outcome);
        }
    }

    // ---------------------------------------------------------- drain

    fn drain_stores(&mut self) {
        let mut budget = self.cfg.store_drain_per_cycle;
        let delay = u64::from(self.cfg.store_drain_delay);
        while budget > 0 {
            let Some(front) = self.sb.front() else { break };
            let eligible = front.issued
                && front
                    .committed_at
                    .is_some_and(|c| self.now >= c + delay);
            if !eligible {
                break;
            }
            let s = self.sb.pop_front().expect("checked non-empty");
            let _ = self.mem.access_data(s.pc, s.addr, self.now, true);
            self.recycle_sb(s);
            budget -= 1;
        }
    }

    // ---------------------------------------------------------- dispatch

    fn dispatch(&mut self) {
        if self.fetch_idx >= self.trace.len() {
            return;
        }
        if self.now < self.fetch_resume_at {
            self.stats.stall_frontend += 1;
            return;
        }
        let mut budget = self.cfg.fetch_width;
        let mut dispatched = 0u32;
        let mut blocker: Option<&'static str> = None;
        while budget > 0 {
            if self.fetch_idx >= self.trace.len() {
                break;
            }
            if self.rob.len() >= self.cfg.rob_entries as usize {
                blocker = Some("rob");
                break;
            }
            if self.iq_count >= self.cfg.iq_entries {
                blocker = Some("iq");
                break;
            }
            let uop = self.trace.uops[self.fetch_idx];
            match uop.kind {
                UopKind::Load { .. } if self.lq_count >= self.cfg.lq_entries => {
                    blocker = Some("lq");
                    break;
                }
                UopKind::Store { .. } if self.sb.len() >= self.cfg.sb_entries as usize => {
                    blocker = Some("sb");
                    break;
                }
                _ => {}
            }
            if matches!(uop.kind, UopKind::Load { .. }) {
                // Batched path: a maximal run of consecutive loads shares one
                // predictor probe. No store, branch, or memory access happens
                // between consecutive load dispatches, so a single
                // `predict_batch` is sequentially identical to per-load
                // `predict` calls (and all loads in the run see the same
                // store count).
                let max_n = (budget as usize)
                    .min(self.cfg.rob_entries as usize - self.rob.len())
                    .min((self.cfg.iq_entries - self.iq_count) as usize)
                    .min((self.cfg.lq_entries - self.lq_count) as usize);
                let store_count = self.store_seq_next;
                self.batch_reqs.clear();
                let mut stalled_at: Option<u64> = None;
                while self.batch_reqs.len() < max_n {
                    let idx = self.fetch_idx + self.batch_reqs.len();
                    if idx >= self.trace.len() {
                        break;
                    }
                    let u = self.trace.uops[idx];
                    let UopKind::Load { dep, .. } = u.kind else {
                        break;
                    };
                    let avail = self.mem.access_inst(u.pc, self.now);
                    if avail > self.now {
                        stalled_at = Some(avail);
                        break;
                    }
                    let oracle = dep.and_then(|d| {
                        Some(GroundTruth {
                            distance: StoreDistance::new(d.distance)?,
                            class: d.class,
                        })
                    });
                    self.batch_reqs.push(PredictReq {
                        pc: u.pc,
                        store_seq: store_count,
                        oracle,
                    });
                }
                let mut out = std::mem::take(&mut self.batch_out);
                self.pred.predict_batch(&self.batch_reqs, &mut out);
                for pm in out.drain(..) {
                    let u = self.trace.uops[self.fetch_idx];
                    let stall = self.dispatch_one_inner(u, Some(pm));
                    debug_assert!(!stall, "loads never stall the frontend");
                    budget -= 1;
                    dispatched += 1;
                    self.fetch_idx += 1;
                }
                self.batch_out = out;
                if let Some(avail) = stalled_at {
                    self.fetch_resume_at = avail;
                    blocker = Some("frontend");
                    break;
                }
                continue;
            }
            let avail = self.mem.access_inst(uop.pc, self.now);
            if avail > self.now {
                self.fetch_resume_at = avail;
                blocker = Some("frontend");
                break;
            }
            let stall = self.dispatch_one(uop);
            budget -= 1;
            dispatched += 1;
            self.fetch_idx += 1;
            if stall {
                break;
            }
        }
        if dispatched == 0 {
            match blocker {
                Some("rob") => self.stats.stall_rob += 1,
                Some("iq") => self.stats.stall_iq += 1,
                Some("lq") => self.stats.stall_lq += 1,
                Some("sb") => self.stats.stall_sb += 1,
                Some(_) => self.stats.stall_frontend += 1,
                None => {}
            }
        }
    }

    /// Dispatches one micro-op; returns true when the frontend must stall
    /// (mispredicted branch).
    fn dispatch_one(&mut self, uop: Uop) -> bool {
        self.dispatch_one_inner(uop, None)
    }

    /// Dispatch with an optional precomputed load prediction (the batched
    /// dispatch path probes the predictor once for a run of loads).
    fn dispatch_one_inner(
        &mut self,
        uop: Uop,
        precomputed: Option<(MemDepPrediction, P::Meta)>,
    ) -> bool {
        let id = self.next_id;
        self.next_id += 1;
        self.audit_dispatched += 1;
        let trace_idx = self.fetch_idx;

        // Register dataflow (a micro-op has at most two sources).
        let mut deps = 0u32;
        let mut has_load_producer = false;
        let mut writers = [0u64; 2];
        let mut n_writers = 0usize;
        for src in uop.srcs.iter().flatten() {
            if let Some(writer) = self.reg_writer[usize::from(*src)] {
                if let Some(w) = self.entry(writer) {
                    let pending = w.value_ready_at.is_none_or(|t| t > self.now);
                    if matches!(w.payload, Payload::Load(_)) {
                        has_load_producer = true;
                    }
                    if pending {
                        deps += 1;
                        writers[n_writers] = writer;
                        n_writers += 1;
                    }
                }
            }
        }
        for &writer in &writers[..n_writers] {
            let Some(pos) = self.pos_of(writer) else { continue };
            if self.rob[pos].dependents.capacity() == 0 {
                self.rob[pos].dependents = self.list_pool.pop().unwrap_or_default();
            }
            self.rob[pos].dependents.push(id);
        }

        let store_count = self.store_seq_next;
        let mut payload = Payload::Alu;
        let mut frontend_stall = false;
        // Set when a bypassed load's source store has already issued at
        // dispatch: the value arrives next cycle.
        let mut early_value_at: Option<u64> = None;

        match uop.kind {
            UopKind::Alu => {}
            UopKind::Branch {
                kind,
                taken,
                target,
            } => {
                payload = Payload::Branch;
                let correct = match kind {
                    BranchKind::Conditional => self.bp.predict_and_train(uop.pc, taken),
                    BranchKind::Indirect => self.bp.predict_indirect_and_train(uop.pc, target),
                };
                let ev = BranchEvent {
                    pc: uop.pc,
                    kind,
                    taken,
                    target,
                };
                self.bp.on_branch(&ev);
                self.pred.on_branch(&ev);
                self.branch_log.push(ev);
                if !correct {
                    self.pending_redirect = Some(id);
                    self.fetch_resume_at = u64::MAX;
                    frontend_stall = true;
                }
            }
            UopKind::Store { addr, .. } => {
                let store_seq = self.store_seq_next;
                self.store_seq_next += 1;
                // Store-store serialisation (Store Sets, §V): the predictor
                // may order this store behind an earlier one in its set.
                if let Some(d) = self.pred.predict_store_wait(uop.pc, store_seq) {
                    if let Some(pos) = store_seq
                        .checked_sub(u64::from(d.get()))
                        .and_then(|s| self.sb_pos(s))
                    {
                        if !self.sb[pos].issued {
                            self.sb[pos].waiting_loads.push(id);
                            deps += 1;
                        }
                    }
                }
                let waiting_loads = self.fresh_list();
                let bypass_waiters = self.fresh_list();
                self.sb.push_back(SbEntry {
                    store_seq,
                    pc: uop.pc,
                    addr,
                    issued: false,
                    committed_at: None,
                    waiting_loads,
                    bypass_waiters,
                });
                self.pred.on_store_dispatch(uop.pc, store_seq);
                payload = Payload::Store { store_seq };
            }
            UopKind::Load { dep, .. } => {
                self.lq_count += 1;
                let conservative = self.conservative.contains(&trace_idx);
                let (prediction, meta) = match precomputed {
                    Some(pm) => pm,
                    None => {
                        let oracle = dep.and_then(|d| {
                            Some(GroundTruth {
                                distance: StoreDistance::new(d.distance)?,
                                class: d.class,
                            })
                        });
                        self.pred.predict(uop.pc, store_count, oracle.as_ref())
                    }
                };

                let mut effective_bypass = false;
                match prediction {
                    MemDepPrediction::NoDependence => {}
                    MemDepPrediction::Dependence { distance }
                    | MemDepPrediction::Bypass { distance } => {
                        let target_seq = store_count.checked_sub(u64::from(distance.get()));
                        let sb_pos = target_seq.and_then(|s| self.sb_pos(s));
                        let wants_bypass = prediction.is_bypass() && !conservative;
                        match sb_pos {
                            Some(pos) if wants_bypass => {
                                effective_bypass = true;
                                if self.sb[pos].issued {
                                    // Value already available: deliver next cycle.
                                    let v = self.now + 1;
                                    early_value_at = Some(v);
                                    self.schedule(v, id, EventKind::ValueReady);
                                } else {
                                    self.sb[pos].bypass_waiters.push(id);
                                    // The load's own execution (the address/
                                    // value verification) also waits for the
                                    // store so it checks via the forwarding
                                    // path instead of a spurious cache access.
                                    self.sb[pos].waiting_loads.push(id);
                                    deps += 1;
                                }
                            }
                            Some(pos) if !self.sb[pos].issued => {
                                self.sb[pos].waiting_loads.push(id);
                                deps += 1;
                            }
                            Some(_) => {} // source store already resolved
                            None => {} // source store drained or out of range
                        }
                    }
                }
                if conservative {
                    // Wait for every currently-unissued prior store.
                    for i in 0..self.sb.len() {
                        if !self.sb[i].issued {
                            self.sb[i].waiting_loads.push(id);
                            deps += 1;
                        }
                    }
                }
                let info = LoadInfo {
                    prediction,
                    meta: Some(meta),
                    effective_bypass,
                    bypass_wrong: false,
                    awaiting_bypass_value: false,
                    outcome: LoadOutcome::independent(),
                    served: Served::Cache,
                };
                payload = Payload::Load(match self.load_pool.pop() {
                    Some(mut b) => {
                        *b = info;
                        b
                    }
                    None => Box::new(info),
                });
            }
        }

        if let Some(dst) = uop.dst {
            self.reg_writer[usize::from(dst)] = Some(id);
        }
        let state = if deps == 0 {
            State::Ready
        } else {
            State::Waiting
        };
        let value_ready_at = early_value_at;
        if state == State::Ready {
            let class = payload.port_class();
            self.ready_class(class).insert(id);
        }
        self.iq_count += 1;
        self.rob.push_back(RobEntry {
            id,
            trace_idx,
            dispatch_cycle: self.now,
            issue_cycle: self.now,
            state,
            deps_remaining: deps,
            dependents: Vec::new(),
            value_ready_at,
            complete_at: None,
            has_load_producer,
            dst: uop.dst,
            branch_log_len: self.branch_log.len().saturating_sub(
                // The branch's own event is context for *younger* uops, not
                // for itself: rewinding to this uop must exclude it.
                usize::from(matches!(uop.kind, UopKind::Branch { .. })),
            ),
            store_count_at_dispatch: store_count,
            payload,
        });
        frontend_stall
    }

    // ---------------------------------------------------------- audit

    /// Panics with an invariant name, engine context and detail. Cold and
    /// out-of-line so the check sites in `audit_cycle` stay cheap.
    #[cold]
    #[inline(never)]
    fn audit_fail(&self, invariant: &str, detail: String) -> ! {
        panic!(
            "audit violation [{invariant}] at cycle {} \
             (trace {:?}, committed {}/{}, fetch_idx {}, rob {} entries): {detail}",
            self.now,
            self.trace.name,
            self.committed,
            self.trace.len(),
            self.fetch_idx,
            self.rob.len()
        );
    }

    /// Validates the cross-structure invariants of the engine after a cycle.
    ///
    /// Runs in release builds (plain `if` checks, not `debug_assert!`); the
    /// cost is O(in-flight window) per cycle, which is why it hides behind
    /// [`Simulator::with_audit`].
    fn audit_cycle(&self) {
        // --- ROB: contiguous ids, monotone dispatch order, per-entry state.
        let mut iq = 0u32;
        let mut lq = 0u32;
        let mut ready = [0u32; 3]; // Store / Load / Alu
        if let Some(front) = self.rob.front() {
            let base = front.id;
            if base + self.rob.len() as u64 != self.next_id {
                self.audit_fail(
                    "rob tail matches id allocator",
                    format!(
                        "front {base} + len {} != next_id {}",
                        self.rob.len(),
                        self.next_id
                    ),
                );
            }
            let mut prev_dispatch = front.dispatch_cycle;
            for (i, e) in self.rob.iter().enumerate() {
                if e.id != base + i as u64 {
                    self.audit_fail(
                        "rob ids contiguous",
                        format!("position {i} holds id {}, expected {}", e.id, base + i as u64),
                    );
                }
                if e.dispatch_cycle < prev_dispatch {
                    self.audit_fail(
                        "rob age order",
                        format!(
                            "id {} dispatched at {} after predecessor's {}",
                            e.id, e.dispatch_cycle, prev_dispatch
                        ),
                    );
                }
                prev_dispatch = e.dispatch_cycle;
                match (e.state, e.deps_remaining) {
                    (State::Waiting, 0) => self.audit_fail(
                        "waiting implies pending deps",
                        format!("id {} is Waiting with deps_remaining 0", e.id),
                    ),
                    (State::Ready | State::Issued | State::Done, d) if d > 0 => self.audit_fail(
                        "ready/issued/done implies no deps",
                        format!("id {} is {:?} with deps_remaining {d}", e.id, e.state),
                    ),
                    _ => {}
                }
                if e.state == State::Done && e.complete_at.is_none_or(|c| c > self.now) {
                    self.audit_fail(
                        "done implies completed",
                        format!("id {} Done with complete_at {:?} at now {}", e.id, e.complete_at, self.now),
                    );
                }
                if matches!(e.state, State::Waiting | State::Ready) {
                    iq += 1;
                }
                let mask = match e.payload.port_class() {
                    PortClass::Store => &self.ready_stores,
                    PortClass::Load => &self.ready_loads,
                    PortClass::Alu => &self.ready_alus,
                };
                if mask.contains(e.id) != (e.state == State::Ready) {
                    self.audit_fail(
                        "ready mask agrees with state",
                        format!(
                            "id {} ({:?}) state {:?} but mask membership {}",
                            e.id,
                            e.payload.port_class(),
                            e.state,
                            mask.contains(e.id)
                        ),
                    );
                }
                if e.state == State::Ready {
                    ready[e.payload.port_class() as usize] += 1;
                }
                match &e.payload {
                    Payload::Load(_) => lq += 1,
                    Payload::Store { store_seq } => match self.sb_pos(*store_seq) {
                        None => self.audit_fail(
                            "in-rob store has an SB entry",
                            format!("id {} store_seq {store_seq} not in SB", e.id),
                        ),
                        Some(pos) if self.sb[pos].committed_at.is_some() => self.audit_fail(
                            "in-rob store not committed",
                            format!("id {} store_seq {store_seq} already committed in SB", e.id),
                        ),
                        Some(_) => {}
                    },
                    _ => {}
                }
                for &d in &e.dependents {
                    if self.pos_of(d).is_none() {
                        self.audit_fail(
                            "dependents are in flight",
                            format!("id {} lists flushed dependent {d}", e.id),
                        );
                    }
                }
            }
        }
        if iq != self.iq_count {
            self.audit_fail(
                "iq occupancy",
                format!("counter {} vs {} waiting/ready entries", self.iq_count, iq),
            );
        }
        if lq != self.lq_count {
            self.audit_fail(
                "lq occupancy",
                format!("counter {} vs {} in-flight loads", self.lq_count, lq),
            );
        }
        let mask_counts = [
            self.ready_stores.len(),
            self.ready_loads.len(),
            self.ready_alus.len(),
        ];
        if ready != mask_counts {
            self.audit_fail(
                "ready mask population",
                format!("rob ready counts {ready:?} vs mask counts {mask_counts:?}"),
            );
        }

        // --- Store buffer: contiguous seqs, allocator agreement, waiter ids.
        if let Some(sfront) = self.sb.front() {
            let sbase = sfront.store_seq;
            if self.sb.back().expect("non-empty").store_seq + 1 != self.store_seq_next {
                self.audit_fail(
                    "sb tail matches seq allocator",
                    format!(
                        "back seq {} + 1 != store_seq_next {}",
                        self.sb.back().expect("non-empty").store_seq,
                        self.store_seq_next
                    ),
                );
            }
            for (i, s) in self.sb.iter().enumerate() {
                if s.store_seq != sbase + i as u64 {
                    self.audit_fail(
                        "sb seqs contiguous",
                        format!("position {i} holds seq {}, expected {}", s.store_seq, sbase + i as u64),
                    );
                }
                for &w in &s.waiting_loads {
                    if self.pos_of(w).is_none() {
                        self.audit_fail(
                            "sb waiters in flight",
                            format!("seq {} waiting_loads holds flushed id {w}", s.store_seq),
                        );
                    }
                }
                for &b in &s.bypass_waiters {
                    match self.entry(b) {
                        None => self.audit_fail(
                            "sb bypass waiters in flight",
                            format!("seq {} bypass_waiters holds flushed id {b}", s.store_seq),
                        ),
                        Some(e) if !matches!(e.payload, Payload::Load(_)) => self.audit_fail(
                            "sb bypass waiters are loads",
                            format!("seq {} bypass waiter {b} is not a load", s.store_seq),
                        ),
                        Some(_) => {}
                    }
                }
            }
        }

        // --- Violation table: stores pending issue, loads still in flight.
        for (&seq, loads) in &self.violations {
            match self.sb_pos(seq) {
                None => self.audit_fail(
                    "violation store in SB",
                    format!("violation entry names drained/flushed store seq {seq}"),
                ),
                Some(pos) if self.sb[pos].issued => self.audit_fail(
                    "violation store unissued",
                    format!("violation entry survives its store's issue (seq {seq})"),
                ),
                Some(_) => {}
            }
            if loads.is_empty() {
                self.audit_fail(
                    "violation lists non-empty",
                    format!("empty stale-load list for store seq {seq}"),
                );
            }
            for &l in loads {
                match self.entry(l) {
                    None => self.audit_fail(
                        "violation loads in flight",
                        format!("store seq {seq} lists flushed load id {l}"),
                    ),
                    Some(e) if !matches!(e.payload, Payload::Load(_)) => self.audit_fail(
                        "violation entries are loads",
                        format!("store seq {seq} lists non-load id {l}"),
                    ),
                    Some(_) => {}
                }
            }
        }

        // --- Rename map points at live producers of the right register.
        for (reg, writer) in self.reg_writer.iter().enumerate() {
            let Some(id) = writer else { continue };
            match self.entry(*id) {
                None => self.audit_fail(
                    "rename map in flight",
                    format!("reg {reg} names flushed writer {id}"),
                ),
                Some(e) if e.dst != Some(reg as u8) => self.audit_fail(
                    "rename map register agreement",
                    format!("reg {reg} names id {id} whose dst is {:?}", e.dst),
                ),
                Some(_) => {}
            }
        }
        if let Some(b) = self.pending_redirect {
            match self.entry(b) {
                None => self.audit_fail(
                    "pending redirect in flight",
                    format!("redirect names flushed id {b}"),
                ),
                Some(e) if !matches!(e.payload, Payload::Branch) => self.audit_fail(
                    "pending redirect is a branch",
                    format!("redirect names non-branch id {b}"),
                ),
                Some(_) => {}
            }
        }

        // --- Accounting: everything dispatched either committed, is in
        // flight, or was squashed.
        let accounted = self.committed + self.rob.len() as u64 + self.audit_squashed;
        if accounted != self.audit_dispatched {
            self.audit_fail(
                "dispatch accounting",
                format!(
                    "committed {} + in-flight {} + squashed {} != dispatched {}",
                    self.committed,
                    self.rob.len(),
                    self.audit_squashed,
                    self.audit_dispatched
                ),
            );
        }
        if let Err(detail) = self.stats.check_identities() {
            self.audit_fail("stats identities", detail);
        }
    }

    /// End-of-run audit: the pipeline drained completely and the committed
    /// stream matches the trace's composition.
    fn audit_final(&self) {
        if !self.rob.is_empty() || self.iq_count != 0 || self.lq_count != 0 {
            self.audit_fail(
                "pipeline drained",
                format!(
                    "rob {} entries, iq {}, lq {} after the last commit",
                    self.rob.len(),
                    self.iq_count,
                    self.lq_count
                ),
            );
        }
        if !self.violations.is_empty() {
            self.audit_fail(
                "violation table drained",
                format!("{} stale entries at end of run", self.violations.len()),
            );
        }
        let (mut loads, mut stores, mut branches) = (0u64, 0u64, 0u64);
        for u in &self.trace.uops {
            match u.kind {
                UopKind::Load { .. } => loads += 1,
                UopKind::Store { .. } => stores += 1,
                UopKind::Branch { .. } => branches += 1,
                UopKind::Alu => {}
            }
        }
        let got = (
            self.stats.committed_uops,
            self.stats.committed_loads,
            self.stats.committed_stores,
            self.stats.committed_branches,
        );
        let want = (self.trace.len() as u64, loads, stores, branches);
        if got != want {
            self.audit_fail(
                "commit stream matches trace composition",
                format!("(uops, loads, stores, branches): committed {got:?} vs trace {want:?}"),
            );
        }
        if let Err(detail) = self.stats.check_identities() {
            self.audit_fail("stats identities", detail);
        }
    }
}

/// Helper: the observed outcome for an in-flight dependence.
fn observed_outcome(d: &crate::uop::TraceDep) -> LoadOutcome {
    match StoreDistance::new(d.distance) {
        Some(distance) => LoadOutcome::dependent(ObservedDependence {
            distance,
            class: d.class,
            store_pc: d.store_pc,
            branches_between: d.branches_between,
        }),
        // A dependence beyond the encodable window is treated as
        // independent for prediction purposes (cannot happen with a
        // 114-entry store buffer; kept for safety).
        None => LoadOutcome::independent(),
    }
}

/// The shared functional-replay loop behind [`Simulator::warm_functional`]
/// and [`FunctionalWarmer::replay`]: drives every stateful structure a
/// detailed run would train — cache hierarchy (demand lines *and* the
/// stride prefetcher), branch predictor, memory-dependence predictor,
/// store-sequence counter — with no timing machinery at all.
fn warm_replay<P: MemDepPredictor>(
    mem: &mut Hierarchy,
    bp: &mut TagePredictor,
    pred: &mut P,
    store_seq_next: &mut u64,
    uops: &[Uop],
) {
    for uop in uops {
        mem.warm_inst(uop.pc);
        match uop.kind {
            UopKind::Alu => {}
            UopKind::Load { addr, dep, .. } => {
                mem.warm_data(addr);
                mem.warm_prefetch(uop.pc, addr);
                let oracle = dep.and_then(|d| {
                    Some(GroundTruth {
                        distance: StoreDistance::new(d.distance)?,
                        class: d.class,
                    })
                });
                let (prediction, meta) = pred.predict(uop.pc, *store_seq_next, oracle.as_ref());
                let outcome = dep
                    .as_ref()
                    .map_or_else(LoadOutcome::independent, observed_outcome);
                pred.train(uop.pc, meta, prediction, &outcome);
            }
            UopKind::Store { addr, .. } => {
                mem.warm_data(addr);
                let store_seq = *store_seq_next;
                *store_seq_next += 1;
                let _ = pred.predict_store_wait(uop.pc, store_seq);
                pred.on_store_dispatch(uop.pc, store_seq);
            }
            UopKind::Branch {
                kind,
                taken,
                target,
            } => {
                let _ = match kind {
                    BranchKind::Conditional => bp.predict_and_train(uop.pc, taken),
                    BranchKind::Indirect => bp.predict_indirect_and_train(uop.pc, target),
                };
                let ev = BranchEvent {
                    pc: uop.pc,
                    kind,
                    taken,
                    target,
                };
                bp.on_branch(&ev);
                pred.on_branch(&ev);
            }
        }
    }
}

/// A standalone functional (architectural) warm-up engine: owns exactly the
/// state [`Simulator::warm_functional`] mutates — cache hierarchy, branch
/// predictor, memory-dependence predictor, store-sequence counter — and
/// replays trace uops through it with no timing simulation.
///
/// Unlike warming inside a `Simulator`, a warmer is **checkpointable**:
/// because it is `Clone` (for `P: Clone`), one sequential pass over a trace
/// can be frozen at each sampled window's warm-up boundary, and each frozen
/// clone seeds that window's detailed simulator via
/// [`Simulator::seed_from_warmer`]. The state a clone holds at commit
/// boundary `b` is bit-identical to an independent functional replay of
/// `trace[..b]` — replay is deterministic and history-only — so sampled
/// windows see full-prefix warm state while the pass walks the trace only
/// once (DESIGN.md §13).
#[derive(Debug, Clone)]
pub struct FunctionalWarmer<P> {
    mem: Hierarchy,
    bp: TagePredictor,
    pred: P,
    store_seq_next: u64,
    warmed: u64,
}

impl<P: MemDepPredictor> FunctionalWarmer<P> {
    /// A cold warmer for the given core configuration, taking ownership of
    /// the predictor it will train.
    pub fn new(cfg: &CoreConfig, pred: P) -> Self {
        Self {
            mem: Hierarchy::new(cfg),
            bp: TagePredictor::default(),
            pred,
            store_seq_next: 0,
            warmed: 0,
        }
    }

    /// Architecturally replays `uops`, continuing from wherever the warmer
    /// already is (callers feed consecutive trace segments).
    pub fn replay(&mut self, uops: &[Uop]) {
        warm_replay(
            &mut self.mem,
            &mut self.bp,
            &mut self.pred,
            &mut self.store_seq_next,
            uops,
        );
        self.warmed += uops.len() as u64;
    }

    /// The predictor as trained so far — clone it to build the simulator
    /// that [`Simulator::seed_from_warmer`] will seed.
    pub fn predictor(&self) -> &P {
        &self.pred
    }

    /// Total uops replayed through this warmer.
    pub fn warmed_uops(&self) -> u64 {
        self.warmed
    }
}

/// Runs `trace` on a core with the given configuration and predictor.
///
/// # Examples
///
/// ```
/// use mascot_sim::{simulate, CoreConfig, Trace, Uop};
/// use mascot_predictors::PerfectMdp;
///
/// let trace = Trace::new("demo", vec![
///     Uop::alu(0x0, [None, None], Some(1), 1),
///     Uop::store(0x4, 0x1000, 8, None, Some(1)),
///     Uop::load(0x8, 0x1000, 8, None, 2, None),
/// ]);
/// let mut oracle = PerfectMdp::new();
/// let stats = simulate(&trace, &CoreConfig::golden_cove(), &mut oracle);
/// assert_eq!(stats.committed_uops, 3);
/// ```
pub fn simulate<P: MemDepPredictor>(trace: &Trace, cfg: &CoreConfig, pred: &mut P) -> SimStats {
    Simulator::new(trace, cfg, pred).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mascot::prediction::BypassClass;
    use crate::uop::TraceDep;

    /// A predictor with a fixed response, for engine testing.
    #[derive(Debug)]
    struct Fixed(MemDepPrediction);

    impl MemDepPredictor for Fixed {
        type Meta = ();
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn predict(
            &mut self,
            _pc: u64,
            _store_seq: u64,
            _oracle: Option<&GroundTruth>,
        ) -> (MemDepPrediction, ()) {
            (self.0, ())
        }
        fn train(&mut self, _: u64, _: (), _: MemDepPrediction, _: &LoadOutcome) {}
        fn on_branch(&mut self, _: &BranchEvent) {}
        fn rewind_history(&mut self, _: &[BranchEvent]) {}
        fn storage_bits(&self) -> u64 {
            0
        }
    }

    fn always_no_dep() -> Fixed {
        Fixed(MemDepPrediction::NoDependence)
    }

    fn always_dep(d: u32) -> Fixed {
        Fixed(MemDepPrediction::Dependence {
            distance: StoreDistance::new(d).unwrap(),
        })
    }

    fn always_bypass(d: u32) -> Fixed {
        Fixed(MemDepPrediction::Bypass {
            distance: StoreDistance::new(d).unwrap(),
        })
    }

    fn dep1() -> Option<TraceDep> {
        Some(TraceDep {
            distance: 1,
            class: BypassClass::DirectBypass,
            store_pc: 0, // patched by helpers
            branches_between: 0,
        })
    }

    /// store (data from a slow ALU) ... load (same addr) ... consumer.
    /// `alu_latency` controls how late the store's data arrives.
    fn store_load_trace(n: usize, alu_latency: u8) -> Trace {
        let mut uops = Vec::new();
        for i in 0..n {
            let base = 0x1000 + (i as u64) * 64;
            let store_pc = 0x400 + 16;
            uops.push(Uop::alu(0x400, [None, None], Some(1), alu_latency));
            uops.push(Uop::store(store_pc, base, 8, None, Some(1)));
            let mut dep = dep1().unwrap();
            dep.store_pc = store_pc;
            uops.push(Uop::load(0x400 + 32, base, 8, None, 2, Some(dep)));
            uops.push(Uop::alu(0x400 + 48, [Some(2), None], Some(3), 1));
        }
        Trace::new("store-load", uops)
    }

    fn golden() -> CoreConfig {
        CoreConfig::golden_cove()
    }

    #[test]
    fn independent_alu_ops_commit_at_high_ipc() {
        let uops: Vec<Uop> = (0..6000)
            .map(|i| Uop::alu(0x100 + (i % 32) * 4, [None, None], Some((i % 40) as u8), 1))
            .collect();
        let trace = Trace::new("alu", uops);
        let mut p = always_no_dep();
        let stats = simulate(&trace, &golden(), &mut p);
        assert_eq!(stats.committed_uops, 6000);
        // Independent single-cycle ALU ops: bounded by fetch width (6) and
        // should get close to it.
        assert!(stats.ipc() > 4.0, "ipc {}", stats.ipc());
    }

    #[test]
    fn dependent_alu_chain_limits_ipc_to_one() {
        let uops: Vec<Uop> = (0..4000)
            .map(|i| Uop::alu(0x100 + (i % 16) * 4, [Some(1), None], Some(1), 1))
            .collect();
        let trace = Trace::new("chain", uops);
        let mut p = always_no_dep();
        let stats = simulate(&trace, &golden(), &mut p);
        assert!(stats.ipc() <= 1.05, "serial chain cannot beat 1 IPC, got {}", stats.ipc());
        assert!(stats.ipc() > 0.8, "chain should sustain ~1 IPC, got {}", stats.ipc());
    }

    #[test]
    fn perfect_mdp_forwards_without_squashes() {
        let trace = store_load_trace(500, 8);
        let mut p = mascot_test_oracle();
        let stats = simulate(&trace, &golden(), &mut p);
        assert_eq!(stats.committed_uops, trace.len() as u64);
        assert_eq!(stats.mem_order_squashes, 0);
        assert_eq!(stats.smb_squashes, 0);
        assert!(stats.loads_forwarded > 400, "forwarded {}", stats.loads_forwarded);
        assert_eq!(stats.missed_dependencies, 0);
        assert_eq!(stats.false_dependencies, 0);
    }

    /// An oracle like PerfectMdp but local to these tests.
    fn mascot_test_oracle() -> impl MemDepPredictor<Meta = ()> {
        #[derive(Debug)]
        struct Oracle;
        impl MemDepPredictor for Oracle {
            type Meta = ();
            fn name(&self) -> &'static str {
                "test-oracle"
            }
            fn predict(
                &mut self,
                _pc: u64,
                _seq: u64,
                oracle: Option<&GroundTruth>,
            ) -> (MemDepPrediction, ()) {
                match oracle {
                    Some(gt) => (
                        MemDepPrediction::Dependence {
                            distance: gt.distance,
                        },
                        (),
                    ),
                    None => (MemDepPrediction::NoDependence, ()),
                }
            }
            fn train(&mut self, _: u64, _: (), _: MemDepPrediction, _: &LoadOutcome) {}
            fn on_branch(&mut self, _: &BranchEvent) {}
            fn rewind_history(&mut self, _: &[BranchEvent]) {}
            fn storage_bits(&self) -> u64 {
                0
            }
        }
        Oracle
    }

    #[test]
    fn always_no_dep_causes_squashes_but_completes() {
        // Slow store data => loads that speculate reads stale data and get
        // squashed when the store issues.
        let trace = store_load_trace(300, 12);
        let mut p = always_no_dep();
        let stats = simulate(&trace, &golden(), &mut p);
        assert_eq!(stats.committed_uops, trace.len() as u64);
        assert!(stats.mem_order_squashes > 100, "squashes {}", stats.mem_order_squashes);
        // Replayed loads commit with the dependence observed: the predictor
        // kept predicting no-dep, so they count as missed dependencies.
        assert!(stats.missed_dependencies > 100);
    }

    #[test]
    fn tenant_split_attributes_mispredictions_by_pc() {
        // Victim tenant: dependent store→load pairs that always_no_dep
        // mispredicts (missed dependencies). Attacker tenant (PC bit 34
        // set): genuinely independent loads, correctly predicted.
        let mut uops = Vec::new();
        for i in 0..300u64 {
            let base = 0x1000 + i * 64;
            uops.push(Uop::alu(0x400, [None, None], Some(1), 12));
            uops.push(Uop::store(0x410, base, 8, None, Some(1)));
            let mut dep = dep1().unwrap();
            dep.store_pc = 0x410;
            uops.push(Uop::load(0x420, base, 8, None, 2, Some(dep)));
            uops.push(Uop::load((1 << 34) | 0x420, 0x9000_0000 + i * 64, 8, None, 3, None));
        }
        let trace = Trace::new("tenants", uops);
        let mut p = always_no_dep();
        let stats = Simulator::new(&trace, &golden(), &mut p)
            .with_tenant_split(1 << 34)
            .with_audit()
            .run();
        stats.check_identities().unwrap();
        assert_eq!(stats.victim.loads, 300);
        assert_eq!(stats.attacker.loads, 300);
        assert!(
            stats.victim.missed_dependencies > 100,
            "victim missed {}",
            stats.victim.missed_dependencies
        );
        assert_eq!(stats.attacker.missed_dependencies, 0);
        assert!(stats.victim.missed_dependency_rate() > 0.3);
        assert_eq!(stats.attacker.misprediction_rate(), 0.0);
    }

    #[test]
    fn tenant_counters_zero_without_split() {
        let trace = store_load_trace(50, 4);
        let mut p = always_no_dep();
        let stats = simulate(&trace, &golden(), &mut p);
        assert_eq!(stats.tenant_boundary, 0);
        assert_eq!(stats.victim, crate::stats::TenantCounters::default());
        assert_eq!(stats.attacker, crate::stats::TenantCounters::default());
    }

    #[test]
    fn squashes_cost_performance() {
        let trace = store_load_trace(300, 12);
        let mut good = mascot_test_oracle();
        let ipc_good = simulate(&trace, &golden(), &mut good).ipc();
        let mut bad = always_no_dep();
        let ipc_bad = simulate(&trace, &golden(), &mut bad).ipc();
        assert!(
            ipc_good > ipc_bad * 1.05,
            "perfect MDP {ipc_good} should clearly beat squash-heavy {ipc_bad}"
        );
    }

    #[test]
    fn false_dependencies_only_delay() {
        // Loads with NO real dependence, predicted dependent on distance 1:
        // they stall behind an unrelated store but never squash.
        let mut uops = Vec::new();
        for i in 0..200u64 {
            uops.push(Uop::alu(0x100, [None, None], Some(1), 6));
            uops.push(Uop::store(0x110, 0x9000 + i * 64, 8, None, Some(1)));
            uops.push(Uop::load(0x120, 0x5_0000 + i * 64, 8, None, 2, None));
        }
        let trace = Trace::new("false-dep", uops);
        let mut p = always_dep(1);
        let stats = simulate(&trace, &golden(), &mut p);
        assert_eq!(stats.mem_order_squashes, 0);
        assert!(stats.false_dependencies > 150);
        let mut free = always_no_dep();
        let unstalled = simulate(&trace, &golden(), &mut free);
        assert!(
            unstalled.ipc() >= stats.ipc(),
            "false dependencies cannot help: {} vs {}",
            unstalled.ipc(),
            stats.ipc()
        );
    }

    #[test]
    fn bypassing_beats_waiting_when_data_is_late() {
        // The store's data comes from a long-latency op; consumers of the
        // load profit from bypassing because the load's value is forwarded
        // the moment the store issues, skipping the L1D latency.
        let trace = store_load_trace(400, 10);
        let mut wait = always_dep(1);
        let ipc_wait = simulate(&trace, &golden(), &mut wait).ipc();
        let mut byp = always_bypass(1);
        let stats_byp = simulate(&trace, &golden(), &mut byp);
        assert_eq!(stats_byp.smb_squashes, 0, "all bypasses are correct");
        assert!(stats_byp.loads_bypassed > 300, "bypassed {}", stats_byp.loads_bypassed);
        assert!(
            stats_byp.ipc() > ipc_wait,
            "bypassing {} should beat waiting {}",
            stats_byp.ipc(),
            ipc_wait
        );
    }

    #[test]
    fn wrong_bypass_squashes_and_still_completes() {
        // Loads have no dependence at all, but are force-bypassed from the
        // previous (unrelated) store: every engaged bypass is wrong.
        let mut uops = Vec::new();
        for i in 0..150u64 {
            uops.push(Uop::alu(0x100, [None, None], Some(1), 4));
            uops.push(Uop::store(0x110, 0x9000 + i * 64, 8, None, Some(1)));
            uops.push(Uop::load(0x120, 0x5_0000 + i * 64, 8, None, 2, None));
        }
        let trace = Trace::new("bad-bypass", uops);
        let mut p = always_bypass(1);
        let stats = simulate(&trace, &golden(), &mut p);
        assert_eq!(stats.committed_uops, trace.len() as u64);
        assert!(stats.smb_squashes > 50, "smb squashes {}", stats.smb_squashes);
        assert!(stats.smb_errors + stats.false_dependencies + stats.correct_no_dep > 0);
    }

    #[test]
    fn branch_mispredicts_cost_fetch_cycles() {
        // A branch whose direction is a pseudo-random coin: mostly
        // unpredictable. Compare against an always-taken branch.
        let mk = |rand: bool| {
            let mut uops = Vec::new();
            let mut state = 0x1234_5678u64;
            for _ in 0..3000 {
                let taken = if rand {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33).is_multiple_of(2)
                } else {
                    true
                };
                uops.push(Uop::alu(0x100, [None, None], Some(1), 1));
                uops.push(Uop::branch(0x104, taken, 0x200, Some(1)));
            }
            Trace::new("branchy", uops)
        };
        let mut p1 = always_no_dep();
        let predictable = simulate(&mk(false), &golden(), &mut p1);
        let mut p2 = always_no_dep();
        let unpredictable = simulate(&mk(true), &golden(), &mut p2);
        assert!(predictable.branch_mispredicts < 100);
        assert!(unpredictable.branch_mispredicts > 1000);
        assert!(
            predictable.ipc() > unpredictable.ipc() * 1.5,
            "{} vs {}",
            predictable.ipc(),
            unpredictable.ipc()
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = store_load_trace(200, 6);
        let mut a = always_no_dep();
        let mut b = always_no_dep();
        let s1 = simulate(&trace, &golden(), &mut a);
        let s2 = simulate(&trace, &golden(), &mut b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn lion_cove_is_at_least_as_fast() {
        let trace = store_load_trace(400, 4);
        let mut a = mascot_test_oracle();
        let g = simulate(&trace, &golden(), &mut a).ipc();
        let mut b = mascot_test_oracle();
        let l = simulate(&trace, &CoreConfig::lion_cove(), &mut b).ipc();
        assert!(l >= g * 0.95, "lion cove {l} vs golden cove {g}");
    }

    #[test]
    fn commit_counts_match_trace_composition() {
        let trace = store_load_trace(100, 2);
        let mut p = always_no_dep();
        let stats = simulate(&trace, &golden(), &mut p);
        assert_eq!(stats.committed_loads, 100);
        assert_eq!(stats.committed_stores, 100);
        assert_eq!(stats.committed_uops, 400);
    }

    #[test]
    fn dependence_census_matches_ground_truth() {
        // Fast store data: loads issue after the store resolved most of the
        // time, but the store is still in the SB (drain is post-commit), so
        // the in-flight dependence census sees nearly every pair.
        let trace = store_load_trace(200, 1);
        let mut p = mascot_test_oracle();
        let stats = simulate(&trace, &golden(), &mut p);
        assert!(
            stats.class_direct_bypass > 150,
            "direct-bypass census {}",
            stats.class_direct_bypass
        );
        assert!(stats.dependent_load_fraction() > 0.75);
    }

    /// Committed stores must remain forwardable during the drain delay:
    /// a load issuing shortly after the store commits still observes the
    /// dependence.
    #[test]
    fn drain_delay_keeps_stores_forwardable() {
        let mk = |delay: u32| {
            let mut cfg = golden();
            cfg.store_drain_delay = delay;
            let trace = store_load_trace(200, 1);
            let mut p = mascot_test_oracle();
            simulate(&trace, &cfg, &mut p)
        };
        let with_delay = mk(40);
        let without = mk(0);
        assert!(
            with_delay.loads_forwarded >= without.loads_forwarded,
            "delay {} vs none {}",
            with_delay.loads_forwarded,
            without.loads_forwarded
        );
        // With the delay, nearly every pair is observed in flight.
        assert!(
            with_delay.class_direct_bypass > 150,
            "census {}",
            with_delay.class_direct_bypass
        );
    }

    /// A store-wait prediction (Store Sets serialisation) delays the
    /// waiting store behind its predicted predecessor.
    #[test]
    fn store_store_serialisation_orders_stores() {
        #[derive(Debug)]
        struct SerialiseStores;
        impl MemDepPredictor for SerialiseStores {
            type Meta = ();
            fn name(&self) -> &'static str {
                "serialise"
            }
            fn predict(
                &mut self,
                _pc: u64,
                _seq: u64,
                _oracle: Option<&GroundTruth>,
            ) -> (MemDepPrediction, ()) {
                (MemDepPrediction::NoDependence, ())
            }
            fn train(&mut self, _: u64, _: (), _: MemDepPrediction, _: &LoadOutcome) {}
            fn on_branch(&mut self, _: &BranchEvent) {}
            fn rewind_history(&mut self, _: &[BranchEvent]) {}
            fn predict_store_wait(&mut self, _pc: u64, _seq: u64) -> Option<StoreDistance> {
                StoreDistance::new(1) // every store waits for its predecessor
            }
            fn storage_bits(&self) -> u64 {
                0
            }
        }
        // Independent stores whose data arrives at staggered times: without
        // serialisation they issue in parallel; with it they form a chain.
        let mut uops = Vec::new();
        for i in 0..200u64 {
            uops.push(Uop::alu(0x100, [None, None], Some(1), 8));
            uops.push(Uop::store(0x110, 0x9000 + i * 64, 8, None, Some(1)));
        }
        let trace = Trace::new("stores", uops);
        let mut serial = SerialiseStores;
        let chained = simulate(&trace, &golden(), &mut serial);
        let mut free = always_no_dep();
        let parallel = simulate(&trace, &golden(), &mut free);
        assert!(
            chained.cycles > parallel.cycles,
            "serialised {} vs parallel {} cycles",
            chained.cycles,
            parallel.cycles
        );
    }

    /// Stall attribution: a tiny store buffer shows SB-full stalls; the
    /// default configuration on the same trace does not.
    #[test]
    fn stall_attribution_identifies_sb_pressure() {
        let trace = store_load_trace(300, 1);
        let mut tiny = golden();
        tiny.sb_entries = 2;
        tiny.store_drain_delay = 60;
        let mut p1 = always_no_dep();
        let squeezed = simulate(&trace, &tiny, &mut p1);
        assert!(squeezed.stall_sb > 0, "expected SB-full stalls");
        let mut p2 = always_no_dep();
        let roomy = simulate(&trace, &golden(), &mut p2);
        assert_eq!(roomy.stall_sb, 0);
        assert!(roomy.ipc() > squeezed.ipc());
    }

    /// The dispatch-stall taxonomy never exceeds total cycles.
    #[test]
    fn stall_counters_are_bounded_by_cycles() {
        let trace = store_load_trace(200, 6);
        let mut p = always_no_dep();
        let stats = simulate(&trace, &golden(), &mut p);
        assert!(stats.total_dispatch_stalls() <= stats.cycles);
        assert!(stats.stall_frontend <= stats.cycles);
    }

    /// A tiny load queue throttles in-flight loads and is attributed as an
    /// LQ stall.
    #[test]
    fn lq_pressure_is_attributed() {
        let mut cfg = golden();
        cfg.lq_entries = 2;
        // Loads with long memory latency keep the LQ full.
        let uops: Vec<Uop> = (0..600)
            .map(|i| Uop::load(0x100 + (i % 8) * 16, 0x100_0000 + i * 4096, 8, None, 1, None))
            .collect();
        let trace = Trace::new("lq", uops);
        let mut p = always_no_dep();
        let squeezed = simulate(&trace, &cfg, &mut p);
        assert!(squeezed.stall_lq > 0, "expected LQ stalls");
        let mut p2 = always_no_dep();
        let roomy = simulate(&trace, &golden(), &mut p2);
        assert!(roomy.ipc() >= squeezed.ipc());
    }

    /// Cold instruction fetch stalls the frontend; steady-state re-use of
    /// the same lines does not.
    #[test]
    fn icache_misses_only_stall_cold_code() {
        let uops: Vec<Uop> = (0..4000)
            .map(|i| Uop::alu(0x100 + (i % 64) * 4, [None, None], Some(1), 1))
            .collect();
        let trace = Trace::new("hot-code", uops);
        let mut p = always_no_dep();
        let stats = simulate(&trace, &golden(), &mut p);
        // 64 PCs over 4-byte spacing = 4 lines: a handful of cold misses.
        assert!(stats.l1i_misses <= 8, "l1i misses {}", stats.l1i_misses);
    }

    /// Same-cycle event scheduling is an engine bug: the slot for `now` has
    /// already been drained, so the event would fire a wheel revolution
    /// late. The push must hard-fail in release builds too.
    #[test]
    #[should_panic(expected = "events fire strictly in the future")]
    fn event_wheel_rejects_same_cycle_push() {
        let mut w = EventWheel::new(64);
        w.push(10, 10, 1, 0);
    }

    #[test]
    #[should_panic(expected = "events fire strictly in the future")]
    fn event_wheel_rejects_past_push() {
        let mut w = EventWheel::new(64);
        w.push(10, 9, 1, 0);
    }

    /// Beyond-horizon events spill to the overflow heap and are still
    /// delivered at the right cycle, merged with wheel-resident events.
    #[test]
    fn event_wheel_overflow_delivers_on_time() {
        let mut w = EventWheel::new(16);
        let far = w.mask + 50; // past the wheel horizon from cycle 0
        w.push(0, far, 7, 0);
        w.push(0, 3, 1, 1);
        assert_eq!(w.take_due(3), vec![(1, 1)]);
        for c in 4..far {
            assert!(w.take_due(c).is_empty(), "no event due at {c}");
        }
        assert_eq!(w.take_due(far), vec![(7, 0)]);
    }

    /// Seeded model check: the ready mask agrees with an ordered-set model
    /// through random insert/remove churn and a sliding id window, both in
    /// membership, count and `pick_oldest` order.
    #[test]
    fn ready_mask_matches_model_under_random_churn() {
        use std::collections::BTreeSet;

        const ROB: usize = 512; // window width; mask capacity matches
        let mut mask = ReadyMask::new(ROB);
        let mut model: BTreeSet<u64> = BTreeSet::new();
        let mut front = 0u64; // oldest id that may be present
        let mut next_id = 0u64; // ids dispatched so far
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            // xorshift*: deterministic, no external dependency.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };

        let mut scratch = Vec::new();
        for round in 0..20_000u32 {
            match rng() % 4 {
                // Dispatch: a fresh id becomes ready (window permitting).
                0 if (next_id - front) < ROB as u64 => {
                    mask.insert(next_id);
                    model.insert(next_id);
                    next_id += 1;
                }
                // Issue: a random ready id leaves the mask.
                1 if !model.is_empty() => {
                    let nth = (rng() as usize) % model.len();
                    let id = *model.iter().nth(nth).expect("in range");
                    mask.remove(id);
                    model.remove(&id);
                }
                // Commit: the window front advances, evicting old ids.
                2 if front < next_id => {
                    let step = 1 + (rng() % 8);
                    let new_front = (front + step).min(next_id);
                    let evict: Vec<u64> =
                        model.range(..new_front).copied().collect();
                    for id in evict {
                        mask.remove(id);
                        model.remove(&id);
                    }
                    front = new_front;
                }
                // Drain check: oldest-k agrees with the model's order.
                _ => {
                    let k = (rng() as usize) % 8;
                    scratch.clear();
                    mask.pick_oldest(front, k, &mut scratch);
                    let want: Vec<u64> =
                        model.iter().copied().take(k.min(model.len())).collect();
                    assert_eq!(scratch, want, "round {round} front {front}");
                }
            }
            assert_eq!(mask.len() as usize, model.len(), "round {round}");
            // Spot-check membership across the whole live window.
            if round % 512 == 0 {
                for id in front..next_id {
                    assert_eq!(mask.contains(id), model.contains(&id), "id {id}");
                }
            }
        }
    }

    /// The audited engine accepts legitimate executions, including
    /// squash-heavy and bypass-heavy ones.
    #[test]
    fn audit_accepts_clean_runs() {
        let cases: Vec<(Trace, Fixed)> = vec![
            (store_load_trace(300, 12), always_no_dep()),
            (store_load_trace(300, 10), always_bypass(1)),
            (store_load_trace(300, 6), always_dep(1)),
        ];
        for (trace, mut p) in cases {
            let stats = Simulator::new(&trace, &golden(), &mut p)
                .with_audit()
                .run();
            assert_eq!(stats.committed_uops, trace.len() as u64);
        }
    }

    /// A skipped LQ invalidation (flushed loads surviving in the violation
    /// table) is caught by the auditor on the squash cycle.
    #[test]
    fn audit_catches_skipped_violation_purge() {
        let trace = store_load_trace(300, 12); // squash-heavy with no-dep
        let mut p = always_no_dep();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Simulator::new(&trace, &golden(), &mut p)
                .with_audit()
                .with_fault(Fault::SkipViolationPurge)
                .run()
        }));
        let msg = panic_message(result);
        assert!(msg.contains("audit violation"), "panic was: {msg}");
    }

    /// Ready-mask entries surviving a flush are caught as a population or
    /// membership mismatch. A single ALU port keeps a backlog of Ready
    /// micro-ops queued so the squash window actually contains some.
    #[test]
    fn audit_catches_skipped_ready_mask_purge() {
        let mut cfg = golden();
        cfg.alu_ports = 1;
        let mut uops = Vec::new();
        for i in 0..200u64 {
            let base = 0x1000 + i * 64;
            uops.push(Uop::alu(0x400, [None, None], Some(1), 12));
            uops.push(Uop::store(0x410, base, 8, None, Some(1)));
            let mut dep = dep1().unwrap();
            dep.store_pc = 0x410;
            uops.push(Uop::load(0x420, base, 8, None, 2, Some(dep)));
            for _ in 0..6 {
                uops.push(Uop::alu(0x430, [None, None], None, 1));
            }
        }
        let trace = Trace::new("ready-backlog", uops);
        let mut p = always_no_dep();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Simulator::new(&trace, &cfg, &mut p)
                .with_audit()
                .with_fault(Fault::SkipReadyMaskPurge)
                .run()
        }));
        // Debug builds may trip the mask's own debug_assert first; either
        // way the defect cannot survive an audited run.
        let msg = panic_message(result);
        assert!(
            msg.contains("audit violation") || msg.contains("ready ids are unique"),
            "panic was: {msg}"
        );
    }

    /// Dropped served-path accounting breaks the per-load census identity.
    #[test]
    fn audit_catches_skipped_served_accounting() {
        let trace = store_load_trace(100, 1); // forwarding-heavy
        let mut p = mascot_test_oracle();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Simulator::new(&trace, &golden(), &mut p)
                .with_audit()
                .with_fault(Fault::SkipServedAccounting)
                .run()
        }));
        let msg = panic_message(result);
        assert!(msg.contains("served-path census"), "panic was: {msg}");
    }

    fn panic_message(result: std::thread::Result<SimStats>) -> String {
        match result {
            Ok(_) => String::from("<no panic>"),
            Err(e) => {
                if let Some(s) = e.downcast_ref::<String>() {
                    s.clone()
                } else if let Some(s) = e.downcast_ref::<&str>() {
                    (*s).to_string()
                } else {
                    String::from("<non-string panic>")
                }
            }
        }
    }

    /// Tuning periods fire and flush: the predictor sees at least one
    /// end_tuning_period call per period plus the final flush.
    #[test]
    fn tuning_period_hook_fires() {
        #[derive(Debug)]
        struct CountPeriods(u32);
        impl MemDepPredictor for CountPeriods {
            type Meta = ();
            fn name(&self) -> &'static str {
                "count"
            }
            fn predict(
                &mut self,
                _pc: u64,
                _seq: u64,
                _oracle: Option<&GroundTruth>,
            ) -> (MemDepPrediction, ()) {
                (MemDepPrediction::NoDependence, ())
            }
            fn train(&mut self, _: u64, _: (), _: MemDepPrediction, _: &LoadOutcome) {}
            fn on_branch(&mut self, _: &BranchEvent) {}
            fn rewind_history(&mut self, _: &[BranchEvent]) {}
            fn storage_bits(&self) -> u64 {
                0
            }
            fn end_tuning_period(&mut self) {
                self.0 += 1;
            }
        }
        let trace = store_load_trace(100, 1);
        let mut p = CountPeriods(0);
        let stats = Simulator::new(&trace, &golden(), &mut p)
            .with_tuning_period(50)
            .run();
        let expected_min = stats.cycles / 50;
        assert!(
            u64::from(p.0) >= expected_min,
            "periods {} vs cycles {}",
            p.0,
            stats.cycles
        );
    }
}
