//! Simulation statistics: IPC, prediction/misprediction taxonomy, squash
//! counts and the per-class dependence census used by Fig. 2.

use mascot::prediction::BypassClass;
use serde::{Deserialize, Serialize};

/// Per-tenant misprediction taxonomy for cross-context pollution analysis
/// (DESIGN.md §12). Attribution is by load PC against
/// [`SimStats::tenant_boundary`]; every counter here mirrors a subset of
/// the corresponding global counter, so the per-tenant pair sums back to
/// the global total (checked by [`SimStats::check_identities`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantCounters {
    /// Committed loads attributed to this tenant.
    pub loads: u64,
    /// This tenant's share of `missed_dependencies`.
    pub missed_dependencies: u64,
    /// This tenant's share of `false_dependencies`.
    pub false_dependencies: u64,
    /// This tenant's share of wrong speculative bypasses — the
    /// squash-causing shape a mistraining attacker aims for. Counts both
    /// pre-commit `BypassFail` squashes (the load then replays and usually
    /// commits demoted, i.e. as a false dependence) and commit-time
    /// `smb_errors`, so the pair sums to `smb_squashes + smb_errors`.
    pub false_bypasses: u64,
}

impl TenantCounters {
    /// False bypasses per committed load of this tenant.
    pub fn false_bypass_rate(&self) -> f64 {
        mascot_stats::pollution::rate(self.false_bypasses, self.loads)
    }

    /// False dependencies per committed load of this tenant.
    pub fn false_dependency_rate(&self) -> f64 {
        mascot_stats::pollution::rate(self.false_dependencies, self.loads)
    }

    /// Missed dependencies per committed load of this tenant.
    pub fn missed_dependency_rate(&self) -> f64 {
        mascot_stats::pollution::rate(self.missed_dependencies, self.loads)
    }

    /// All mispredictions tracked per tenant, per committed load — the
    /// quantity whose attacker-induced *increase* is the attack success
    /// rate (`mascot_stats::pollution::induced`).
    pub fn misprediction_rate(&self) -> f64 {
        mascot_stats::pollution::rate(
            self.false_bypasses + self.false_dependencies + self.missed_dependencies,
            self.loads,
        )
    }
}

/// Counters produced by one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed micro-ops.
    pub committed_uops: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed branches.
    pub committed_branches: u64,

    /// Loads predicted independent (Fig. 10 left).
    pub pred_no_dep: u64,
    /// Loads predicted dependent without bypassing (MDP).
    pub pred_mdp: u64,
    /// Loads predicted dependent with bypassing (SMB).
    pub pred_smb: u64,

    /// Committed loads predicted independent that had an in-flight
    /// dependence (speculative errors; cause squashes).
    pub missed_dependencies: u64,
    /// Committed loads predicted dependent that had no in-flight dependence
    /// (false dependencies; MDP-only cost is a needless stall).
    pub false_dependencies: u64,
    /// Committed loads predicted dependent on the wrong store.
    pub wrong_store: u64,
    /// Committed loads whose bypass prediction was wrong in any way
    /// (always squashes).
    pub smb_errors: u64,
    /// Correct dependence predictions.
    pub correct_mdp: u64,
    /// Correct bypass predictions.
    pub correct_smb: u64,
    /// Correct independence predictions.
    pub correct_no_dep: u64,

    /// Pipeline squashes from memory-order violations.
    pub mem_order_squashes: u64,
    /// Pipeline squashes from failed speculative bypasses.
    pub smb_squashes: u64,
    /// Conditional-branch mispredictions (frontend stalls).
    pub branch_mispredicts: u64,
    /// Indirect-target mispredictions.
    pub indirect_mispredicts: u64,

    /// Loads that obtained their value through speculative bypassing.
    pub loads_bypassed: u64,
    /// Loads that forwarded from an in-flight store (STLF).
    pub loads_forwarded: u64,
    /// Loads serviced by the cache hierarchy.
    pub loads_from_cache: u64,

    /// Ground-truth dependence census at commit (Fig. 2): in-flight
    /// dependencies by class.
    pub class_direct_bypass: u64,
    /// In-flight `NoOffset` dependencies.
    pub class_no_offset: u64,
    /// In-flight `Offset` dependencies.
    pub class_offset: u64,
    /// In-flight partial (`MdpOnly`) dependencies.
    pub class_mdp_only: u64,

    /// Σ cycles spent between dispatch and issue by committed uops that
    /// consume at least one load result (§VI-A's issue-wait analysis).
    pub dependent_wait_cycles: u64,
    /// Count of such uops.
    pub dependent_wait_count: u64,

    /// Cycles the frontend dispatched nothing because fetch was redirected
    /// or stalled (branch mispredicts, squash refills, I-cache misses).
    pub stall_frontend: u64,
    /// Cycles dispatch was blocked by a full ROB.
    pub stall_rob: u64,
    /// Cycles dispatch was blocked by a full issue queue.
    pub stall_iq: u64,
    /// Cycles dispatch was blocked by a full load queue.
    pub stall_lq: u64,
    /// Cycles dispatch was blocked by a full store buffer.
    pub stall_sb: u64,

    /// L1 instruction-cache demand misses.
    pub l1i_misses: u64,
    /// L1 data-cache demand misses.
    pub l1d_misses: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// L3 demand misses (DRAM accesses).
    pub l3_misses: u64,

    /// PC boundary for per-tenant attribution
    /// (`Simulator::with_tenant_split`): loads below it are the victim's,
    /// at or above it the attacker's. `0` disables attribution and both
    /// [`TenantCounters`] stay zero.
    pub tenant_boundary: u64,
    /// Victim-tenant share of the misprediction taxonomy.
    pub victim: TenantCounters,
    /// Attacker-tenant share of the misprediction taxonomy.
    pub attacker: TenantCounters,
}

/// Applies `f` pairwise to every counter field of two stat blocks and
/// builds the combined [`SimStats`] as an exhaustive struct literal — all
/// of `delta_since`, `scaled` and `accumulate` route through here, so
/// adding a counter to [`SimStats`] without deciding how it combines is a
/// compile error, not a silently-wrong projection.
macro_rules! map_counters {
    ($a:expr, $b:expr, $f:expr) => {{
        let (a, b) = ($a, $b);
        let f = $f;
        let tenant = |x: &TenantCounters, y: &TenantCounters| TenantCounters {
            loads: f(x.loads, y.loads),
            missed_dependencies: f(x.missed_dependencies, y.missed_dependencies),
            false_dependencies: f(x.false_dependencies, y.false_dependencies),
            false_bypasses: f(x.false_bypasses, y.false_bypasses),
        };
        SimStats {
            cycles: f(a.cycles, b.cycles),
            committed_uops: f(a.committed_uops, b.committed_uops),
            committed_loads: f(a.committed_loads, b.committed_loads),
            committed_stores: f(a.committed_stores, b.committed_stores),
            committed_branches: f(a.committed_branches, b.committed_branches),
            pred_no_dep: f(a.pred_no_dep, b.pred_no_dep),
            pred_mdp: f(a.pred_mdp, b.pred_mdp),
            pred_smb: f(a.pred_smb, b.pred_smb),
            missed_dependencies: f(a.missed_dependencies, b.missed_dependencies),
            false_dependencies: f(a.false_dependencies, b.false_dependencies),
            wrong_store: f(a.wrong_store, b.wrong_store),
            smb_errors: f(a.smb_errors, b.smb_errors),
            correct_mdp: f(a.correct_mdp, b.correct_mdp),
            correct_smb: f(a.correct_smb, b.correct_smb),
            correct_no_dep: f(a.correct_no_dep, b.correct_no_dep),
            mem_order_squashes: f(a.mem_order_squashes, b.mem_order_squashes),
            smb_squashes: f(a.smb_squashes, b.smb_squashes),
            branch_mispredicts: f(a.branch_mispredicts, b.branch_mispredicts),
            indirect_mispredicts: f(a.indirect_mispredicts, b.indirect_mispredicts),
            loads_bypassed: f(a.loads_bypassed, b.loads_bypassed),
            loads_forwarded: f(a.loads_forwarded, b.loads_forwarded),
            loads_from_cache: f(a.loads_from_cache, b.loads_from_cache),
            class_direct_bypass: f(a.class_direct_bypass, b.class_direct_bypass),
            class_no_offset: f(a.class_no_offset, b.class_no_offset),
            class_offset: f(a.class_offset, b.class_offset),
            class_mdp_only: f(a.class_mdp_only, b.class_mdp_only),
            dependent_wait_cycles: f(a.dependent_wait_cycles, b.dependent_wait_cycles),
            dependent_wait_count: f(a.dependent_wait_count, b.dependent_wait_count),
            stall_frontend: f(a.stall_frontend, b.stall_frontend),
            stall_rob: f(a.stall_rob, b.stall_rob),
            stall_iq: f(a.stall_iq, b.stall_iq),
            stall_lq: f(a.stall_lq, b.stall_lq),
            stall_sb: f(a.stall_sb, b.stall_sb),
            l1i_misses: f(a.l1i_misses, b.l1i_misses),
            l1d_misses: f(a.l1d_misses, b.l1d_misses),
            l2_misses: f(a.l2_misses, b.l2_misses),
            l3_misses: f(a.l3_misses, b.l3_misses),
            tenant_boundary: a.tenant_boundary.max(b.tenant_boundary),
            victim: tenant(&a.victim, &b.victim),
            attacker: tenant(&a.attacker, &b.attacker),
        }
    }};
}

impl SimStats {
    /// Instructions (micro-ops) per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_uops as f64 / self.cycles as f64
        }
    }

    /// Total memory-dependence mispredictions (Fig. 8's bar height):
    /// missed + false + wrong-store + SMB errors.
    pub fn total_mispredictions(&self) -> u64 {
        self.missed_dependencies + self.false_dependencies + self.wrong_store + self.smb_errors
    }

    /// Mispredictions that require a squash ("speculative errors" in
    /// Fig. 8): missed dependencies, wrong-store conflicts and SMB errors.
    pub fn speculative_errors(&self) -> u64 {
        self.missed_dependencies + self.wrong_store + self.smb_errors
    }

    /// Memory-dependence mispredictions per kilo-instruction.
    pub fn mdp_mpki(&self) -> f64 {
        mascot_stats::summary::mpki(self.total_mispredictions(), self.committed_uops)
    }

    /// Average dispatch→issue wait of load-consuming uops (§VI-A).
    pub fn avg_dependent_wait(&self) -> f64 {
        if self.dependent_wait_count == 0 {
            0.0
        } else {
            self.dependent_wait_cycles as f64 / self.dependent_wait_count as f64
        }
    }

    /// Fraction of committed loads with an in-flight dependence of `class`.
    pub fn class_fraction(&self, class: BypassClass) -> f64 {
        if self.committed_loads == 0 {
            return 0.0;
        }
        let n = match class {
            BypassClass::DirectBypass => self.class_direct_bypass,
            BypassClass::NoOffset => self.class_no_offset,
            BypassClass::Offset => self.class_offset,
            BypassClass::MdpOnly => self.class_mdp_only,
        };
        n as f64 / self.committed_loads as f64
    }

    /// The tenant counters `pc` falls on, or `None` when tenant
    /// attribution is disabled (`tenant_boundary == 0`).
    pub fn tenant_mut(&mut self, pc: u64) -> Option<&mut TenantCounters> {
        if self.tenant_boundary == 0 {
            None
        } else if pc >= self.tenant_boundary {
            Some(&mut self.attacker)
        } else {
            Some(&mut self.victim)
        }
    }

    /// Cycles with zero dispatch, attributed to the first blocking reason.
    pub fn total_dispatch_stalls(&self) -> u64 {
        self.stall_frontend + self.stall_rob + self.stall_iq + self.stall_lq + self.stall_sb
    }

    /// Verifies the accounting identities that relate these counters to one
    /// another, returning a description of the first violated identity.
    ///
    /// Every committed load is counted exactly once by the prediction
    /// census, the served-path census and the misprediction taxonomy, so
    /// their sums must all equal `committed_loads`; the in-flight class
    /// census and the stall taxonomy are bounded sums. The identities hold
    /// mid-run too (the cycle auditor checks them every cycle);
    /// cycle-relative bounds are skipped while `cycles` is still zero.
    pub fn check_identities(&self) -> Result<(), String> {
        let check = |name: &str, lhs: u64, rhs: u64| {
            if lhs == rhs {
                Ok(())
            } else {
                Err(format!("{name}: {lhs} != {rhs}"))
            }
        };
        check(
            "prediction census covers committed loads \
             (pred_no_dep + pred_mdp + pred_smb == committed_loads)",
            self.pred_no_dep + self.pred_mdp + self.pred_smb,
            self.committed_loads,
        )?;
        check(
            "served-path census covers committed loads \
             (cache + forwarded + bypassed == committed_loads)",
            self.loads_from_cache + self.loads_forwarded + self.loads_bypassed,
            self.committed_loads,
        )?;
        check(
            "no-dependence taxonomy (correct_no_dep + missed == pred_no_dep)",
            self.correct_no_dep + self.missed_dependencies,
            self.pred_no_dep,
        )?;
        check(
            "dependence taxonomy (correct_mdp + wrong_store + false_deps \
             + correct_smb + smb_errors == pred_mdp + pred_smb)",
            self.correct_mdp
                + self.wrong_store
                + self.false_dependencies
                + self.correct_smb
                + self.smb_errors,
            self.pred_mdp + self.pred_smb,
        )?;
        if self.tenant_boundary != 0 {
            check(
                "tenant loads cover committed loads \
                 (victim.loads + attacker.loads == committed_loads)",
                self.victim.loads + self.attacker.loads,
                self.committed_loads,
            )?;
            check(
                "tenant missed-dependency split sums to the total",
                self.victim.missed_dependencies + self.attacker.missed_dependencies,
                self.missed_dependencies,
            )?;
            check(
                "tenant false-dependency split sums to the total",
                self.victim.false_dependencies + self.attacker.false_dependencies,
                self.false_dependencies,
            )?;
            check(
                "tenant false-bypass split sums to smb_squashes + smb_errors",
                self.victim.false_bypasses + self.attacker.false_bypasses,
                self.smb_squashes + self.smb_errors,
            )?;
        } else if self.victim != TenantCounters::default()
            || self.attacker != TenantCounters::default()
        {
            return Err(format!(
                "tenant counters nonzero without a tenant boundary: \
                 victim {:?}, attacker {:?}",
                self.victim, self.attacker
            ));
        }
        let class_census = self.class_direct_bypass
            + self.class_no_offset
            + self.class_offset
            + self.class_mdp_only;
        if class_census > self.committed_loads {
            return Err(format!(
                "class census exceeds committed loads: {class_census} > {}",
                self.committed_loads
            ));
        }
        if self.committed_loads + self.committed_stores + self.committed_branches
            > self.committed_uops
        {
            return Err(format!(
                "per-kind commits exceed total: {} loads + {} stores + {} branches > {} uops",
                self.committed_loads,
                self.committed_stores,
                self.committed_branches,
                self.committed_uops
            ));
        }
        if self.dependent_wait_count > self.committed_uops {
            return Err(format!(
                "dependent-wait count exceeds commits: {} > {}",
                self.dependent_wait_count, self.committed_uops
            ));
        }
        if self.cycles > 0 {
            if self.total_dispatch_stalls() > self.cycles {
                return Err(format!(
                    "dispatch stalls exceed cycles: {} > {}",
                    self.total_dispatch_stalls(),
                    self.cycles
                ));
            }
            if self.stall_frontend > self.cycles {
                return Err(format!(
                    "frontend stalls exceed cycles: {} > {}",
                    self.stall_frontend, self.cycles
                ));
            }
        }
        Ok(())
    }

    /// Counter-wise difference `self - start`, for measuring a window of a
    /// longer run: snapshot the stats at the window's start, run on, and
    /// diff. Every counter must be monotonic between the two snapshots
    /// (they all are — the engine only ever increments them).
    ///
    /// `tenant_boundary` is configuration, not a counter; the larger of the
    /// two is kept (they are equal in practice — a window cannot change the
    /// boundary mid-run).
    ///
    /// # Panics
    ///
    /// Panics if any counter of `start` exceeds its counterpart in `self`
    /// (the snapshots are not from the same monotonic run).
    pub fn delta_since(&self, start: &SimStats) -> SimStats {
        map_counters!(self, start, |a: u64, b: u64| {
            a.checked_sub(b)
                .expect("stats snapshots must come from one monotonic run")
        })
    }

    /// Counter-wise scaling by the exact rational `represented / measured`,
    /// rounded to the nearest integer: the cluster-weighted projection step
    /// of sampled simulation (DESIGN.md §13). A representative window of
    /// `measured` committed uops stands in for `represented` uops of the
    /// full trace. When `represented == measured` the result is bit-exact
    /// (`scale == 1.0` and every counter round-trips through `f64`
    /// unchanged — counters are far below 2^53).
    ///
    /// # Panics
    ///
    /// Panics if `measured` is zero.
    pub fn scaled(&self, represented: u64, measured: u64) -> SimStats {
        assert!(measured > 0, "cannot scale a zero-uop measurement");
        let scale = represented as f64 / measured as f64;
        map_counters!(self, self, |a: u64, _| (a as f64 * scale).round() as u64)
    }

    /// Counter-wise accumulation of `other` into `self` (the Σ of the
    /// cluster-weighted projection, and of per-interval deltas back into a
    /// full-run total).
    pub fn accumulate(&mut self, other: &SimStats) {
        *self = map_counters!(&*self, other, |a: u64, b: u64| a + b);
    }

    /// Fraction of committed loads with any in-flight dependence (Fig. 2's
    /// bar height).
    pub fn dependent_load_fraction(&self) -> f64 {
        if self.committed_loads == 0 {
            return 0.0;
        }
        (self.class_direct_bypass + self.class_no_offset + self.class_offset + self.class_mdp_only)
            as f64
            / self.committed_loads as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn taxonomy_sums() {
        let s = SimStats {
            missed_dependencies: 3,
            false_dependencies: 5,
            wrong_store: 2,
            smb_errors: 1,
            committed_uops: 1000,
            ..Default::default()
        };
        assert_eq!(s.total_mispredictions(), 11);
        assert_eq!(s.speculative_errors(), 6);
        assert!((s.mdp_mpki() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn identities_accept_consistent_counters() {
        let s = SimStats {
            cycles: 100,
            committed_uops: 30,
            committed_loads: 10,
            pred_no_dep: 6,
            pred_mdp: 3,
            pred_smb: 1,
            correct_no_dep: 5,
            missed_dependencies: 1,
            correct_mdp: 2,
            wrong_store: 1,
            correct_smb: 1,
            loads_from_cache: 7,
            loads_forwarded: 2,
            loads_bypassed: 1,
            class_direct_bypass: 3,
            ..Default::default()
        };
        assert_eq!(s.check_identities(), Ok(()));
        // The zeroed struct is trivially consistent too.
        assert_eq!(SimStats::default().check_identities(), Ok(()));
    }

    #[test]
    fn identities_reject_served_census_undercount() {
        let s = SimStats {
            committed_loads: 10,
            pred_no_dep: 10,
            correct_no_dep: 10,
            loads_from_cache: 9, // one load unaccounted
            ..Default::default()
        };
        let err = s.check_identities().unwrap_err();
        assert!(err.contains("served-path census"), "{err}");
    }

    #[test]
    fn identities_reject_stall_overcount() {
        let s = SimStats {
            cycles: 10,
            stall_rob: 11,
            ..Default::default()
        };
        let err = s.check_identities().unwrap_err();
        assert!(err.contains("dispatch stalls"), "{err}");
    }

    #[test]
    fn delta_and_accumulate_are_inverse() {
        let start = SimStats {
            cycles: 100,
            committed_uops: 30,
            committed_loads: 10,
            stall_rob: 7,
            l2_misses: 3,
            tenant_boundary: 1 << 34,
            victim: TenantCounters {
                loads: 6,
                false_bypasses: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let end = SimStats {
            cycles: 250,
            committed_uops: 90,
            committed_loads: 31,
            stall_rob: 11,
            l2_misses: 8,
            tenant_boundary: 1 << 34,
            victim: TenantCounters {
                loads: 20,
                false_bypasses: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut window = end.delta_since(&start);
        assert_eq!(window.cycles, 150);
        assert_eq!(window.victim.loads, 14);
        assert_eq!(window.tenant_boundary, 1 << 34);
        window.accumulate(&start);
        assert_eq!(window, end);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn delta_rejects_non_monotonic_snapshots() {
        let big = SimStats {
            cycles: 10,
            ..Default::default()
        };
        let _ = SimStats::default().delta_since(&big);
    }

    #[test]
    fn scaling_by_one_is_exact_and_by_weight_rounds() {
        let s = SimStats {
            cycles: 12_345,
            committed_uops: 10_000,
            committed_loads: 2_001,
            smb_squashes: 3,
            ..Default::default()
        };
        assert_eq!(s.scaled(10_000, 10_000), s);
        let tripled = s.scaled(30_000, 10_000);
        assert_eq!(tripled.cycles, 37_035);
        assert_eq!(tripled.committed_loads, 6_003);
        // Non-integral scale rounds to nearest.
        let s = SimStats {
            smb_squashes: 3,
            ..Default::default()
        };
        assert_eq!(s.scaled(1, 2).smb_squashes, 2); // 1.5 rounds up
    }

    #[test]
    fn class_fractions() {
        let s = SimStats {
            committed_loads: 100,
            class_direct_bypass: 30,
            class_no_offset: 10,
            class_offset: 5,
            class_mdp_only: 5,
            ..Default::default()
        };
        assert!((s.class_fraction(BypassClass::DirectBypass) - 0.3).abs() < 1e-12);
        assert!((s.dependent_load_fraction() - 0.5).abs() < 1e-12);
    }
}
