//! Trace replay: drive a shard pool with the training traffic a simulated
//! core would generate, straight from an `.mtrc` trace.
//!
//! `mascotd --replay <trace>` uses this to warm every shard's predictor
//! before taking live traffic. The trace is walked in program order and cut
//! into segments; each segment broadcasts its branch/store events to every
//! shard (predictor history is global, but shards are independent — each
//! keeps its own copy), then predicts the segment's loads and immediately
//! trains them with the trace's ground-truth outcome.
//!
//! This is a deliberate approximation of the simulator's timing: a real
//! core interleaves history events and lookups per-uop, while replay
//! applies them with segment granularity ([`SEGMENT_UOPS`] uops). The
//! predictors tolerate this — their history registers shift the same
//! events in the same order, just slightly earlier relative to each
//! lookup — and it is what lets replay batch work per shard instead of
//! doing one synchronous round-trip per uop.

use std::sync::mpsc::channel;

use mascot::prediction::{LoadOutcome, ObservedDependence, StoreDistance};
use mascot_sim::uop::{Trace, UopKind};

use crate::shard::{ReplySink, ShardJob, ShardPool, ShardReply, SyncEvent};
use crate::wire::{PredictItem, TrainItem, MAX_BATCH};

/// Uops per replay segment (events broadcast + loads predicted/trained).
pub const SEGMENT_UOPS: usize = 1024;

/// What a replay run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Total uops walked.
    pub uops: u64,
    /// Loads predicted (and trained).
    pub loads: u64,
    /// Train items the shards applied.
    pub applied: u64,
    /// Train items dropped on a stale ticket (0 unless the pending window
    /// is smaller than a segment's per-shard load count).
    pub stale: u64,
    /// Segments replayed.
    pub segments: u64,
}

/// One load awaiting its segment flush.
struct PendingLoad {
    item: PredictItem,
    outcome: LoadOutcome,
}

/// Converts a trace dependence into the commit-time outcome the simulator
/// would record: dependences beyond the 127-store window are out of reach
/// of any in-flight store and train as independent.
fn outcome_of(dep: Option<mascot_sim::uop::TraceDep>) -> LoadOutcome {
    match dep.and_then(|d| StoreDistance::new(d.distance).map(|dist| (d, dist))) {
        Some((d, distance)) => LoadOutcome::dependent(ObservedDependence {
            distance,
            class: d.class,
            store_pc: d.store_pc,
            branches_between: d.branches_between,
        }),
        None => LoadOutcome::independent(),
    }
}

/// Replays `trace` through `pool`, blocking until every segment has been
/// trained.
pub fn replay_trace(pool: &ShardPool, trace: &Trace) -> ReplayReport {
    let mut report = ReplayReport::default();
    let mut events: Vec<SyncEvent> = Vec::with_capacity(SEGMENT_UOPS);
    let mut loads: Vec<PendingLoad> = Vec::with_capacity(SEGMENT_UOPS);
    let mut store_count: u64 = 0;
    let mut in_segment = 0usize;

    for uop in &trace.uops {
        match uop.kind {
            UopKind::Alu => {}
            UopKind::Branch { kind, taken, target } => {
                events.push(SyncEvent::Branch(mascot::history::BranchEvent {
                    pc: uop.pc,
                    kind,
                    taken,
                    target,
                }));
            }
            UopKind::Store { .. } => {
                // Same numbering as the simulator: the store's own seq is
                // the count of stores dispatched before it.
                events.push(SyncEvent::StoreDispatch {
                    pc: uop.pc,
                    store_seq: store_count,
                });
                store_count += 1;
            }
            UopKind::Load { dep, .. } => {
                loads.push(PendingLoad {
                    item: PredictItem {
                        pc: uop.pc,
                        store_seq: store_count,
                    },
                    outcome: outcome_of(dep),
                });
            }
        }
        report.uops += 1;
        in_segment += 1;
        if in_segment >= SEGMENT_UOPS {
            flush_segment(pool, &mut events, &mut loads, &mut report);
            in_segment = 0;
        }
    }
    flush_segment(pool, &mut events, &mut loads, &mut report);
    pool.fence();
    report
}

/// Broadcasts the segment's events, then predicts and trains its loads.
fn flush_segment(
    pool: &ShardPool,
    events: &mut Vec<SyncEvent>,
    loads: &mut Vec<PendingLoad>,
    report: &mut ReplayReport,
) {
    if events.is_empty() && loads.is_empty() {
        return;
    }
    report.segments += 1;
    pool.broadcast_sync(std::mem::take(events));
    if loads.is_empty() {
        return;
    }

    // Scatter the loads by shard (preserving per-shard program order).
    let shards = pool.num_shards();
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (i, load) in loads.iter().enumerate() {
        by_shard[pool.shard_of(load.item.pc)].push(i);
    }

    let (tx, rx) = channel();
    let mut outstanding = 0usize;
    for (shard, idxs) in by_shard.iter().enumerate() {
        for chunk in idxs.chunks(MAX_BATCH) {
            pool.send(
                shard,
                ShardJob::Predict {
                    items: chunk.iter().map(|&i| loads[i].item).collect(),
                    tag: shard as u64,
                    reply: ReplySink::new(tx.clone()),
                },
            );
            outstanding += 1;
        }
    }

    // Gather tickets and train each shard's loads as its predictions
    // arrive; chunk boundaries are tracked per shard. Train replies share
    // the channel and may interleave with later predict replies.
    let mut next_chunk_start = vec![0usize; shards];
    let mut train_outstanding = 0usize;
    let mut predicts_seen = 0usize;
    while predicts_seen < outstanding {
        let (shard, reply) = rx.recv().expect("shard worker alive during replay");
        let shard = shard as usize;
        let replies = match reply {
            ShardReply::Predict(r) => {
                predicts_seen += 1;
                r
            }
            ShardReply::Train { applied, stale } => {
                report.applied += u64::from(applied);
                report.stale += u64::from(stale);
                train_outstanding -= 1;
                continue;
            }
            // Replay never issues snapshot/restore jobs on this channel.
            ShardReply::Snapshot(_) | ShardReply::Restore(_) => continue,
        };
        let start = next_chunk_start[shard];
        let idxs = &by_shard[shard][start..start + replies.len()];
        next_chunk_start[shard] = start + replies.len();
        let items: Vec<TrainItem> = idxs
            .iter()
            .zip(&replies)
            .map(|(&i, r)| TrainItem {
                ticket: r.ticket,
                pc: loads[i].item.pc,
                outcome: loads[i].outcome,
            })
            .collect();
        report.loads += items.len() as u64;
        pool.send(
            shard,
            ShardJob::Train {
                items,
                tag: shard as u64,
                reply: ReplySink::new(tx.clone()),
            },
        );
        train_outstanding += 1;
    }
    drop(tx);
    for _ in 0..train_outstanding {
        if let Ok((_, ShardReply::Train { applied, stale })) = rx.recv() {
            report.applied += u64::from(applied);
            report.stale += u64::from(stale);
        }
    }
    loads.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardPoolConfig;
    use mascot_predictors::PredictorKind;
    use mascot_workloads::spec;

    #[test]
    fn replay_trains_every_load() {
        let profile = spec::profile("perlbench2").expect("known benchmark");
        let trace = mascot_workloads::generator::generate(&profile, 42, 5_000);
        let loads = trace
            .uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Load { .. }))
            .count() as u64;
        let pool = ShardPool::new(
            PredictorKind::Mascot,
            &ShardPoolConfig {
                shards: 3,
                ..Default::default()
            },
        );
        let report = replay_trace(&pool, &trace);
        assert_eq!(report.uops, trace.uops.len() as u64);
        assert_eq!(report.loads, loads);
        assert_eq!(report.applied, loads, "every ticket trains exactly once");
        assert_eq!(report.stale, 0);
        assert!(report.segments >= 1);
        let stats = pool.shutdown();
        assert_eq!(stats.total_predicts(), loads);
        assert_eq!(stats.total_trains(), loads);
    }

    #[test]
    fn out_of_window_dependences_train_independent() {
        use mascot::prediction::BypassClass;
        let far = mascot_sim::uop::TraceDep {
            distance: 500, // beyond StoreDistance::MAX
            class: BypassClass::DirectBypass,
            store_pc: 0x10,
            branches_between: 0,
        };
        assert_eq!(outcome_of(Some(far)), LoadOutcome::independent());
        let near = mascot_sim::uop::TraceDep {
            distance: 3,
            class: BypassClass::DirectBypass,
            store_pc: 0x10,
            branches_between: 0,
        };
        assert!(outcome_of(Some(near)).is_dependent());
        assert_eq!(outcome_of(None), LoadOutcome::independent());
    }
}
