//! A minimal synchronous client for the `mascot-serve` wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues one request at a
//! time; the load generator opens a client per thread. Convenience
//! wrappers return the typed payload and surface protocol-level `Busy` /
//! `Error` responses as values rather than errors, since backpressure is
//! an expected outcome the caller must handle.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{
    self, PredictItem, PredictReply, Request, Response, StatsReport, TrainItem, WireError,
};

/// A connected `mascot-serve` client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

/// Outcome of a predict or train call: served, or pushed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Served<T> {
    /// The request was processed.
    Ok(T),
    /// A shard queue was full; retry later.
    Busy,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request frame and reads the matching response frame.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on I/O failure, a malformed response, a
    /// connection closed before the response arrived, or an oversized
    /// batch ([`WireError::BatchTooLarge`], rejected before any byte is
    /// written so the stream stays in sync).
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        self.stream.write_all(&req.encode_frame()?)?;
        let (code, payload) = wire::read_frame(&mut self.stream)?.ok_or(WireError::Closed)?;
        Response::decode(req.opcode(), code, &payload)
    }

    /// Predicts a batch of loads.
    ///
    /// # Errors
    ///
    /// Wire errors as in [`Client::request`]; a server-side `Error`
    /// response is mapped to [`WireError::Corrupt`].
    pub fn predict(&mut self, items: Vec<PredictItem>) -> Result<Served<Vec<PredictReply>>, WireError> {
        match self.request(&Request::Predict(items))? {
            Response::Predict(replies) => Ok(Served::Ok(replies)),
            Response::Busy => Ok(Served::Busy),
            Response::Error(_) => Err(WireError::Corrupt("server rejected predict")),
            _ => Err(WireError::Corrupt("mismatched response")),
        }
    }

    /// Trains from a batch of outcomes; returns `(applied, stale)` counts.
    ///
    /// # Errors
    ///
    /// Wire errors as in [`Client::request`]; a server-side `Error`
    /// response is mapped to [`WireError::Corrupt`].
    pub fn train(&mut self, items: Vec<TrainItem>) -> Result<Served<(u32, u32)>, WireError> {
        match self.request(&Request::Train(items))? {
            Response::Train { applied, stale } => Ok(Served::Ok((applied, stale))),
            Response::Busy => Ok(Served::Busy),
            Response::Error(_) => Err(WireError::Corrupt("server rejected train")),
            _ => Err(WireError::Corrupt("mismatched response")),
        }
    }

    /// Fetches the per-shard statistics snapshot.
    ///
    /// # Errors
    ///
    /// Wire errors as in [`Client::request`].
    pub fn stats(&mut self) -> Result<StatsReport, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            _ => Err(WireError::Corrupt("mismatched response")),
        }
    }

    /// Requests a graceful shutdown; returns the server's lifetime item
    /// count.
    ///
    /// # Errors
    ///
    /// Wire errors as in [`Client::request`].
    pub fn shutdown(&mut self) -> Result<u64, WireError> {
        match self.request(&Request::Shutdown)? {
            Response::Shutdown { served } => Ok(served),
            _ => Err(WireError::Corrupt("mismatched response")),
        }
    }

    /// Serializes the server's full predictor state into a snapshot
    /// container.
    ///
    /// # Errors
    ///
    /// Wire errors as in [`Client::request`]; a server-side `Error`
    /// response (e.g. oversized state) is mapped to [`WireError::Corrupt`].
    pub fn snapshot(&mut self) -> Result<Vec<u8>, WireError> {
        match self.request(&Request::Snapshot)? {
            Response::Snapshot(bytes) => Ok(bytes),
            Response::Error(_) => Err(WireError::Corrupt("server rejected snapshot")),
            _ => Err(WireError::Corrupt("mismatched response")),
        }
    }

    /// Replaces the server's predictor state from a snapshot container;
    /// returns the entries restored across shards. The server validates the
    /// container fail-closed and reshards when its shard count differs from
    /// the snapshot's.
    ///
    /// # Errors
    ///
    /// Wire errors as in [`Client::request`]; a rejected snapshot surfaces
    /// as the server's `Error` message via [`WireError::Corrupt`].
    pub fn restore(&mut self, snapshot: Vec<u8>) -> Result<u64, WireError> {
        match self.request(&Request::Restore(snapshot))? {
            Response::Restore { restored_entries } => Ok(restored_entries),
            Response::Error(_) => Err(WireError::Corrupt("server rejected restore")),
            _ => Err(WireError::Corrupt("mismatched response")),
        }
    }
}
