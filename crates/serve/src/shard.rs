//! The sharded worker pool: one OS thread per shard, each owning a private
//! predictor instance.
//!
//! Requests are routed by a hash of the load PC, so every dynamic instance
//! of a load trains and queries the *same* predictor — the property the
//! PC-indexed tables rely on — while shards share nothing and never lock.
//! Each shard is fed through a **bounded** `sync_channel`; when a queue is
//! full the caller gets the job back and answers `Busy` (explicit
//! backpressure, never an unbounded buffer). A worker amortises queue
//! synchronisation by draining up to `max_batch` jobs per blocking `recv`.
//!
//! Because [`mascot::MemDepPredictor`] threads opaque metadata from
//! `predict` to `train`, each shard keeps a fixed-size *pending table*: a
//! predict call parks `(pc, prediction, meta)` in a slot and returns the
//! slot's ticket; the train call quotes the ticket to retrieve them. A
//! ticket whose slot has been reused (the prediction outlived the window)
//! counts as a stale train and is dropped — predictor state is never
//! trained with someone else's metadata.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Instant;

use mascot::history::BranchEvent;
use mascot::prediction::{MemDepPredictor, MemDepPrediction, PredictReq, TrainReq};
use mascot_predictors::{AnyMeta, AnyPredictor, PredictorKind};

use crate::metrics::ShardMetrics;
use crate::poll::Waker;
use crate::wire::{PredictItem, PredictReply, StatsReport, TrainItem};

/// Default shard count.
pub const DEFAULT_SHARDS: usize = 4;
/// Default bounded queue depth per shard (jobs, not items).
pub const DEFAULT_QUEUE_DEPTH: usize = 256;
/// Default maximum jobs drained per blocking queue pop.
pub const DEFAULT_MAX_BATCH: usize = 32;
/// Default pending-prediction slots per shard (power of two).
pub const DEFAULT_PENDING_CAPACITY: usize = 1 << 15;

/// Sizing knobs for a [`ShardPool`].
#[derive(Debug, Clone)]
pub struct ShardPoolConfig {
    /// Number of worker threads / predictor instances.
    pub shards: usize,
    /// Bounded queue depth per shard.
    pub queue_depth: usize,
    /// Maximum jobs drained per blocking queue pop.
    pub max_batch: usize,
    /// Pending-prediction slots per shard (rounded up to a power of two).
    pub pending_capacity: usize,
    /// Treat a pending-table eviction as fatal instead of a silent drop.
    ///
    /// A `predict` whose slot is recycled before its `train` arrives is
    /// normally just counted (`evicted_pending`) and the late train goes
    /// stale — acceptable under overload, but in an audit run it means the
    /// deployment's in-flight window exceeds `pending_capacity` and
    /// training silently diverges from the measured workload. `mascotd
    /// --audit` runs with this set.
    pub strict_tickets: bool,
}

impl Default for ShardPoolConfig {
    fn default() -> Self {
        Self {
            shards: DEFAULT_SHARDS,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            max_batch: DEFAULT_MAX_BATCH,
            pending_capacity: DEFAULT_PENDING_CAPACITY,
            strict_tickets: false,
        }
    }
}

/// A predictor-state event broadcast to every shard (replay traffic).
#[derive(Debug, Clone, Copy)]
pub enum SyncEvent {
    /// A committed-path branch.
    Branch(BranchEvent),
    /// A store dispatch.
    StoreDispatch {
        /// PC of the store.
        pc: u64,
        /// Sequence number of the store.
        store_seq: u64,
    },
}

/// Where a shard worker posts a job's reply: an unbounded channel plus an
/// optional [`Waker`] for a parked event loop.
///
/// Workers never block on delivery — the channel is unbounded and the
/// eventfd write behind [`Waker::wake`] is non-blocking — which is what
/// lets the event loop safely park in `epoll_wait` and issue blocking
/// in-loop snapshot/restore fences without risking a worker/loop deadlock.
#[derive(Clone)]
pub struct ReplySink {
    tx: Sender<(u64, ShardReply)>,
    waker: Option<Arc<Waker>>,
}

impl std::fmt::Debug for ReplySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplySink")
            .field("waker", &self.waker.is_some())
            .finish()
    }
}

impl ReplySink {
    /// A sink that only delivers to `tx` (the receiver is being polled or
    /// blocked on directly).
    pub fn new(tx: Sender<(u64, ShardReply)>) -> Self {
        Self { tx, waker: None }
    }

    /// A sink that additionally wakes `waker` after every delivery, for
    /// receivers parked in [`crate::poll::Poller::wait`].
    pub fn with_waker(tx: Sender<(u64, ShardReply)>, waker: Arc<Waker>) -> Self {
        Self {
            tx,
            waker: Some(waker),
        }
    }

    /// Delivers one reply. A gone receiver is fine — the work is already
    /// done either way (e.g. the client disconnected mid-flight).
    pub fn send(&self, tag: u64, reply: ShardReply) {
        let _ = self.tx.send((tag, reply));
        if let Some(waker) = &self.waker {
            waker.wake();
        }
    }
}

/// A unit of work on a shard queue.
pub enum ShardJob {
    /// Predict a sub-batch; the reply carries `tag` for reassembly.
    Predict {
        /// The items, all owned by this shard.
        items: Vec<PredictItem>,
        /// Caller-chosen tag echoed in the reply.
        tag: u64,
        /// Where to deliver the reply.
        reply: ReplySink,
    },
    /// Train from a sub-batch of outcomes.
    Train {
        /// The items, all owned by this shard.
        items: Vec<TrainItem>,
        /// Caller-chosen tag echoed in the reply.
        tag: u64,
        /// Where to deliver the reply.
        reply: ReplySink,
    },
    /// Apply predictor-state events (no reply).
    Sync(Vec<SyncEvent>),
    /// Serialize this shard's predictor state.
    Snapshot {
        /// Caller-chosen tag echoed in the reply.
        tag: u64,
        /// Where to deliver the reply.
        reply: ReplySink,
    },
    /// Swap in a fully-built replacement predictor (decoded and validated by
    /// the caller) and clear the pending table — parked tickets reference
    /// metadata from the predictor being replaced.
    Restore {
        /// The replacement predictor.
        predictor: Box<AnyPredictor>,
        /// Caller-chosen tag echoed in the reply.
        tag: u64,
        /// Where to deliver the reply.
        reply: ReplySink,
    },
    /// Park the worker on a barrier (used by tests and by callers that need
    /// a completion fence: the worker has necessarily finished everything
    /// queued before this job when the barrier releases).
    Wait(Arc<Barrier>),
}

impl std::fmt::Debug for ShardJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardJob::Predict { items, tag, .. } => f
                .debug_struct("Predict")
                .field("items", &items.len())
                .field("tag", tag)
                .finish(),
            ShardJob::Train { items, tag, .. } => f
                .debug_struct("Train")
                .field("items", &items.len())
                .field("tag", tag)
                .finish(),
            ShardJob::Sync(events) => f.debug_tuple("Sync").field(&events.len()).finish(),
            ShardJob::Snapshot { tag, .. } => {
                f.debug_struct("Snapshot").field("tag", tag).finish()
            }
            ShardJob::Restore { tag, .. } => f.debug_struct("Restore").field("tag", tag).finish(),
            ShardJob::Wait(_) => f.write_str("Wait"),
        }
    }
}

/// A shard's answer to a [`ShardJob::Predict`] or [`ShardJob::Train`].
#[derive(Debug)]
pub enum ShardReply {
    /// Predictions, in sub-batch order.
    Predict(Vec<PredictReply>),
    /// Training summary for the sub-batch.
    Train {
        /// Items whose ticket matched.
        applied: u32,
        /// Items dropped on a stale ticket.
        stale: u32,
    },
    /// The shard's serialized predictor state.
    Snapshot(Vec<u8>),
    /// Entries resident in the freshly swapped-in predictor.
    Restore(u64),
}

/// Routes a PC to a shard: multiply-shift mixing (fibonacci hashing) so
/// that the low bits of the shard index depend on every bit of the PC —
/// stride-patterned PCs must not all land on one shard.
#[inline]
pub fn shard_of(pc: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mixed = pc.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    ((mixed >> 32) as usize) % shards
}

/// A parked prediction awaiting its training outcome.
struct Pending {
    ticket: u32,
    pc: u64,
    prediction: mascot::prediction::MemDepPrediction,
    meta: AnyMeta,
}

/// Fixed-capacity, ticket-indexed open slab. Tickets increase monotonically
/// per shard; slot = ticket % capacity, so a slot naturally evicts the
/// prediction `capacity` tickets older — matching the intuition that
/// training interest decays with age.
struct PendingTable {
    slots: Vec<Option<Pending>>,
    mask: u32,
    next_ticket: u32,
}

impl PendingTable {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2);
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            mask: capacity as u32 - 1,
            next_ticket: 0,
        }
    }

    /// Parks a prediction and returns `(ticket, evicted)`: `evicted` is
    /// true when the slot still held an untrained prediction (the window
    /// outran the table and that older ticket is now silently stale).
    fn insert(
        &mut self,
        pc: u64,
        prediction: mascot::prediction::MemDepPrediction,
        meta: AnyMeta,
    ) -> (u32, bool) {
        let ticket = self.next_ticket;
        self.next_ticket = self.next_ticket.wrapping_add(1);
        let slot = &mut self.slots[(ticket & self.mask) as usize];
        let evicted = slot.is_some();
        *slot = Some(Pending {
            ticket,
            pc,
            prediction,
            meta,
        });
        (ticket, evicted)
    }

    fn take(&mut self, ticket: u32, pc: u64) -> Option<Pending> {
        let slot = &mut self.slots[(ticket & self.mask) as usize];
        match slot {
            Some(p) if p.ticket == ticket && p.pc == pc => slot.take(),
            _ => None,
        }
    }
}

/// The pool: shard senders, metrics, and worker join handles.
#[derive(Debug)]
pub struct ShardPool {
    senders: Vec<SyncSender<ShardJob>>,
    metrics: Vec<Arc<ShardMetrics>>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `cfg.shards` workers, each owning a freshly built `kind`
    /// predictor.
    pub fn new(kind: PredictorKind, cfg: &ShardPoolConfig) -> Self {
        assert!(cfg.shards > 0, "at least one shard");
        Self::with_predictors((0..cfg.shards).map(|_| kind.build()).collect(), cfg)
    }

    /// Spawns one worker per element of `predictors`, each owning its
    /// pre-built (e.g. snapshot-restored) predictor. `cfg.shards` is
    /// ignored; the pool's shard count is `predictors.len()`.
    pub fn with_predictors(predictors: Vec<AnyPredictor>, cfg: &ShardPoolConfig) -> Self {
        assert!(!predictors.is_empty(), "at least one shard");
        assert!(cfg.queue_depth > 0, "queue depth must be positive");
        let shards = predictors.len();
        let mut senders = Vec::with_capacity(shards);
        let mut metrics = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (shard, predictor) in predictors.into_iter().enumerate() {
            let (tx, rx) = sync_channel(cfg.queue_depth);
            let m = Arc::new(ShardMetrics::new());
            let worker_metrics = Arc::clone(&m);
            let max_batch = cfg.max_batch.max(1);
            let pending_capacity = cfg.pending_capacity;
            let strict_tickets = cfg.strict_tickets;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mascot-shard-{shard}"))
                    .spawn(move || {
                        worker(
                            rx,
                            predictor,
                            worker_metrics,
                            max_batch,
                            pending_capacity,
                            strict_tickets,
                        )
                    })
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
            metrics.push(m);
        }
        Self {
            senders,
            metrics,
            handles,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard owning `pc`.
    pub fn shard_of(&self, pc: u64) -> usize {
        shard_of(pc, self.senders.len())
    }

    /// Clones of the per-shard senders (for connection handlers).
    pub fn senders(&self) -> &[SyncSender<ShardJob>] {
        &self.senders
    }

    /// The per-shard metrics blocks.
    pub fn metrics(&self) -> &[Arc<ShardMetrics>] {
        &self.metrics
    }

    /// Non-blocking enqueue; hands the job back when the queue is full or
    /// the shard worker is gone.
    pub fn try_send(&self, shard: usize, job: ShardJob) -> Result<(), ShardJob> {
        self.senders[shard].try_send(job).map_err(|e| match e {
            TrySendError::Full(job) | TrySendError::Disconnected(job) => job,
        })
    }

    /// Blocking enqueue (replay traffic, which wants throughput rather than
    /// a `Busy` signal).
    pub fn send(&self, shard: usize, job: ShardJob) {
        let _ = self.senders[shard].send(job);
    }

    /// Broadcasts predictor-state events to every shard (blocking).
    pub fn broadcast_sync(&self, events: Vec<SyncEvent>) {
        if events.is_empty() {
            return;
        }
        for tx in &self.senders {
            let _ = tx.send(ShardJob::Sync(events.clone()));
        }
    }

    /// Blocks until every shard has drained everything queued before this
    /// call (a barrier job per shard).
    pub fn fence(&self) {
        let barrier = Arc::new(Barrier::new(self.senders.len() + 1));
        for tx in &self.senders {
            let _ = tx.send(ShardJob::Wait(Arc::clone(&barrier)));
        }
        barrier.wait();
    }

    /// Serializes every shard's predictor state, in shard order (blocking:
    /// each shard finishes the work queued ahead of its snapshot job first,
    /// so the result is a consistent point-in-time cut per shard).
    pub fn snapshot_shards(&self) -> Vec<Vec<u8>> {
        let (tx, rx) = std::sync::mpsc::channel();
        for (shard, sender) in self.senders.iter().enumerate() {
            let _ = sender.send(ShardJob::Snapshot {
                tag: shard as u64,
                reply: ReplySink::new(tx.clone()),
            });
        }
        drop(tx);
        let mut payloads = vec![Vec::new(); self.senders.len()];
        for (tag, reply) in rx.iter() {
            if let ShardReply::Snapshot(bytes) = reply {
                payloads[tag as usize] = bytes;
            }
        }
        payloads
    }

    /// Swaps one pre-built predictor into each shard (in shard order),
    /// clears the pending tables, and records each shard's restored entry
    /// count in its metrics. Returns the total across shards.
    ///
    /// # Panics
    ///
    /// When `predictors.len()` differs from the pool's shard count — the
    /// caller performs any resharding *before* handing the pool its new
    /// per-shard states.
    pub fn restore_shards(&self, predictors: Vec<AnyPredictor>) -> u64 {
        assert_eq!(
            predictors.len(),
            self.senders.len(),
            "one replacement predictor per shard"
        );
        let (tx, rx) = std::sync::mpsc::channel();
        for (shard, (sender, predictor)) in
            self.senders.iter().zip(predictors.into_iter()).enumerate()
        {
            let _ = sender.send(ShardJob::Restore {
                predictor: Box::new(predictor),
                tag: shard as u64,
                reply: ReplySink::new(tx.clone()),
            });
        }
        drop(tx);
        let mut total = 0u64;
        for (tag, reply) in rx.iter() {
            if let ShardReply::Restore(entries) = reply {
                self.metrics[tag as usize]
                    .restored_entries
                    .store(entries, Ordering::Relaxed);
                total += entries;
            }
        }
        total
    }

    /// Stamps the warm-start observability counters (snapshot age at
    /// restore, checkpoint/restore generation) on every shard's metrics.
    pub fn set_warm_start(&self, snapshot_age_s: u64, restarts: u64) {
        for m in &self.metrics {
            m.snapshot_age_s.store(snapshot_age_s, Ordering::Relaxed);
            m.restarts.store(restarts, Ordering::Relaxed);
        }
    }

    /// Snapshots every shard's counters.
    pub fn stats_report(&self) -> StatsReport {
        StatsReport {
            shards: self.metrics.iter().map(|m| m.snapshot()).collect(),
        }
    }

    /// Drops the senders and joins the workers; each worker drains every
    /// job already queued before exiting (`sync_channel` delivers buffered
    /// messages before reporting disconnect). Returns the final snapshot.
    ///
    /// # Panics
    ///
    /// When a shard worker died of a panic — most notably the
    /// `strict_tickets` pending-eviction hard error — so an audit run
    /// cannot silently absorb a dead shard into a clean exit.
    pub fn shutdown(self) -> StatsReport {
        let Self {
            senders,
            metrics,
            handles,
        } = self;
        drop(senders);
        let mut dead_shards = 0usize;
        for handle in handles {
            dead_shards += usize::from(handle.join().is_err());
        }
        let report = StatsReport {
            shards: metrics.iter().map(|m| m.snapshot()).collect(),
        };
        assert_eq!(
            dead_shards, 0,
            "{dead_shards} shard worker(s) panicked (see stderr)"
        );
        report
    }
}

/// Worker-owned scratch for the batched predictor calls: one request build,
/// one `predict_batch`/`train_batch` per drained job, no per-item predictor
/// dispatch.
#[derive(Default)]
struct BatchScratch {
    reqs: Vec<PredictReq>,
    out: Vec<(MemDepPrediction, AnyMeta)>,
    trains: Vec<TrainReq<AnyMeta>>,
}

/// The shard worker loop: block for one job, then drain up to `max_batch`
/// more without blocking, processing each in arrival order.
fn worker(
    rx: Receiver<ShardJob>,
    mut predictor: AnyPredictor,
    metrics: Arc<ShardMetrics>,
    max_batch: usize,
    pending_capacity: usize,
    strict_tickets: bool,
) {
    let mut pending = PendingTable::new(pending_capacity);
    let mut scratch = BatchScratch::default();
    while let Ok(first) = rx.recv() {
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        process(
            first,
            &mut predictor,
            &mut pending,
            &mut scratch,
            &metrics,
            strict_tickets,
        );
        for _ in 1..max_batch {
            match rx.try_recv() {
                Ok(job) => process(
                    job,
                    &mut predictor,
                    &mut pending,
                    &mut scratch,
                    &metrics,
                    strict_tickets,
                ),
                Err(_) => break,
            }
        }
    }
}

fn process(
    job: ShardJob,
    predictor: &mut AnyPredictor,
    pending: &mut PendingTable,
    scratch: &mut BatchScratch,
    metrics: &ShardMetrics,
    strict_tickets: bool,
) {
    let t0 = Instant::now();
    match job {
        ShardJob::Predict { items, tag, reply } => {
            let n = items.len() as u64;
            scratch.reqs.clear();
            scratch.reqs.extend(items.iter().map(|item| PredictReq {
                pc: item.pc,
                store_seq: item.store_seq,
                oracle: None,
            }));
            predictor.predict_batch(&scratch.reqs, &mut scratch.out);
            let mut out = Vec::with_capacity(items.len());
            let mut evicted = 0u64;
            for (item, (prediction, meta)) in items.iter().zip(scratch.out.drain(..)) {
                let (ticket, evicted_one) = pending.insert(item.pc, prediction, meta);
                evicted += u64::from(evicted_one);
                out.push(PredictReply { ticket, prediction });
            }
            if evicted > 0 {
                metrics.evicted_pending.fetch_add(evicted, Ordering::Relaxed);
                assert!(
                    !strict_tickets,
                    "pending-table eviction under strict_tickets: {evicted} \
                     in-flight prediction(s) recycled before their train \
                     arrived (capacity {}); raise pending_capacity or lower \
                     the in-flight window",
                    pending.slots.len(),
                );
            }
            metrics.predicts.fetch_add(n, Ordering::Relaxed);
            metrics.requests.fetch_add(n, Ordering::Relaxed);
            reply.send(tag, ShardReply::Predict(out));
        }
        ShardJob::Train { items, tag, reply } => {
            let n = items.len() as u64;
            let (mut applied, mut stale) = (0u32, 0u32);
            // Misprediction taxonomy of the drained outcomes (the serving
            // mirror of the simulator's per-tenant pollution counters).
            let (mut missed, mut false_dep, mut false_byp) = (0u64, 0u64, 0u64);
            scratch.trains.clear();
            for item in items {
                match pending.take(item.ticket, item.pc) {
                    Some(p) => {
                        match (&p.prediction, item.outcome.dependence.is_some()) {
                            (MemDepPrediction::NoDependence, true) => missed += 1,
                            (MemDepPrediction::Dependence { .. }, false) => false_dep += 1,
                            (MemDepPrediction::Bypass { .. }, false) => false_byp += 1,
                            _ => {}
                        }
                        scratch.trains.push(TrainReq {
                            pc: item.pc,
                            meta: p.meta,
                            predicted: p.prediction,
                            outcome: item.outcome,
                        });
                        applied += 1;
                    }
                    None => stale += 1,
                }
            }
            predictor.train_batch(&mut scratch.trains);
            metrics.missed_dependencies.fetch_add(missed, Ordering::Relaxed);
            metrics.false_dependencies.fetch_add(false_dep, Ordering::Relaxed);
            metrics.false_bypasses.fetch_add(false_byp, Ordering::Relaxed);
            metrics.trains.fetch_add(u64::from(applied), Ordering::Relaxed);
            metrics
                .stale_trains
                .fetch_add(u64::from(stale), Ordering::Relaxed);
            metrics.requests.fetch_add(n, Ordering::Relaxed);
            reply.send(tag, ShardReply::Train { applied, stale });
        }
        ShardJob::Sync(events) => {
            for event in events {
                match event {
                    SyncEvent::Branch(e) => predictor.on_branch(&e),
                    SyncEvent::StoreDispatch { pc, store_seq } => {
                        predictor.on_store_dispatch(pc, store_seq);
                    }
                }
            }
        }
        ShardJob::Snapshot { tag, reply } => {
            reply.send(tag, ShardReply::Snapshot(predictor.snapshot_bytes()));
        }
        ShardJob::Restore {
            predictor: replacement,
            tag,
            reply,
        } => {
            *predictor = *replacement;
            // Parked tickets reference metadata minted by the predictor just
            // replaced; training the restored one with it would be lying.
            *pending = PendingTable::new(pending.slots.len());
            reply.send(tag, ShardReply::Restore(predictor.entry_count()));
        }
        ShardJob::Wait(barrier) => {
            barrier.wait();
            return; // not service work; keep it out of the histogram
        }
    }
    metrics
        .service
        .record_ns(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn predict_job(
        pcs: &[u64],
        tag: u64,
        reply: &Sender<(u64, ShardReply)>,
    ) -> ShardJob {
        ShardJob::Predict {
            items: pcs
                .iter()
                .map(|&pc| PredictItem { pc, store_seq: 0 })
                .collect(),
            tag,
            reply: ReplySink::new(reply.clone()),
        }
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let mut seen = [false; 8];
        // Stride-4 PCs (typical code addresses) must hit several shards.
        for i in 0..512u64 {
            let s = shard_of(0x40_0000 + i * 4, 8);
            assert_eq!(s, shard_of(0x40_0000 + i * 4, 8));
            seen[s] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() >= 6);
    }

    #[test]
    fn predict_then_train_applies_metadata() {
        let pool = ShardPool::new(PredictorKind::Mascot, &ShardPoolConfig::default());
        let (tx, rx) = channel();
        let pc = 0x1234u64;
        let shard = pool.shard_of(pc);
        pool.send(shard, predict_job(&[pc, pc, pc], 7, &tx));
        let (tag, reply) = rx.recv().unwrap();
        assert_eq!(tag, 7);
        let replies = match reply {
            ShardReply::Predict(r) => r,
            other => panic!("expected predict reply, got {other:?}"),
        };
        assert_eq!(replies.len(), 3);
        // Train each ticket once; all must apply.
        let items: Vec<TrainItem> = replies
            .iter()
            .map(|r| TrainItem {
                ticket: r.ticket,
                pc,
                outcome: mascot::prediction::LoadOutcome::independent(),
            })
            .collect();
        pool.send(
            shard,
            ShardJob::Train {
                items: items.clone(),
                tag: 8,
                reply: ReplySink::new(tx.clone()),
            },
        );
        match rx.recv().unwrap() {
            (8, ShardReply::Train { applied, stale }) => {
                assert_eq!((applied, stale), (3, 0));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        // Replaying the same tickets is stale, not a retrain.
        pool.send(
            shard,
            ShardJob::Train {
                items,
                tag: 9,
                reply: ReplySink::new(tx.clone()),
            },
        );
        match rx.recv().unwrap() {
            (9, ShardReply::Train { applied, stale }) => {
                assert_eq!((applied, stale), (0, 3));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let report = pool.shutdown();
        assert_eq!(report.total_predicts(), 3);
        assert_eq!(report.total_trains(), 3);
        assert_eq!(report.shards[shard].stale_trains, 3);
        assert_eq!(report.total_requests(), 9);
    }

    #[test]
    fn wrong_pc_on_ticket_is_stale() {
        let pool = ShardPool::new(PredictorKind::StoreSets, &ShardPoolConfig::default());
        let (tx, rx) = channel();
        let pc = 0x40u64;
        let shard = pool.shard_of(pc);
        pool.send(shard, predict_job(&[pc], 0, &tx));
        let ticket = match rx.recv().unwrap().1 {
            ShardReply::Predict(r) => r[0].ticket,
            other => panic!("unexpected reply {other:?}"),
        };
        pool.send(
            shard,
            ShardJob::Train {
                items: vec![TrainItem {
                    ticket,
                    pc: pc + 8, // lies about the pc
                    outcome: mascot::prediction::LoadOutcome::independent(),
                }],
                tag: 1,
                reply: ReplySink::new(tx),
            },
        );
        match rx.recv().unwrap().1 {
            ShardReply::Train { applied, stale } => assert_eq!((applied, stale), (0, 1)),
            other => panic!("unexpected reply {other:?}"),
        }
        pool.shutdown();
    }

    #[test]
    fn bounded_queue_rejects_when_worker_is_parked() {
        let cfg = ShardPoolConfig {
            shards: 1,
            queue_depth: 1,
            max_batch: 1,
            ..Default::default()
        };
        let pool = ShardPool::new(PredictorKind::PerfectMdp, &cfg);
        let barrier = Arc::new(Barrier::new(2));
        // Park the worker. Retry until the worker has dequeued the job
        // (depth-1 queue: acceptance of the *next* job proves it).
        let mut job = ShardJob::Wait(Arc::clone(&barrier));
        while let Err(back) = pool.try_send(0, job) {
            job = back;
        }
        let (tx, _rx) = channel();
        let mut filler = predict_job(&[1], 0, &tx);
        loop {
            match pool.try_send(0, filler) {
                Ok(()) => break,
                Err(back) => filler = back,
            }
        }
        // Queue now holds one job and the worker is parked: full.
        assert!(pool.try_send(0, predict_job(&[2], 1, &tx)).is_err());
        barrier.wait(); // release the worker
        pool.fence();
        let report = pool.stats_report();
        assert_eq!(report.total_predicts(), 1);
        pool.shutdown();
    }

    #[test]
    fn pending_table_evicts_after_capacity_wraps() {
        let mut table = PendingTable::new(2);
        let p = mascot::prediction::MemDepPrediction::NoDependence;
        let (t0, e0) = table.insert(0x10, p, AnyMeta::Unit);
        let (_t1, e1) = table.insert(0x14, p, AnyMeta::Unit);
        let (_t2, e2) = table.insert(0x18, p, AnyMeta::Unit); // evicts t0's slot
        assert!(!e0 && !e1, "fresh slots are not evictions");
        assert!(e2, "wrapping onto an occupied slot reports the eviction");
        assert!(table.take(t0, 0x10).is_none(), "evicted ticket is stale");
        assert!(table.take(_t2, 0x18).is_some());
        assert!(table.take(_t1, 0x14).is_some());
        assert!(table.take(_t1, 0x14).is_none(), "tickets are single-use");
    }

    /// Property-style check of the ticket slab against a slot-indexed
    /// model: after arbitrary interleavings of inserts (slot reuse) and
    /// takes — including across the `u32` ticket wrap — a take succeeds iff
    /// the slot still holds exactly that (ticket, pc) pair, so a recycled
    /// slot can never satisfy the ticket it evicted. Seeded and offline.
    #[test]
    fn pending_table_matches_model_under_random_reuse() {
        use std::collections::HashMap;

        const CAPACITY: u32 = 8; // tiny: every few inserts recycle a slot
        let mut table = PendingTable::new(CAPACITY as usize);
        table.next_ticket = u32::MAX - 500; // cross the wrap mid-test
        let mut model: HashMap<u32, (u32, u64)> = HashMap::new(); // slot -> (ticket, pc)
        let mut issued: Vec<(u32, u64)> = Vec::new(); // every ticket ever issued

        let mut rng_state = 0x5eed_0123_4567_89abu64;
        let mut rng = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };

        let p = mascot::prediction::MemDepPrediction::NoDependence;
        for round in 0..4_000u32 {
            match rng() % 4 {
                // Insert: the slot's previous occupant (if any) is evicted.
                0 | 1 => {
                    let pc = 0x40_0000 + (rng() % 64) * 4;
                    let (ticket, evicted) = table.insert(pc, p, AnyMeta::Unit);
                    assert_eq!(
                        evicted,
                        model.contains_key(&(ticket % CAPACITY)),
                        "round {round}: eviction flag must track slot occupancy"
                    );
                    model.insert(ticket % CAPACITY, (ticket, pc));
                    issued.push((ticket, pc));
                }
                // Take a previously issued ticket with its true pc.
                2 if !issued.is_empty() => {
                    let (ticket, pc) = issued[(rng() as usize) % issued.len()];
                    let expect_hit = model.get(&(ticket % CAPACITY)) == Some(&(ticket, pc));
                    let got = table.take(ticket, pc);
                    assert_eq!(got.is_some(), expect_hit, "round {round}, ticket {ticket:#x}");
                    if let Some(pending) = got {
                        assert_eq!((pending.ticket, pending.pc), (ticket, pc));
                        model.remove(&(ticket % CAPACITY));
                    }
                }
                // Take with a lying pc (or a never-issued ticket): never hits.
                _ => {
                    let ticket = if issued.is_empty() || rng() % 2 == 0 {
                        rng() as u32
                    } else {
                        issued[(rng() as usize) % issued.len()].0
                    };
                    let bogus_pc = u64::MAX - u64::from(round);
                    let expect_hit = model.get(&(ticket % CAPACITY)) == Some(&(ticket, bogus_pc));
                    assert_eq!(
                        table.take(ticket, bogus_pc).is_some(),
                        expect_hit,
                        "round {round}, ticket {ticket:#x}"
                    );
                    if expect_hit {
                        model.remove(&(ticket % CAPACITY));
                    }
                }
            }
        }
        // The surviving slots drain exactly once each.
        for (_, (ticket, pc)) in model {
            assert!(table.take(ticket, pc).is_some());
            assert!(table.take(ticket, pc).is_none(), "tickets are single-use");
        }
    }

    /// Pool-level state transplant: snapshot a warmed pool shard-by-shard,
    /// restore the payloads into a cold pool of the same width, and require
    /// the cold pool's shards to answer predictions exactly like the warm
    /// ones (and to report the restore in their metrics).
    #[test]
    fn snapshot_restore_transplants_pool_state() {
        let cfg = ShardPoolConfig {
            shards: 2,
            ..Default::default()
        };
        let warm = ShardPool::new(PredictorKind::Mascot, &cfg);
        let (tx, rx) = channel();
        let pcs: Vec<u64> = (0..16u64).map(|i| 0x5000 + i * 4).collect();
        for round in 0..20 {
            for &pc in &pcs {
                let shard = warm.shard_of(pc);
                warm.send(shard, predict_job(&[pc], round, &tx));
                let ticket = match rx.recv().unwrap().1 {
                    ShardReply::Predict(r) => r[0].ticket,
                    other => panic!("unexpected reply {other:?}"),
                };
                warm.send(
                    shard,
                    ShardJob::Train {
                        items: vec![TrainItem {
                            ticket,
                            pc,
                            outcome: mascot::prediction::LoadOutcome::dependent(
                                mascot::prediction::ObservedDependence {
                                    distance: mascot::prediction::StoreDistance::new(3).unwrap(),
                                    class: mascot::prediction::BypassClass::DirectBypass,
                                    store_pc: 0x9000,
                                    branches_between: 0,
                                },
                            ),
                        }],
                        tag: round,
                        reply: ReplySink::new(tx.clone()),
                    },
                );
                rx.recv().unwrap();
            }
        }
        warm.fence();
        let payloads = warm.snapshot_shards();
        assert_eq!(payloads.len(), 2);

        let cold = ShardPool::new(PredictorKind::Mascot, &cfg);
        let predictors: Vec<AnyPredictor> = payloads
            .iter()
            .map(|p| AnyPredictor::from_snapshot_bytes(p).expect("valid shard payload"))
            .collect();
        let restored = cold.restore_shards(predictors);
        assert!(restored > 0, "warm shards must carry entries");
        cold.set_warm_start(7, 2);
        let report = cold.stats_report();
        assert_eq!(report.total_restored(), restored);
        assert!(report.shards.iter().all(|s| s.snapshot_age_s == 7));
        assert!(report.shards.iter().all(|s| s.restarts == 2));

        // Both pools must now answer every PC identically.
        for &pc in &pcs {
            let shard = warm.shard_of(pc);
            warm.send(shard, predict_job(&[pc], 1, &tx));
            let warm_reply = match rx.recv().unwrap().1 {
                ShardReply::Predict(r) => r[0].prediction,
                other => panic!("unexpected reply {other:?}"),
            };
            cold.send(shard, predict_job(&[pc], 2, &tx));
            let cold_reply = match rx.recv().unwrap().1 {
                ShardReply::Predict(r) => r[0].prediction,
                other => panic!("unexpected reply {other:?}"),
            };
            assert_eq!(warm_reply, cold_reply, "pc {pc:#x}");
        }
        warm.shutdown();
        cold.shutdown();
    }

    #[test]
    fn sync_events_reach_every_shard() {
        use mascot::history::{BranchEvent, BranchKind};
        let cfg = ShardPoolConfig {
            shards: 3,
            ..Default::default()
        };
        let pool = ShardPool::new(PredictorKind::Mascot, &cfg);
        pool.broadcast_sync(vec![
            SyncEvent::Branch(BranchEvent {
                pc: 0x100,
                kind: BranchKind::Conditional,
                taken: true,
                target: 0x200,
            }),
            SyncEvent::StoreDispatch {
                pc: 0x300,
                store_seq: 1,
            },
        ]);
        pool.fence();
        pool.shutdown();
    }

    /// Repro for the in-flight-window overrun the audit flushed out: with a
    /// pending table smaller than the number of outstanding predictions,
    /// the oldest tickets are recycled before their trains arrive. The
    /// default (non-strict) pool must surface that as `evicted_pending`
    /// plus stale trains — not as silently applied mistraining.
    #[test]
    fn pending_overrun_is_counted_not_applied() {
        let cfg = ShardPoolConfig {
            shards: 1,
            pending_capacity: 2,
            ..Default::default()
        };
        let pool = ShardPool::new(PredictorKind::Mascot, &cfg);
        let (tx, rx) = channel();
        let pcs = [0x40u64, 0x44, 0x48, 0x4c];
        pool.send(0, predict_job(&pcs, 1, &tx));
        let replies = match rx.recv().unwrap().1 {
            ShardReply::Predict(r) => r,
            other => panic!("unexpected reply {other:?}"),
        };
        assert_eq!(pool.stats_report().total_evicted_pending(), 2);
        // Train every ticket: the two evicted ones must go stale.
        let items: Vec<TrainItem> = replies
            .iter()
            .zip(&pcs)
            .map(|(r, &pc)| TrainItem {
                ticket: r.ticket,
                pc,
                outcome: mascot::prediction::LoadOutcome::independent(),
            })
            .collect();
        pool.send(
            0,
            ShardJob::Train {
                items,
                tag: 2,
                reply: ReplySink::new(tx.clone()),
            },
        );
        match rx.recv().unwrap() {
            (2, ShardReply::Train { applied, stale }) => {
                assert_eq!((applied, stale), (2, 2));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let report = pool.shutdown();
        assert_eq!(report.total_evicted_pending(), 2);
        assert_eq!(report.shards[0].stale_trains, 2);
    }

    /// Under `strict_tickets` (the `mascotd --audit` configuration) the
    /// same overrun is a hard error: the shard worker panics and
    /// `shutdown` refuses to report a clean exit.
    #[test]
    fn strict_tickets_turns_eviction_into_hard_error() {
        let cfg = ShardPoolConfig {
            shards: 1,
            pending_capacity: 2,
            strict_tickets: true,
            ..Default::default()
        };
        let pool = ShardPool::new(PredictorKind::Mascot, &cfg);
        let (tx, rx) = channel();
        pool.send(0, predict_job(&[0x40u64, 0x44, 0x48], 1, &tx));
        // The worker dies mid-batch; once the job's ReplySink (the only
        // other sender) is gone the channel disconnects without ever
        // delivering a reply.
        drop(tx);
        assert!(rx.recv().is_err(), "no reply escapes the dead shard");
        let joined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.shutdown()));
        assert!(joined.is_err(), "shutdown must propagate the shard panic");
    }
}
