//! Non-blocking connection plumbing for the event-loop front end: a
//! compacting receive buffer that reassembles wire frames from partial
//! reads, and a send buffer that survives partial writes.
//!
//! Both sides of the v2 codec meet here. A peer may deliver a frame one
//! byte at a time, or twenty frames in one TCP segment; [`RecvBuf`]
//! accumulates bytes until a complete `header + payload` is resident and
//! only then exposes it ([`RecvBuf::peek_frame`]), with the header
//! validated in place by [`crate::wire::parse_header`] — exactly the
//! checks the blocking reader applies, so a malformed stream fails
//! identically whichever front end reads it. Payload bytes are borrowed
//! straight out of the buffer (no per-frame allocation) and handed to
//! `Request::decode`.
//!
//! [`SendBuf`] is the mirror: responses are appended as encoded frames and
//! flushed as far as the socket allows; a short write leaves the tail
//! buffered for the next writability event. The event loop pauses reading
//! from a connection whose send buffer grows past a threshold
//! (backpressure: a peer that won't read its responses stops being served,
//! rather than ballooning server memory — see DESIGN.md §11).
//!
//! [`Conn`] ties the two to a stream plus the in-order pipeline of
//! responses ([`Inflight`]): requests may *complete* out of order across
//! shards, but responses are written strictly in request order.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::wire::{parse_header, WireError, HEADER_LEN};

/// Bytes read from a connection per readiness event. Bounding the chunk —
/// and leaving the rest in the kernel buffer for level-triggered epoll to
/// re-report — is what keeps one hot connection from starving the rest.
pub const READ_CHUNK: usize = 64 * 1024;

/// Send-buffer size at which the server stops *reading* from the
/// connection (resumed at half). Responses already owed are still
/// delivered; the peer just can't mint new work until it drains its
/// receive side.
pub const WRITE_BUF_PAUSE: usize = 256 * 1024;

/// Maximum responses owed to one connection before reading pauses. Bounds
/// per-connection server memory against a client that pipelines thousands
/// of requests and never reads.
pub const MAX_INFLIGHT: usize = 128;

/// A growable receive buffer with start-offset consumption: bytes are
/// appended by [`RecvBuf::fill`] and logically removed by advancing
/// `start`, which is compacted away on the next fill.
#[derive(Debug, Default)]
pub struct RecvBuf {
    buf: Vec<u8>,
    start: usize,
}

impl RecvBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes buffered and not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Reads up to `max` bytes from `stream`. Returns `Ok(0)` on EOF;
    /// `WouldBlock` surfaces as an error for the caller to treat as "no
    /// more data right now".
    ///
    /// # Errors
    ///
    /// Propagates the read error.
    pub fn fill(&mut self, stream: &mut TcpStream, max: usize) -> io::Result<usize> {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let old = self.buf.len();
        self.buf.resize(old + max, 0);
        match stream.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// Checks whether a complete frame is buffered. `Ok(Some((code,
    /// payload_len)))` means header *and* payload are fully resident;
    /// `Ok(None)` means more bytes are needed. Header validation (magic,
    /// version, per-opcode payload cap) happens here, before any payload
    /// arrives, so a hostile header is rejected without buffering its
    /// claimed payload.
    ///
    /// # Errors
    ///
    /// The same [`WireError`]s the blocking frame reader produces.
    pub fn peek_frame(&self) -> Result<Option<(u8, usize)>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; HEADER_LEN] = avail[..HEADER_LEN].try_into().expect("length checked");
        let (code, len) = parse_header(&header)?;
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        Ok(Some((code, len)))
    }

    /// The payload of the frame [`RecvBuf::peek_frame`] just reported
    /// (borrowed in place — no copy).
    pub fn payload(&self, payload_len: usize) -> &[u8] {
        &self.buf[self.start + HEADER_LEN..self.start + HEADER_LEN + payload_len]
    }

    /// Consumes the frame [`RecvBuf::peek_frame`] just reported.
    pub fn consume_frame(&mut self, payload_len: usize) {
        self.start += HEADER_LEN + payload_len;
        debug_assert!(self.start <= self.buf.len());
    }
}

/// A send buffer that survives partial writes: encoded frames are appended
/// and [`SendBuf::flush`] writes as much as the socket accepts.
#[derive(Debug, Default)]
pub struct SendBuf {
    buf: Vec<u8>,
    start: usize,
}

impl SendBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes still owed to the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether everything has been flushed.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Appends an encoded frame.
    pub fn push(&mut self, frame: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(frame);
    }

    /// Writes as much as the socket accepts. `Ok(true)` when fully
    /// drained; `Ok(false)` when the socket would block with bytes left.
    ///
    /// # Errors
    ///
    /// Propagates write errors (including a zero-length write, which means
    /// the peer is gone).
    pub fn flush(&mut self, stream: &mut TcpStream) -> io::Result<bool> {
        loop {
            if self.start == self.buf.len() {
                self.buf.clear();
                self.start = 0;
                return Ok(true);
            }
            match stream.write(&self.buf[self.start..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.start += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
    }
}

/// One queued response on a connection: either already encoded, or still
/// waiting on a scatter/gather whose sub-replies are in flight.
#[derive(Debug)]
pub enum Inflight {
    /// An encoded response frame, ready to write.
    Done(Vec<u8>),
    /// The response will materialize when gather slot `gather` completes.
    Waiting {
        /// Index into the event loop's gather table.
        gather: usize,
    },
}

/// Per-connection state for the event loop: the stream, both buffers, the
/// in-order response pipeline, and the lifecycle/interest flags the loop
/// mirrors into epoll.
#[derive(Debug)]
pub struct Conn {
    /// The non-blocking stream.
    pub stream: TcpStream,
    /// Reassembles request frames from partial reads.
    pub rd: RecvBuf,
    /// Holds response bytes across partial writes.
    pub wr: SendBuf,
    /// Responses owed, in request order.
    pub inflight: VecDeque<Inflight>,
    /// Peer half-closed its write side: no more requests will arrive, but
    /// responses already owed are still flushed before the close.
    pub eof: bool,
    /// A framing error poisoned the stream (resynchronization is
    /// impossible): stop parsing, flush what is owed, then close.
    pub poisoned: bool,
    /// Parsing enabled (false while paused for backpressure).
    pub reading: bool,
    /// Whether EPOLLIN was armed at the last interest update.
    pub reg_read: bool,
    /// Whether EPOLLOUT was armed at the last interest update.
    pub want_write: bool,
}

impl Conn {
    /// Wraps an accepted stream (already set non-blocking by the caller).
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            rd: RecvBuf::new(),
            wr: SendBuf::new(),
            inflight: VecDeque::new(),
            eof: false,
            poisoned: false,
            reading: true,
            reg_read: true,
            want_write: false,
        }
    }

    /// Whether the loop should stop parsing new requests from this
    /// connection until responses drain (backpressure).
    pub fn should_pause(&self) -> bool {
        self.inflight.len() >= MAX_INFLIGHT || self.wr.pending() >= WRITE_BUF_PAUSE
    }

    /// Whether parsing may resume (hysteresis: half the pause thresholds,
    /// so the interest doesn't flap on every frame).
    pub fn may_resume(&self) -> bool {
        self.inflight.len() < MAX_INFLIGHT / 2 && self.wr.pending() < WRITE_BUF_PAUSE / 2
    }

    /// Whether the connection has delivered everything it owes and will
    /// never owe more — the loop closes it.
    pub fn finished(&self) -> bool {
        (self.eof || self.poisoned) && self.inflight.is_empty() && self.wr.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_frame, Opcode, Request};
    use std::net::TcpListener;

    /// A loopback pair with the receiving end non-blocking.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn reassembles_frames_from_single_byte_writes() {
        let (mut client, mut server) = pair();
        let frame = Request::Stats.encode_frame().unwrap();
        let mut rd = RecvBuf::new();
        for (i, byte) in frame.iter().enumerate() {
            client.write_all(std::slice::from_ref(byte)).unwrap();
            client.flush().unwrap();
            // Poll until the byte lands (loopback is fast but asynchronous).
            loop {
                match rd.fill(&mut server, READ_CHUNK) {
                    Ok(n) if n > 0 => break,
                    Ok(_) => panic!("unexpected EOF"),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::yield_now();
                    }
                    Err(e) => panic!("read failed: {e}"),
                }
            }
            let peeked = rd.peek_frame().unwrap();
            if i + 1 < frame.len() {
                assert!(peeked.is_none(), "frame complete after {} bytes?", i + 1);
            } else {
                let (code, len) = peeked.expect("complete frame");
                assert_eq!(code, Opcode::Stats as u8);
                assert_eq!(len, 0);
                rd.consume_frame(len);
                assert_eq!(rd.buffered(), 0);
            }
        }
    }

    #[test]
    fn splits_back_to_back_frames() {
        let (mut client, mut server) = pair();
        let a = Request::Stats.encode_frame().unwrap();
        let b = Request::Shutdown.encode_frame().unwrap();
        client.write_all(&a).unwrap();
        client.write_all(&b).unwrap();
        client.flush().unwrap();
        let mut rd = RecvBuf::new();
        let mut seen = Vec::new();
        while seen.len() < 2 {
            match rd.fill(&mut server, READ_CHUNK) {
                Ok(0) => panic!("unexpected EOF"),
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("read failed: {e}"),
            }
            while let Some((code, len)) = rd.peek_frame().unwrap() {
                seen.push(code);
                rd.consume_frame(len);
            }
        }
        assert_eq!(seen, vec![Opcode::Stats as u8, Opcode::Shutdown as u8]);
    }

    #[test]
    fn bad_header_is_rejected_before_payload_arrives() {
        let mut rd = RecvBuf::new();
        // Inject a corrupt header directly: claimed payload never needed.
        rd.buf.extend_from_slice(b"XSRV");
        rd.buf.extend_from_slice(&[2, 1]);
        rd.buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(rd.peek_frame(), Err(WireError::BadMagic)));
        let mut rd = RecvBuf::new();
        let mut frame = encode_frame(Opcode::Predict as u8, &[]);
        frame[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        rd.buf.extend_from_slice(&frame[..HEADER_LEN]);
        assert!(matches!(rd.peek_frame(), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn send_buf_survives_partial_writes() {
        let (client, mut server) = pair();
        // Keep the client from reading so the server's socket buffer fills.
        let mut wr = SendBuf::new();
        let chunk = vec![0xA5u8; 64 * 1024];
        let mut queued = 0usize;
        // Queue until flush reports a partial write (socket buffer full).
        loop {
            wr.push(&chunk);
            queued += chunk.len();
            if !wr.flush(&mut server).unwrap() {
                break;
            }
            assert!(queued < 64 << 20, "socket buffer never filled");
        }
        let stalled = wr.pending();
        assert!(stalled > 0);
        // Drain the client side; the tail must flush.
        let mut sink = client;
        sink.set_nonblocking(false).unwrap();
        sink.set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .unwrap();
        let mut buf = vec![0u8; 256 * 1024];
        let mut drained = 0usize;
        while drained < queued {
            match sink.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => drained += n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if wr.flush(&mut server).unwrap() {
                        assert_eq!(wr.pending(), 0);
                    }
                }
                Err(e) => panic!("drain failed: {e}"),
            }
        }
        while !wr.flush(&mut server).unwrap() {
            let _ = sink.read(&mut buf);
        }
        assert!(wr.is_empty());
        let _ = stalled;
    }

    #[test]
    fn conn_backpressure_thresholds() {
        let (_client, server) = pair();
        let mut conn = Conn::new(server);
        assert!(!conn.should_pause());
        for _ in 0..MAX_INFLIGHT {
            conn.inflight.push_back(Inflight::Done(Vec::new()));
        }
        assert!(conn.should_pause());
        while conn.inflight.len() >= MAX_INFLIGHT / 2 {
            conn.inflight.pop_front();
        }
        assert!(conn.may_resume());
        assert!(!conn.finished());
        conn.eof = true;
        conn.inflight.clear();
        assert!(conn.finished());
    }
}
